//! Plan execution against physical storage.
//!
//! Used for the paper's *actual speedup* measurements (Fig. 5): estimated
//! costs come from the optimizer, real work comes from here. Virtual
//! indexes are rejected — they exist only for what-if costing.

use crate::plan::{AccessChoice, Plan};
use std::collections::HashSet;
use std::fmt;
use xia_storage::{Catalog, Collection, DocId};
use xia_xml::{Document, PathId};
use xia_xpath::{
    normalize_statement, CmpOp, Literal, NormalizedQuery, PathMatcher, PatternPred, Statement,
};

/// Execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The plan referenced a virtual index; virtual indexes cannot be used
    /// for execution.
    VirtualIndex(xia_storage::IndexId),
    /// The plan referenced an index that is not in the catalog.
    UnknownIndex(xia_storage::IndexId),
    /// The statement kind cannot be executed by `execute_query`.
    NotAQuery,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::VirtualIndex(id) => {
                write!(f, "index ix{} is virtual and cannot be executed", id.0)
            }
            ExecError::UnknownIndex(id) => write!(f, "index ix{} does not exist", id.0),
            ExecError::NotAQuery => f.write_str("statement is not an executable query"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Execution statistics and result size.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecResult {
    /// Documents satisfying every predicate.
    pub docs_matched: u64,
    /// Result items produced (documents × return items).
    pub items: u64,
    /// Nodes visited by navigation.
    pub nodes_visited: u64,
    /// Index postings scanned.
    pub postings_scanned: u64,
}

/// A compiled predicate: the set of rooted paths it targets plus the value
/// test.
struct CompiledPattern {
    paths: HashSet<PathId>,
    pred: PatternPred,
}

impl CompiledPattern {
    fn node_satisfies(&self, node: &xia_xml::Node) -> bool {
        if !self.paths.contains(&node.path) {
            return false;
        }
        match &self.pred {
            PatternPred::Exists => true,
            PatternPred::Compare(op, lit) => match &node.value {
                Some(v) => value_satisfies(v, *op, lit),
                None => false,
            },
        }
    }

    /// Whether some node of the document satisfies the pattern.
    fn doc_satisfies(&self, doc: &Document) -> bool {
        doc.nodes().any(|(_, n)| self.node_satisfies(n))
    }
}

fn value_satisfies(v: &xia_xml::Value, op: CmpOp, lit: &Literal) -> bool {
    match lit {
        Literal::Str(s) => op.eval_str(v.as_str(), s),
        Literal::Num(n) => match v.as_num() {
            Some(x) => op.eval_num(x, *n),
            None => false,
        },
    }
}

/// Compiled predicate state for one statement: root paths, conjunctive
/// patterns, and disjunction groups.
struct CompiledQuery {
    root_paths: HashSet<PathId>,
    patterns: Vec<CompiledPattern>,
    groups: Vec<Vec<CompiledPattern>>,
}

fn compile_one(ap: &xia_xpath::AccessPattern, vocab: &xia_xml::Vocabulary) -> CompiledPattern {
    CompiledPattern {
        paths: PathMatcher::new(&ap.linear, vocab)
            .matching_path_ids(vocab)
            .into_iter()
            .collect(),
        pred: ap.pred.clone(),
    }
}

fn compile_patterns(nq: &NormalizedQuery, collection: &Collection) -> CompiledQuery {
    let vocab = collection.vocab();
    let root_paths: HashSet<PathId> = PathMatcher::new(&nq.root, vocab)
        .matching_path_ids(vocab)
        .into_iter()
        .collect();
    let patterns = nq
        .patterns
        .iter()
        .map(|ap| compile_one(ap, vocab))
        .collect();
    let groups = nq
        .or_groups
        .iter()
        .map(|g| g.iter().map(|ap| compile_one(ap, vocab)).collect())
        .collect();
    CompiledQuery {
        root_paths,
        patterns,
        groups,
    }
}

fn doc_matches_all(doc: &Document, cq: &CompiledQuery) -> bool {
    let root_ok = doc.nodes().any(|(_, n)| cq.root_paths.contains(&n.path));
    root_ok
        && cq.patterns.iter().all(|p| p.doc_satisfies(doc))
        && cq
            .groups
            .iter()
            .all(|g| g.iter().any(|b| b.doc_satisfies(doc)))
}

/// Executes a query statement with the given plan. Returns an error if the
/// plan uses virtual indexes.
pub fn execute_query(
    stmt: &Statement,
    plan: &Plan,
    collection: &Collection,
    catalog: &Catalog,
) -> Result<ExecResult, ExecError> {
    let nq = normalize_statement(stmt).ok_or(ExecError::NotAQuery)?;
    execute_normalized(&nq, plan, collection, catalog)
}

/// Executes a normalized statement's read side with the given plan.
pub fn execute_normalized(
    nq: &NormalizedQuery,
    plan: &Plan,
    collection: &Collection,
    catalog: &Catalog,
) -> Result<ExecResult, ExecError> {
    let cq = compile_patterns(nq, collection);
    let mut result = ExecResult::default();
    match &plan.access {
        AccessChoice::Scan => {
            for (_, doc) in collection.iter_docs() {
                result.nodes_visited += doc.len() as u64;
                if doc_matches_all(doc, &cq) {
                    result.docs_matched += 1;
                    result.items += nq.returns.len().max(1) as u64;
                }
            }
        }
        AccessChoice::IndexAnd(steps) => {
            // Probe per step (single probe or index-ORing union),
            // path-filter postings, intersect doc sets across steps.
            let mut candidate_docs: Option<HashSet<DocId>> = None;
            for step in steps {
                let docs: HashSet<DocId> = match step {
                    crate::plan::PlanStep::Probe(u) => probe_docs(
                        u,
                        &nq.patterns[u.pattern_idx],
                        &cq.patterns[u.pattern_idx],
                        collection,
                        catalog,
                        &mut result,
                    )?,
                    crate::plan::PlanStep::Union {
                        group, branches, ..
                    } => {
                        let mut union: HashSet<DocId> = HashSet::new();
                        for u in branches {
                            let docs = probe_docs(
                                u,
                                &nq.or_groups[*group][u.pattern_idx],
                                &cq.groups[*group][u.pattern_idx],
                                collection,
                                catalog,
                                &mut result,
                            )?;
                            union.extend(docs);
                        }
                        union
                    }
                };
                candidate_docs = Some(match candidate_docs {
                    None => docs,
                    Some(prev) => prev.intersection(&docs).copied().collect(),
                });
            }
            let mut docs: Vec<DocId> = candidate_docs.unwrap_or_default().into_iter().collect();
            docs.sort_unstable();
            for id in docs {
                let Some(doc) = collection.doc(id) else {
                    continue;
                };
                result.nodes_visited += doc.len() as u64;
                if doc_matches_all(doc, &cq) {
                    result.docs_matched += 1;
                    result.items += nq.returns.len().max(1) as u64;
                }
            }
        }
    }
    Ok(result)
}

/// Probes one index for one access pattern, returning the path-filtered
/// document set.
fn probe_docs(
    u: &crate::plan::IndexUse,
    ap: &xia_xpath::AccessPattern,
    pat: &CompiledPattern,
    collection: &Collection,
    catalog: &Catalog,
    result: &mut ExecResult,
) -> Result<HashSet<DocId>, ExecError> {
    let def = catalog
        .get(u.index)
        .ok_or(ExecError::UnknownIndex(u.index))?;
    let physical = def
        .physical
        .as_ref()
        .ok_or(ExecError::VirtualIndex(u.index))?;
    Ok(match &ap.pred {
        PatternPred::Compare(op, lit) => {
            let postings = physical.lookup_cmp(*op, lit);
            result.postings_scanned += postings.len() as u64;
            let mut docs = HashSet::new();
            for p in postings {
                if let Some(doc) = collection.doc(p.doc) {
                    if pat.paths.contains(&doc.node(p.node).path) {
                        docs.insert(p.doc);
                    }
                }
            }
            docs
        }
        PatternPred::Exists => {
            // Structural probe: per-path document lists.
            let paths: Vec<_> = pat.paths.iter().copied().collect();
            let hits = physical.lookup_exists(&paths);
            result.postings_scanned += hits.len() as u64;
            hits.into_iter().collect()
        }
    })
}

/// Executes a query and materializes its result items as serialized XML
/// fragments: for each matching document, one fragment per return path
/// (the subtree of the first node at that path), or the whole document for
/// a bare `return $v`.
pub fn execute_query_items(
    stmt: &Statement,
    plan: &Plan,
    collection: &Collection,
    catalog: &Catalog,
) -> Result<Vec<String>, ExecError> {
    let nq = normalize_statement(stmt).ok_or(ExecError::NotAQuery)?;
    let cq = compile_patterns(&nq, collection);
    let vocab = collection.vocab();
    // Return-path matchers (the root itself when returns are empty).
    let return_paths: Vec<HashSet<PathId>> = if nq.returns.is_empty() {
        vec![cq.root_paths.clone()]
    } else {
        nq.returns
            .iter()
            .map(|r| {
                PathMatcher::new(r, vocab)
                    .matching_path_ids(vocab)
                    .into_iter()
                    .collect()
            })
            .collect()
    };

    // Reuse the counting executor's document selection by running the plan
    // and re-deriving matched docs: cheapest correct approach is a second
    // pass over matching docs only.
    let mut items = Vec::new();
    let mut emit = |doc: &Document| {
        for paths in &return_paths {
            if let Some((node_id, _)) = doc.nodes().find(|(_, n)| paths.contains(&n.path)) {
                items.push(serialize_subtree(doc, node_id, vocab));
            }
        }
    };
    match &plan.access {
        AccessChoice::Scan => {
            for (_, doc) in collection.iter_docs() {
                if doc_matches_all(doc, &cq) {
                    emit(doc);
                }
            }
        }
        AccessChoice::IndexAnd(_) => {
            // Run the counting executor to validate the plan, then emit
            // from the verified documents (scan of candidates only).
            let _ = execute_normalized(&nq, plan, collection, catalog)?;
            for (_, doc) in collection.iter_docs() {
                if doc_matches_all(doc, &cq) {
                    emit(doc);
                }
            }
        }
    }
    Ok(items)
}

/// Serializes the subtree rooted at `node` (element or attribute) as XML
/// text.
fn serialize_subtree(doc: &Document, node: xia_xml::NodeId, vocab: &xia_xml::Vocabulary) -> String {
    let n = doc.node(node);
    let name = vocab.names.resolve(n.name);
    match n.kind {
        xia_xml::NodeKind::Attribute => {
            let v = n.value.as_ref().map(|v| v.as_str()).unwrap_or("");
            format!("{name}=\"{v}\"")
        }
        xia_xml::NodeKind::Element => {
            let mut out = String::new();
            write_subtree(doc, node, vocab, &mut out);
            out
        }
    }
}

fn write_subtree(
    doc: &Document,
    node: xia_xml::NodeId,
    vocab: &xia_xml::Vocabulary,
    out: &mut String,
) {
    use std::fmt::Write as _;
    let n = doc.node(node);
    let name = vocab.names.resolve(n.name);
    let _ = write!(out, "<{name}");
    let mut elements = Vec::new();
    for &c in &n.children {
        let cn = doc.node(c);
        match cn.kind {
            xia_xml::NodeKind::Attribute => {
                let v = cn.value.as_ref().map(|v| v.as_str()).unwrap_or("");
                let _ = write!(
                    out,
                    " {}=\"{}\"",
                    vocab.names.resolve(cn.name),
                    xia_xml::writer::escape(v, true)
                );
            }
            xia_xml::NodeKind::Element => elements.push(c),
        }
    }
    match (&n.value, elements.is_empty()) {
        (None, true) => {
            let _ = write!(out, "/>");
        }
        (Some(v), true) => {
            let _ = write!(
                out,
                ">{}</{name}>",
                xia_xml::writer::escape(v.as_str(), false)
            );
        }
        (_, false) => {
            let _ = write!(out, ">");
            for c in elements {
                write_subtree(doc, c, vocab, out);
            }
            let _ = write!(out, "</{name}>");
        }
    }
}

/// Applies an insert statement: parses the payload, stores it, and
/// maintains every physical index.
pub fn apply_insert(
    xml: &str,
    collection: &mut Collection,
    catalog: &mut Catalog,
) -> Result<DocId, xia_xml::XmlError> {
    let id = collection.insert_xml(xml)?;
    maintain_insert(id, collection, catalog);
    Ok(id)
}

fn maintain_insert(id: DocId, collection: &Collection, catalog: &mut Catalog) {
    let ids: Vec<_> = catalog
        .iter()
        .filter(|d| !d.is_virtual())
        .map(|d| d.id)
        .collect();
    for ix in ids {
        if let (Some(p), Some(doc)) = (catalog.physical_mut(ix), collection.doc(id)) {
            p.insert_doc(id, doc, collection.vocab());
        }
    }
}

/// Applies a delete statement by scanning for matching documents. Returns
/// the deleted doc ids.
pub fn apply_delete(
    stmt: &Statement,
    collection: &mut Collection,
    catalog: &mut Catalog,
) -> Result<Vec<DocId>, ExecError> {
    let nq = normalize_statement(stmt).ok_or(ExecError::NotAQuery)?;
    let cq = compile_patterns(&nq, collection);
    let victims: Vec<DocId> = collection
        .iter_docs()
        .filter(|(_, doc)| doc_matches_all(doc, &cq))
        .map(|(id, _)| id)
        .collect();
    for &id in &victims {
        collection.delete(id);
        let ids: Vec<_> = catalog
            .iter()
            .filter(|d| !d.is_virtual())
            .map(|d| d.id)
            .collect();
        for ix in ids {
            if let Some(p) = catalog.physical_mut(ix) {
                p.remove_doc(id);
            }
        }
    }
    Ok(victims)
}

/// Applies an update statement: rewrites the value of the nodes at the
/// `set` path inside every matching document and re-maintains indexes.
pub fn apply_update(
    stmt: &Statement,
    collection: &mut Collection,
    catalog: &mut Catalog,
) -> Result<u64, ExecError> {
    let Statement::Update { set, value, .. } = stmt else {
        return Err(ExecError::NotAQuery);
    };
    let nq = normalize_statement(stmt).ok_or(ExecError::NotAQuery)?;
    let cq = compile_patterns(&nq, collection);
    let set_paths: HashSet<PathId> = PathMatcher::new(set, collection.vocab())
        .matching_path_ids(collection.vocab())
        .into_iter()
        .collect();
    let victims: Vec<DocId> = collection
        .iter_docs()
        .filter(|(_, doc)| doc_matches_all(doc, &cq))
        .map(|(id, _)| id)
        .collect();
    let new_value = match value {
        Literal::Str(s) => xia_xml::Value::new(s),
        Literal::Num(n) => xia_xml::Value::from(*n),
    };
    let mut updated = 0u64;
    for &id in &victims {
        // Re-index via remove + reinsert (values changed).
        let ixs: Vec<_> = catalog
            .iter()
            .filter(|d| !d.is_virtual())
            .map(|d| d.id)
            .collect();
        for ix in &ixs {
            if let Some(p) = catalog.physical_mut(*ix) {
                p.remove_doc(id);
            }
        }
        if let Some(doc) = collection.doc_mut(id) {
            let targets: Vec<_> = doc
                .nodes()
                .filter(|(_, n)| set_paths.contains(&n.path))
                .map(|(nid, _)| nid)
                .collect();
            for nid in targets {
                doc.set_value(nid, Some(new_value.clone()));
                updated += 1;
            }
        }
        for ix in &ixs {
            if let Some(doc) = collection.doc(id) {
                if let Some(p) = catalog.physical_mut(*ix) {
                    p.insert_doc(id, doc, collection.vocab());
                }
            }
        }
    }
    Ok(updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::Optimizer;
    use xia_storage::runstats;
    use xia_xpath::{parse_linear_path, parse_statement, ValueKind};

    fn setup() -> Collection {
        let mut c = Collection::new("SDOC");
        for i in 0..200u32 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Yield", (i % 10) as f64);
                b.begin("SecInfo");
                b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
                b.leaf("Sector", if i % 4 == 0 { "Energy" } else { "Tech" });
                b.end();
                b.end();
            });
        }
        c
    }

    fn q(text: &str) -> Statement {
        parse_statement(text).unwrap()
    }

    #[test]
    fn scan_and_index_plans_agree_on_results() {
        let c = setup();
        let s = runstats(&c);
        let mut cat = Catalog::new();
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "S42" return $s"#);
        let plan = opt.optimize(&stmt);
        assert!(plan.uses_indexes());
        let via_index = execute_query(&stmt, &plan, &c, &cat).unwrap();
        let scan_plan = Plan {
            access: AccessChoice::Scan,
            ..plan.clone()
        };
        let via_scan = execute_query(&stmt, &scan_plan, &c, &cat).unwrap();
        assert_eq!(via_index.docs_matched, 1);
        assert_eq!(via_scan.docs_matched, 1);
        // The index plan visits far fewer nodes.
        assert!(via_index.nodes_visited * 10 < via_scan.nodes_visited);
    }

    #[test]
    fn index_anding_intersects_documents() {
        let c = setup();
        let s = runstats(&c);
        let mut cat = Catalog::new();
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/Yield").unwrap(),
            ValueKind::Num,
        );
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/SecInfo/*/Sector").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(r#"for $s in SECURITY('SDOC')/Security[Yield = 4]
                        where $s/SecInfo/*/Sector = "Energy" return $s"#);
        let plan = opt.optimize(&stmt);
        let res = execute_query(&stmt, &plan, &c, &cat).unwrap();
        // i%10==4 and i%4==0 → i ≡ 4 (mod 20) → 10 docs of 200.
        assert_eq!(res.docs_matched, 10);
    }

    #[test]
    fn virtual_index_is_refused() {
        let c = setup();
        let s = runstats(&c);
        let mut cat = Catalog::new();
        let vid = cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "S42" return $s"#);
        let plan = opt.optimize(&stmt);
        assert_eq!(plan.used_indexes(), vec![vid]);
        let err = execute_query(&stmt, &plan, &c, &cat).unwrap_err();
        assert_eq!(err, ExecError::VirtualIndex(vid));
    }

    #[test]
    fn range_queries_execute_via_index() {
        let c = setup();
        let s = runstats(&c);
        let mut cat = Catalog::new();
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/Yield").unwrap(),
            ValueKind::Num,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(r#"for $s in SECURITY('SDOC')/Security[Yield > 7.5] return $s"#);
        let plan = opt.optimize(&stmt);
        let res = execute_query(&stmt, &plan, &c, &cat).unwrap();
        // Yields 8 and 9 → 40 docs.
        assert_eq!(res.docs_matched, 40);
    }

    #[test]
    fn general_physical_index_answers_specific_pattern() {
        let c = setup();
        let s = runstats(&c);
        let mut cat = Catalog::new();
        cat.create_physical(
            &c,
            &parse_linear_path("/Security//*").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "S7" return $s"#);
        let plan = opt.optimize(&stmt);
        assert!(plan.uses_indexes());
        let res = execute_query(&stmt, &plan, &c, &cat).unwrap();
        assert_eq!(res.docs_matched, 1);
    }

    #[test]
    fn apply_insert_maintains_indexes() {
        let mut c = setup();
        let mut cat = Catalog::new();
        let ix = cat.create_physical(
            &c,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        let before = cat.get(ix).unwrap().physical.as_ref().unwrap().entries();
        apply_insert(
            "<Security><Symbol>NEW</Symbol></Security>",
            &mut c,
            &mut cat,
        )
        .unwrap();
        let after = cat.get(ix).unwrap().physical.as_ref().unwrap().entries();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn apply_delete_removes_docs_and_entries() {
        let mut c = setup();
        let mut cat = Catalog::new();
        let ix = cat.create_physical(
            &c,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        let del = q(r#"delete from SDOC where /Security[Symbol = "S42"]"#);
        let victims = apply_delete(&del, &mut c, &mut cat).unwrap();
        assert_eq!(victims.len(), 1);
        assert_eq!(c.len(), 199);
        let phys = cat.get(ix).unwrap().physical.as_ref().unwrap();
        assert!(phys.lookup_eq(&Literal::Str("S42".into())).is_empty());
    }

    #[test]
    fn apply_update_rewrites_values_and_reindexes() {
        let mut c = setup();
        let mut cat = Catalog::new();
        let ix = cat.create_physical(
            &c,
            &parse_linear_path("/Security/Yield").unwrap(),
            ValueKind::Num,
        );
        let upd = q(r#"update SDOC set /Security/Yield = 99 where /Security[Symbol = "S42"]"#);
        let updated = apply_update(&upd, &mut c, &mut cat).unwrap();
        assert_eq!(updated, 1);
        let phys = cat.get(ix).unwrap().physical.as_ref().unwrap();
        assert_eq!(phys.lookup_eq(&Literal::Num(99.0)).len(), 1);
    }

    #[test]
    fn execute_query_items_serializes_results() {
        let c = setup();
        let s = runstats(&c);
        let mut cat = Catalog::new();
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        // Projected return path.
        let stmt =
            q(r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "S42" return $s/Yield"#);
        let plan = opt.optimize(&stmt);
        let items = execute_query_items(&stmt, &plan, &c, &cat).unwrap();
        assert_eq!(items, vec!["<Yield>2</Yield>".to_string()]); // 42 % 10 = 2
                                                                 // Whole-document return.
        let stmt = q(r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "S42" return $s"#);
        let plan = opt.optimize(&stmt);
        let items = execute_query_items(&stmt, &plan, &c, &cat).unwrap();
        assert_eq!(items.len(), 1);
        assert!(items[0].starts_with("<Security>"), "{}", items[0]);
        assert!(items[0].contains("<Symbol>S42</Symbol>"));
    }

    #[test]
    fn execute_query_items_multiple_returns() {
        let c = setup();
        let s = runstats(&c);
        let cat = Catalog::new();
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(r#"for $s in SECURITY('SDOC')/Security
               where $s/Symbol = "S7"
               return <Out>{$s/Symbol, $s/Yield}</Out>"#);
        let plan = opt.optimize(&stmt);
        let items = execute_query_items(&stmt, &plan, &c, &cat).unwrap();
        assert_eq!(items.len(), 2);
        assert!(items.contains(&"<Symbol>S7</Symbol>".to_string()));
        assert!(items.contains(&"<Yield>7</Yield>".to_string()));
    }

    #[test]
    fn existence_predicates_execute_via_structural_postings() {
        // Optional elements: only some docs have a Dividend child.
        let mut c = Collection::new("SDOC");
        for i in 0..300u32 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Pad", "x".repeat(600).as_str());
                if i % 10 == 0 {
                    b.begin("Dividend");
                    b.leaf("Amount", (i as f64) / 10.0);
                    b.end();
                }
            });
        }
        let s = runstats(&c);
        let mut cat = Catalog::new();
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/Dividend").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(r#"for $s in SECURITY('SDOC')/Security where $s/Dividend return $s/Symbol"#);
        let plan = opt.optimize(&stmt);
        assert!(plan.uses_indexes(), "existence probe should win: {plan}");
        let res = execute_query(&stmt, &plan, &c, &cat).unwrap();
        assert_eq!(res.docs_matched, 30);
        // Scan agrees.
        let scan = Plan {
            access: AccessChoice::Scan,
            ..plan
        };
        let via_scan = execute_query(&stmt, &scan, &c, &cat).unwrap();
        assert_eq!(via_scan.docs_matched, 30);
    }

    #[test]
    fn existence_and_value_predicates_combine() {
        let mut c = Collection::new("SDOC");
        for i in 0..300u32 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Pad", "x".repeat(600).as_str());
                b.leaf("Yield", (i % 10) as f64);
                if i % 3 == 0 {
                    b.empty("Callable");
                }
            });
        }
        let s = runstats(&c);
        let mut cat = Catalog::new();
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/Yield").unwrap(),
            ValueKind::Num,
        );
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/Callable").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(r#"for $s in SECURITY('SDOC')/Security
               where $s/Yield = 3 and $s/Callable
               return $s/Symbol"#);
        let plan = opt.optimize(&stmt);
        let res = execute_query(&stmt, &plan, &c, &cat).unwrap();
        // i % 10 == 3 and i % 3 == 0 → i ≡ 3 (mod 30) → 10 docs.
        assert_eq!(res.docs_matched, 10);
    }

    #[test]
    fn disjunctions_execute_via_index_oring() {
        let mut c = Collection::new("SDOC");
        for i in 0..400u32 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Pad", "x".repeat(700).as_str());
                b.leaf("Sector", format!("Sec{}", i % 16).as_str());
                b.leaf("Rating", format!("R{}", i % 20).as_str());
            });
        }
        let s = runstats(&c);
        let mut cat = Catalog::new();
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/Sector").unwrap(),
            ValueKind::Str,
        );
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/Rating").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(
            r#"for $s in SECURITY('SDOC')/Security[Sector = "Sec0" or Rating = "R0"]
               return $s/Symbol"#,
        );
        let plan = opt.optimize(&stmt);
        assert!(plan.uses_indexes(), "index-ORing should beat scan: {plan}");
        assert!(plan.to_string().contains("ixor"), "{plan}");
        let res = execute_query(&stmt, &plan, &c, &cat).unwrap();
        // |A ∪ B| = 25 + 20 − 5 = 40 (i%16==0 ∪ i%20==0, lcm 80).
        assert_eq!(res.docs_matched, 40);
        // Scan agrees.
        let scan = Plan {
            access: AccessChoice::Scan,
            ..plan
        };
        assert_eq!(
            execute_query(&stmt, &scan, &c, &cat).unwrap().docs_matched,
            40
        );
    }

    #[test]
    fn disjunction_with_unindexable_branch_is_residual() {
        let mut c = Collection::new("SDOC");
        for i in 0..100u32 {
            c.build_doc("Security", |b| {
                b.leaf("Sector", ["Energy", "Tech"][(i % 2) as usize]);
                b.leaf("Yield", (i % 10) as f64);
            });
        }
        let s = runstats(&c);
        let mut cat = Catalog::new();
        // Only the Sector branch has an index; the group must be evaluated
        // residually (no partial index-ORing).
        cat.create_physical(
            &c,
            &parse_linear_path("/Security/Sector").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(
            r#"for $s in SECURITY('SDOC')/Security[Sector = "Energy" or Yield > 8]
               return $s"#,
        );
        let plan = opt.optimize(&stmt);
        assert!(!plan.to_string().contains("ixor"), "{plan}");
        let res = execute_query(&stmt, &plan, &c, &cat).unwrap();
        // i%2==0 (50) ∪ i%10==9 (10, all odd, disjoint) → 60.
        assert_eq!(res.docs_matched, 60);
    }

    #[test]
    fn disjunction_conjoined_with_value_predicate() {
        let mut c = Collection::new("SDOC");
        for i in 0..200u32 {
            c.build_doc("Security", |b| {
                b.leaf(
                    "Sector",
                    ["Energy", "Tech", "Retail", "Util"][(i % 4) as usize],
                );
                b.leaf("Yield", (i % 10) as f64);
            });
        }
        let s = runstats(&c);
        let cat = Catalog::new();
        let opt = Optimizer::new(&c, &s, &cat);
        let stmt = q(
            r#"for $s in SECURITY('SDOC')/Security[Sector = "Energy" or Sector = "Tech"]
               where $s/Yield = 4
               return $s"#,
        );
        let plan = opt.optimize(&stmt);
        let res = execute_query(&stmt, &plan, &c, &cat).unwrap();
        // Yield = 4 → i ≡ 4 (mod 10); of those, Sector ∈ {Energy, Tech} →
        // i%4 ∈ {0, 1}: i%20 ∈ {4, 14} → 4%4=0 ✓, 14%4=2 ✗ → 10 docs.
        assert_eq!(res.docs_matched, 10);
    }

    #[test]
    fn not_a_query_error_for_insert() {
        let c = setup();
        let cat = Catalog::new();
        let plan = Plan {
            access: AccessChoice::Scan,
            est_docs: 0.0,
            total_cost: 0.0,
            scan_cost: 0.0,
        };
        let ins = q("insert into SDOC <a/>");
        assert_eq!(
            execute_query(&ins, &plan, &c, &cat).unwrap_err(),
            ExecError::NotAQuery
        );
    }
}
