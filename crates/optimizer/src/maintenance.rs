//! Index maintenance cost — the `mc(x, s)` term of the paper's benefit
//! formula.
//!
//! The DB2 optimizer's cost estimates for update/delete/insert statements
//! do *not* include the cost of updating indexes, so the advisor subtracts
//! an explicit maintenance cost for every index in a candidate
//! configuration (paper Section III; detailed model in tech report
//! CS-2007-22). We model it as: entries touched × per-entry update cost.

use crate::cost::CostModel;
use crate::modes::Optimizer;
use xia_storage::{CollectionStats, IndexStats};
use xia_xml::{parse_document, Vocabulary};
use xia_xpath::{contain, LinearPath, Statement, ValueKind};

/// Counts the entries an index with `pattern`/`kind` would gain from an
/// inserted XML payload (parses into a scratch vocabulary; the payload may
/// introduce paths the collection has never seen).
pub fn payload_matching_entries(xml: &str, pattern: &LinearPath, kind: ValueKind) -> u64 {
    let mut vocab = Vocabulary::new();
    let Ok(doc) = parse_document(xml, &mut vocab) else {
        return 0;
    };
    let mut count = 0u64;
    for (_, node) in doc.nodes() {
        let Some(value) = &node.value else { continue };
        if kind == ValueKind::Num && value.as_num().is_none() {
            continue;
        }
        let labels: Vec<&str> = vocab
            .paths
            .labels(node.path)
            .iter()
            .map(|&s| vocab.names.resolve(s))
            .collect();
        if pattern.matches_labels(&labels) {
            count += 1;
        }
    }
    count
}

/// Maintenance cost of one index for one statement.
///
/// * queries: 0;
/// * insert: entries the payload adds to the index;
/// * delete: estimated victim docs × the index's entries-per-document;
/// * update: if the index covers the rewritten path, estimated victim docs
///   × 2 (delete + insert of the key).
pub fn maintenance_cost(
    pattern: &LinearPath,
    kind: ValueKind,
    index_stats: &IndexStats,
    stmt: &Statement,
    optimizer: &Optimizer<'_>,
    coll_stats: &CollectionStats,
    cm: &CostModel,
) -> f64 {
    match stmt {
        Statement::Query(_) => 0.0,
        Statement::Insert { xml, .. } => {
            payload_matching_entries(xml, pattern, kind) as f64 * cm.update_entry
        }
        Statement::Delete { .. } => {
            let docs = optimizer.estimate_target_docs(stmt);
            let per_doc = if coll_stats.doc_count == 0 {
                0.0
            } else {
                index_stats.entries as f64 / coll_stats.doc_count as f64
            };
            docs * per_doc * cm.update_entry
        }
        Statement::Update { set, .. } => {
            if contain::covers(pattern, set) {
                let docs = optimizer.estimate_target_docs(stmt);
                docs * 2.0 * cm.update_entry
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_storage::{runstats, Catalog, Collection};
    use xia_xpath::{parse_linear_path, parse_statement};

    #[test]
    fn payload_matching_counts_by_pattern_and_kind() {
        let xml = "<Security><Symbol>IBM</Symbol><Yield>4.5</Yield><Name>Intl</Name></Security>";
        let sym = parse_linear_path("/Security/Symbol").unwrap();
        assert_eq!(payload_matching_entries(xml, &sym, ValueKind::Str), 1);
        let all = parse_linear_path("/Security//*").unwrap();
        assert_eq!(payload_matching_entries(xml, &all, ValueKind::Str), 3);
        assert_eq!(payload_matching_entries(xml, &all, ValueKind::Num), 1);
        let other = parse_linear_path("/Order/Price").unwrap();
        assert_eq!(payload_matching_entries(xml, &other, ValueKind::Str), 0);
    }

    #[test]
    fn malformed_payload_counts_zero() {
        let p = parse_linear_path("/a").unwrap();
        assert_eq!(payload_matching_entries("<a><b>", &p, ValueKind::Str), 0);
    }

    fn setup() -> (Collection, xia_storage::CollectionStats, Catalog) {
        let mut c = Collection::new("SDOC");
        for i in 0..100u32 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Yield", (i % 10) as f64);
            });
        }
        let s = runstats(&c);
        let mut cat = Catalog::new();
        cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        (c, s, cat)
    }

    #[test]
    fn queries_have_zero_maintenance() {
        let (c, s, cat) = setup();
        let opt = Optimizer::new(&c, &s, &cat);
        let q = parse_statement(
            r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "S1" return $s"#,
        )
        .unwrap();
        let def = cat.iter().next().unwrap();
        let mc = maintenance_cost(
            &def.pattern,
            def.kind,
            &def.stats,
            &q,
            &opt,
            &s,
            opt.cost_model(),
        );
        assert_eq!(mc, 0.0);
    }

    #[test]
    fn insert_maintenance_charges_matching_entries() {
        let (c, s, cat) = setup();
        let opt = Optimizer::new(&c, &s, &cat);
        let ins =
            parse_statement("insert into SDOC <Security><Symbol>X</Symbol></Security>").unwrap();
        let def = cat.iter().next().unwrap();
        let mc = maintenance_cost(
            &def.pattern,
            def.kind,
            &def.stats,
            &ins,
            &opt,
            &s,
            opt.cost_model(),
        );
        assert!((mc - opt.cost_model().update_entry).abs() < 1e-9);
    }

    #[test]
    fn delete_maintenance_scales_with_victims() {
        let (c, s, cat) = setup();
        let opt = Optimizer::new(&c, &s, &cat);
        let selective =
            parse_statement(r#"delete from SDOC where /Security[Symbol = "S3"]"#).unwrap();
        let broad = parse_statement(r#"delete from SDOC where /Security[Yield >= 0]"#).unwrap();
        let def = cat.iter().next().unwrap();
        let mc_sel = maintenance_cost(
            &def.pattern,
            def.kind,
            &def.stats,
            &selective,
            &opt,
            &s,
            opt.cost_model(),
        );
        let mc_broad = maintenance_cost(
            &def.pattern,
            def.kind,
            &def.stats,
            &broad,
            &opt,
            &s,
            opt.cost_model(),
        );
        assert!(mc_broad > mc_sel * 10.0, "sel={mc_sel} broad={mc_broad}");
    }

    #[test]
    fn update_charges_only_covering_indexes() {
        let (c, s, cat) = setup();
        let opt = Optimizer::new(&c, &s, &cat);
        let upd = parse_statement(
            r#"update SDOC set /Security/Yield = 9 where /Security[Symbol = "S3"]"#,
        )
        .unwrap();
        let sym = parse_linear_path("/Security/Symbol").unwrap();
        let yld = parse_linear_path("/Security/Yield").unwrap();
        let def = cat.iter().next().unwrap();
        let mc_sym = maintenance_cost(
            &sym,
            ValueKind::Str,
            &def.stats,
            &upd,
            &opt,
            &s,
            opt.cost_model(),
        );
        let mc_yld = maintenance_cost(
            &yld,
            ValueKind::Num,
            &def.stats,
            &upd,
            &opt,
            &s,
            opt.cost_model(),
        );
        assert_eq!(mc_sym, 0.0);
        assert!(mc_yld > 0.0);
    }
}
