//! Query plans.

use std::fmt;
use xia_storage::IndexId;

/// One index probe within an index-ANDing plan.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexUse {
    /// The index probed.
    pub index: IndexId,
    /// Which access pattern of the normalized statement it answers.
    pub pattern_idx: usize,
    /// Estimated postings scanned from the index (after the value
    /// predicate, before path filtering — a general index returns postings
    /// for every path it covers).
    pub est_postings: f64,
    /// Estimated documents surviving this pattern (after path filtering).
    pub est_docs: f64,
    /// Estimated cost of the probe.
    pub probe_cost: f64,
}

/// One step of an index-ANDing plan: a single probe, or an index-ORing
/// union over the branches of a disjunctive predicate group.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// Probe one index for one conjunctive pattern.
    Probe(IndexUse),
    /// Index-ORing: probe one index per branch of `or_groups[group]` and
    /// union the document sets.
    Union {
        /// Which disjunction group of the normalized statement.
        group: usize,
        /// One probe per branch.
        branches: Vec<IndexUse>,
        /// Estimated documents surviving the union.
        est_docs: f64,
    },
}

impl PlanStep {
    /// Indexes probed by this step.
    pub fn indexes(&self) -> Vec<IndexId> {
        match self {
            PlanStep::Probe(u) => vec![u.index],
            PlanStep::Union { branches, .. } => branches.iter().map(|u| u.index).collect(),
        }
    }

    /// Estimated documents surviving this step.
    pub fn est_docs(&self) -> f64 {
        match self {
            PlanStep::Probe(u) => u.est_docs,
            PlanStep::Union { est_docs, .. } => *est_docs,
        }
    }

    /// Total probe cost of this step.
    pub fn probe_cost(&self) -> f64 {
        match self {
            PlanStep::Probe(u) => u.probe_cost,
            PlanStep::Union { branches, .. } => branches.iter().map(|u| u.probe_cost).sum(),
        }
    }
}

/// How the statement accesses its documents.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessChoice {
    /// Full collection scan with navigational predicate evaluation.
    Scan,
    /// Probe one or more indexes (possibly ORing over disjunction
    /// branches), intersect document sets, fetch, and evaluate residual
    /// predicates.
    IndexAnd(Vec<PlanStep>),
}

/// A costed plan for one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Chosen access path.
    pub access: AccessChoice,
    /// Estimated documents produced (for queries) or modified (for
    /// updates/deletes).
    pub est_docs: f64,
    /// Estimated total cost in timerons.
    pub total_cost: f64,
    /// Cost of the scan alternative, kept for speedup accounting.
    pub scan_cost: f64,
}

impl Plan {
    /// Indexes used by the plan, in probe order.
    pub fn used_indexes(&self) -> Vec<IndexId> {
        match &self.access {
            AccessChoice::Scan => Vec::new(),
            AccessChoice::IndexAnd(steps) => steps.iter().flat_map(|s| s.indexes()).collect(),
        }
    }

    /// Whether the plan uses any index.
    pub fn uses_indexes(&self) -> bool {
        matches!(&self.access, AccessChoice::IndexAnd(u) if !u.is_empty())
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.access {
            AccessChoice::Scan => write!(
                f,
                "SCAN cost={:.1} docs={:.1}",
                self.total_cost, self.est_docs
            ),
            AccessChoice::IndexAnd(steps) => {
                write!(f, "IXAND[")?;
                for (i, step) in steps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    match step {
                        PlanStep::Probe(u) => write!(f, "ix{}(p{})", u.index.0, u.pattern_idx)?,
                        PlanStep::Union {
                            group, branches, ..
                        } => {
                            write!(f, "ixor{}(", group)?;
                            for (j, u) in branches.iter().enumerate() {
                                if j > 0 {
                                    f.write_str("|")?;
                                }
                                write!(f, "ix{}", u.index.0)?;
                            }
                            write!(f, ")")?;
                        }
                    }
                }
                write!(f, "] cost={:.1} docs={:.1}", self.total_cost, self.est_docs)
            }
        }
    }
}

/// Renders a plan as a DB2-EXPLAIN-style operator tree, resolving index
/// ids against the catalog.
pub fn render_plan(plan: &Plan, catalog: &xia_storage::Catalog) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "estimated cost: {:.1} timerons (scan alternative: {:.1}), est. result docs: {:.1}",
        plan.total_cost, plan.scan_cost, plan.est_docs
    );
    match &plan.access {
        AccessChoice::Scan => {
            let _ = writeln!(out, "  RETURN");
            let _ = writeln!(
                out,
                "  └─ TBSCAN (full collection scan, navigational predicates)"
            );
        }
        AccessChoice::IndexAnd(steps) => {
            let _ = writeln!(out, "  RETURN");
            let _ = writeln!(out, "  └─ FETCH (residual predicates)");
            if steps.len() > 1 {
                let _ = writeln!(out, "     └─ IXAND (document-set intersection)");
            }
            let indent = if steps.len() > 1 { "        " } else { "     " };
            let write_use =
                |u: &IndexUse, indent: &str, out: &mut String| match catalog.get(u.index) {
                    Some(def) => {
                        let _ = writeln!(
                            out,
                            "{indent}└─ IXSCAN ix{} pattern='{}' [{}]{} est. postings {:.1}",
                            u.index.0,
                            def.pattern,
                            def.kind,
                            if def.is_virtual() { " (virtual)" } else { "" },
                            u.est_postings
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{indent}└─ IXSCAN ix{} (dropped)", u.index.0);
                    }
                };
            for step in steps {
                match step {
                    PlanStep::Probe(u) => write_use(u, indent, &mut out),
                    PlanStep::Union { branches, .. } => {
                        let _ = writeln!(out, "{indent}└─ IXOR (document-set union)");
                        let deeper = format!("{indent}   ");
                        for u in branches {
                            write_use(u, &deeper, &mut out);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn used_indexes_of_scan_is_empty() {
        let p = Plan {
            access: AccessChoice::Scan,
            est_docs: 10.0,
            total_cost: 100.0,
            scan_cost: 100.0,
        };
        assert!(p.used_indexes().is_empty());
        assert!(!p.uses_indexes());
        assert!(p.to_string().starts_with("SCAN"));
    }

    #[test]
    fn union_steps_aggregate_indexes_docs_and_cost() {
        let step = PlanStep::Union {
            group: 0,
            branches: vec![
                IndexUse {
                    index: IndexId(2),
                    pattern_idx: 0,
                    est_postings: 10.0,
                    est_docs: 10.0,
                    probe_cost: 3.0,
                },
                IndexUse {
                    index: IndexId(5),
                    pattern_idx: 1,
                    est_postings: 20.0,
                    est_docs: 20.0,
                    probe_cost: 4.0,
                },
            ],
            est_docs: 27.5,
        };
        assert_eq!(step.indexes(), vec![IndexId(2), IndexId(5)]);
        assert_eq!(step.est_docs(), 27.5);
        assert_eq!(step.probe_cost(), 7.0);
        let p = Plan {
            access: AccessChoice::IndexAnd(vec![step]),
            est_docs: 27.5,
            total_cost: 50.0,
            scan_cost: 100.0,
        };
        assert_eq!(p.used_indexes(), vec![IndexId(2), IndexId(5)]);
        assert!(p.to_string().contains("ixor0(ix2|ix5)"), "{p}");
    }

    #[test]
    fn used_indexes_in_probe_order() {
        let p = Plan {
            access: AccessChoice::IndexAnd(vec![
                PlanStep::Probe(IndexUse {
                    index: IndexId(3),
                    pattern_idx: 0,
                    est_postings: 5.0,
                    est_docs: 5.0,
                    probe_cost: 1.0,
                }),
                PlanStep::Probe(IndexUse {
                    index: IndexId(1),
                    pattern_idx: 1,
                    est_postings: 7.0,
                    est_docs: 7.0,
                    probe_cost: 2.0,
                }),
            ]),
            est_docs: 2.0,
            total_cost: 10.0,
            scan_cost: 100.0,
        };
        assert_eq!(p.used_indexes(), vec![IndexId(3), IndexId(1)]);
        assert!(p.uses_indexes());
        assert!(p.to_string().contains("ix3(p0)"));
    }
}
