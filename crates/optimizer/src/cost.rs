//! Cost model constants.
//!
//! Costs are in abstract "timerons" (the DB2 unit the paper's prototype
//! reports): a blend of I/O and CPU work. Absolute values are calibration
//! constants; the experiments only depend on their *ratios* (index probes
//! much cheaper than scans, I/O dominating CPU).

use xia_storage::size::{pages, PAGE_SIZE};

/// Tunable cost-model constants.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of reading one page.
    pub io_page: f64,
    /// CPU cost of visiting one node during navigation.
    pub cpu_node: f64,
    /// CPU cost of evaluating one predicate.
    pub cpu_pred: f64,
    /// CPU cost of scanning one index entry.
    pub cpu_entry: f64,
    /// CPU cost of locating and latching one document.
    pub cpu_fetch_doc: f64,
    /// Bytes of storage per node (structure overhead, values excluded).
    pub node_bytes: f64,
    /// Cost of writing one page.
    pub io_write_page: f64,
    /// Cost of maintaining one index entry on a data modification
    /// (the `mc` unit of the paper's benefit formula).
    pub update_entry: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            io_page: 10.0,
            cpu_node: 0.02,
            cpu_pred: 0.01,
            cpu_entry: 0.004,
            cpu_fetch_doc: 0.5,
            node_bytes: 24.0,
            io_write_page: 15.0,
            update_entry: 1.0,
        }
    }
}

impl CostModel {
    /// Storage bytes of a collection with `nodes` nodes and `value_bytes`
    /// bytes of text.
    pub fn collection_bytes(&self, nodes: f64, value_bytes: f64) -> f64 {
        nodes * self.node_bytes + value_bytes
    }

    /// Cost of a full collection scan with navigation-based predicate
    /// evaluation.
    pub fn scan_cost(&self, nodes: f64, value_bytes: f64, predicates: usize) -> f64 {
        let bytes = self.collection_bytes(nodes, value_bytes);
        pages(bytes) * self.io_page
            + nodes * self.cpu_node
            + nodes * predicates as f64 * self.cpu_pred * 0.1
    }

    /// Cost of probing an index: descend `levels`, then scan `postings`
    /// entries off the leaves.
    pub fn probe_cost(&self, levels: u32, postings: f64, entry_bytes: f64) -> f64 {
        let leaf_bytes = postings * entry_bytes;
        levels as f64 * self.io_page
            + pages(leaf_bytes).min(postings.max(1.0)) * self.io_page * 0.2
            + postings * self.cpu_entry
    }

    /// Cost of fetching `docs` documents of `avg_doc_nodes` nodes /
    /// `avg_doc_bytes` bytes each and evaluating `residual_preds` residual
    /// predicates by navigation.
    pub fn fetch_cost(
        &self,
        docs: f64,
        avg_doc_nodes: f64,
        avg_doc_bytes: f64,
        residual_preds: usize,
    ) -> f64 {
        let doc_pages = pages(avg_doc_nodes * self.node_bytes + avg_doc_bytes);
        docs * (self.cpu_fetch_doc + doc_pages * self.io_page)
            + docs * avg_doc_nodes * self.cpu_node * 0.5
            + docs * residual_preds as f64 * self.cpu_pred
    }

    /// Cost of writing back `docs` documents.
    pub fn write_cost(&self, docs: f64, avg_doc_nodes: f64, avg_doc_bytes: f64) -> f64 {
        let doc_pages = pages(avg_doc_nodes * self.node_bytes + avg_doc_bytes);
        docs * doc_pages * self.io_write_page
    }

    /// Cost of storing a freshly inserted document of `nodes` nodes.
    pub fn insert_cost(&self, nodes: f64, value_bytes: f64) -> f64 {
        let bytes = nodes * self.node_bytes + value_bytes;
        nodes * self.cpu_node + pages(bytes) * self.io_write_page
    }

    /// The page size the model assumes (re-exported for reports).
    pub fn page_size(&self) -> f64 {
        PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_cost_scales_with_data() {
        let m = CostModel::default();
        let small = m.scan_cost(1_000.0, 10_000.0, 1);
        let large = m.scan_cost(100_000.0, 1_000_000.0, 1);
        assert!(large > small * 50.0);
    }

    #[test]
    fn probe_is_much_cheaper_than_scan_for_selective_predicates() {
        let m = CostModel::default();
        let scan = m.scan_cost(1_000_000.0, 10_000_000.0, 1);
        let probe = m.probe_cost(3, 10.0, 20.0);
        assert!(probe * 100.0 < scan, "probe={probe} scan={scan}");
    }

    #[test]
    fn fetch_cost_scales_with_docs() {
        let m = CostModel::default();
        let one = m.fetch_cost(1.0, 50.0, 500.0, 1);
        let hundred = m.fetch_cost(100.0, 50.0, 500.0, 1);
        assert!((hundred / one - 100.0).abs() < 1e-6);
    }

    #[test]
    fn insert_cost_is_positive_and_monotonic() {
        let m = CostModel::default();
        assert!(m.insert_cost(10.0, 100.0) > 0.0);
        assert!(m.insert_cost(100.0, 1_000.0) > m.insert_cost(10.0, 100.0));
    }
}
