//! The optimizer proper, with the two advisor-facing modes.

use crate::cost::CostModel;
use crate::matching::{self, CandidatePattern};
use crate::plan::{AccessChoice, IndexUse, Plan, PlanStep};
use crate::selectivity::PatternStats;
use std::cell::Cell;
use std::fmt;
use xia_fault::{FaultInjector, FaultSite, InjectedFault};
use xia_obs::{Counter, Telemetry};
use xia_storage::{Catalog, CatalogView, Collection, CollectionStats};
use xia_xpath::{normalize_statement, NormalizedQuery, Statement, ValueKind};

/// An Evaluate-mode costing failure. The what-if interface treats the
/// optimizer as an oracle; this is the oracle declining to answer — the
/// advisor degrades to cached or heuristic costs instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostError {
    /// A fault injected by the xia-fault harness.
    Injected(InjectedFault),
    /// Collection statistics were unavailable or stale for the named
    /// collection, so no cost estimate could be produced.
    StatsUnavailable(String),
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::Injected(e) => write!(f, "optimizer cost estimation failed: {e}"),
            CostError::StatsUnavailable(coll) => {
                write!(f, "statistics unavailable for collection `{coll}`")
            }
        }
    }
}

impl std::error::Error for CostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CostError::Injected(e) => Some(e),
            CostError::StatsUnavailable(_) => None,
        }
    }
}

/// A cost-based optimizer bound to one collection's data, statistics, and
/// catalog — the server-side component the advisor calls into.
pub struct Optimizer<'a> {
    collection: &'a Collection,
    stats: &'a CollectionStats,
    catalog: CatalogView<'a>,
    cost_model: CostModel,
    evaluate_calls: Cell<u64>,
    /// Telemetry sink for mode entry points, index-matching attempts, and
    /// selectivity estimates (off unless attached).
    telemetry: Telemetry,
    /// Fault injector for Evaluate-mode failures (off unless attached).
    faults: FaultInjector,
}

impl<'a> Optimizer<'a> {
    /// Binds an optimizer to a collection.
    pub fn new(
        collection: &'a Collection,
        stats: &'a CollectionStats,
        catalog: &'a Catalog,
    ) -> Self {
        Self::with_cost_model(collection, stats, catalog, CostModel::default())
    }

    /// Binds an optimizer to a catalog view (base catalog plus an optional
    /// what-if overlay). This is Evaluate mode's side-effect-free entry
    /// point: the candidate configuration lives in the overlay, the shared
    /// catalog is never mutated, and any number of such optimizers can
    /// cost concurrently against the same database.
    pub fn with_view(
        collection: &'a Collection,
        stats: &'a CollectionStats,
        view: CatalogView<'a>,
    ) -> Self {
        Self::with_view_cost_model(collection, stats, view, CostModel::default())
    }

    /// Binds an optimizer with a custom cost model.
    pub fn with_cost_model(
        collection: &'a Collection,
        stats: &'a CollectionStats,
        catalog: &'a Catalog,
        cost_model: CostModel,
    ) -> Self {
        Self::with_view_cost_model(collection, stats, catalog.view(), cost_model)
    }

    /// [`Optimizer::with_view`] with a custom cost model.
    pub fn with_view_cost_model(
        collection: &'a Collection,
        stats: &'a CollectionStats,
        view: CatalogView<'a>,
        cost_model: CostModel,
    ) -> Self {
        Self {
            collection,
            stats,
            catalog: view,
            cost_model,
            evaluate_calls: Cell::new(0),
            telemetry: Telemetry::off(),
            faults: FaultInjector::off(),
        }
    }

    /// Attaches a telemetry sink; subsequent mode calls count against it.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    /// Attaches a fault injector; subsequent [`Optimizer::try_optimize`]
    /// calls roll its `optimizer-cost` site.
    pub fn set_faults(&mut self, faults: &FaultInjector) {
        self.faults = faults.clone();
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Number of Evaluate-mode invocations so far (the paper's Fig. 3
    /// efficiency metric).
    pub fn evaluate_calls(&self) -> u64 {
        self.evaluate_calls.get()
    }

    /// Resets the Evaluate-mode call counter.
    pub fn reset_calls(&self) {
        self.evaluate_calls.set(0);
    }

    /// **Enumerate Indexes mode** (paper Section IV): optimize `stmt` with
    /// the universal `//*` virtual index in place and return the rewritten
    /// query patterns that index matching matched — the basic candidates.
    ///
    /// The returned patterns have predicates already folded in (the access
    /// patterns of the normalized statement) and carry the key type implied
    /// by the compared literal.
    pub fn enumerate_indexes(&self, stmt: &Statement) -> Vec<CandidatePattern> {
        self.telemetry.incr(Counter::OptimizerEnumerateCalls);
        let Some(nq) = normalize_statement(stmt) else {
            return Vec::new(); // inserts read nothing
        };
        let mut out: Vec<CandidatePattern> = Vec::new();
        for ap in nq.patterns.iter().chain(nq.or_groups.iter().flatten()) {
            // The //* universal index matches every indexable pattern.
            if !matching::pattern_is_indexable(ap) {
                continue;
            }
            // Existence patterns become string-typed candidates (the key
            // type is irrelevant for structural access; DB2 would create a
            // VARCHAR index).
            let kind = ap.pred.value_kind().unwrap_or(ValueKind::Str);
            let cand = CandidatePattern {
                collection: nq.collection.clone(),
                pattern: ap.linear.clone(),
                kind,
            };
            if !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }

    /// **Evaluate Indexes mode** (paper Section III): return the best plan
    /// for `stmt` under the current catalog, virtual indexes included.
    /// Counted — the advisor's benefit evaluation efficiency is measured in
    /// these calls.
    pub fn optimize(&self, stmt: &Statement) -> Plan {
        self.evaluate_calls.set(self.evaluate_calls.get() + 1);
        self.telemetry.incr(Counter::OptimizerEvaluateCalls);
        match normalize_statement(stmt) {
            Some(nq) => self.plan_normalized(&nq),
            None => self.plan_insert(stmt),
        }
    }

    /// Fallible Evaluate-mode entry point: like [`Optimizer::optimize`],
    /// but rolls the attached fault injector's `optimizer-cost` site first
    /// and reports the failure instead of costing. The advisor uses this
    /// for what-if calls so it can degrade gracefully; direct execution
    /// paths keep the infallible [`Optimizer::optimize`].
    pub fn try_optimize(&self, stmt: &Statement) -> Result<Plan, CostError> {
        if let Err(e) = self.faults.roll(FaultSite::OptimizerCost) {
            self.telemetry.incr(Counter::FaultsInjected);
            return Err(CostError::Injected(e));
        }
        Ok(self.optimize(stmt))
    }

    /// Plans a normalized statement (shared by queries, deletes, updates).
    pub fn plan_normalized(&self, nq: &NormalizedQuery) -> Plan {
        let cm = &self.cost_model;
        let total_nodes = self.stats.node_count as f64;
        let total_bytes = self.stats.value_bytes as f64;
        let pred_count = nq.patterns.len() + nq.or_groups.len();

        // --- Scan alternative -------------------------------------------
        self.telemetry.incr(Counter::SelectivityEstimates);
        let root_stats = PatternStats::collect(&nq.root, self.collection, self.stats);
        let root_docs = root_stats.docs_upper as f64;
        let est_docs_scan = self.estimate_result_docs(nq, root_docs);
        let mut scan_cost = cm.scan_cost(total_nodes, total_bytes, pred_count);
        if nq.is_modification {
            scan_cost += cm.write_cost(
                est_docs_scan,
                self.stats.avg_doc_nodes(),
                self.stats.avg_doc_bytes(),
            );
        }

        // --- Index alternative -------------------------------------------
        let mut steps: Vec<PlanStep> = Vec::new();
        for (pi, ap) in nq.patterns.iter().enumerate() {
            if let Some(u) = self.best_index_use(pi, ap) {
                steps.push(PlanStep::Probe(u));
            }
        }
        // Index-ORing: a disjunction group is indexable only if *every*
        // branch has a matching index (otherwise the union is incomplete
        // and the group must be evaluated residually).
        for (gi, group) in nq.or_groups.iter().enumerate() {
            let branches: Vec<Option<IndexUse>> = group
                .iter()
                .enumerate()
                .map(|(bi, ap)| self.best_index_use(bi, ap))
                .collect();
            if branches.iter().all(|b| b.is_some()) && !group.is_empty() {
                let branches: Vec<IndexUse> = branches
                    .into_iter()
                    .map(|b| b.expect("checked all some"))
                    .collect();
                let est_docs = if root_docs == 0.0 {
                    0.0
                } else {
                    let miss: f64 = branches
                        .iter()
                        .map(|u| 1.0 - (u.est_docs / root_docs).clamp(0.0, 1.0))
                        .product();
                    root_docs * (1.0 - miss)
                };
                steps.push(PlanStep::Union {
                    group: gi,
                    branches,
                    est_docs,
                });
            }
        }

        // Greedy index-ANDing: most selective first; keep adding while the
        // combined cost improves. This creates real index interaction.
        steps.sort_by(|a, b| {
            a.est_docs()
                .partial_cmp(&b.est_docs())
                .expect("finite doc estimates")
        });
        let mut chosen: Vec<PlanStep> = Vec::new();
        let mut best_cost = f64::INFINITY;
        let mut best_len = 0usize;
        for i in 0..steps.len() {
            let prefix = &steps[..=i];
            let cost = self.index_and_cost(nq, prefix, root_docs);
            if cost < best_cost {
                best_cost = cost;
                best_len = i + 1;
            }
        }
        chosen.extend_from_slice(&steps[..best_len]);

        if chosen.is_empty() || best_cost >= scan_cost {
            Plan {
                access: AccessChoice::Scan,
                est_docs: est_docs_scan,
                total_cost: scan_cost,
                scan_cost,
            }
        } else {
            let est_docs = self.combined_docs(&chosen, root_docs, nq, true);
            Plan {
                access: AccessChoice::IndexAnd(chosen),
                est_docs,
                total_cost: best_cost,
                scan_cost,
            }
        }
    }

    /// The cheapest matching index probe for one access pattern, if any.
    fn best_index_use(
        &self,
        pattern_idx: usize,
        ap: &xia_xpath::AccessPattern,
    ) -> Option<IndexUse> {
        let mut best: Option<IndexUse> = None;
        for def in matching::matching_indexes_traced(self.catalog, ap, &self.telemetry) {
            let use_ = self.cost_index_use(pattern_idx, ap, def);
            let better = match &best {
                None => true,
                Some(b) => {
                    use_.probe_cost < b.probe_cost
                        || (use_.probe_cost == b.probe_cost && use_.est_postings < b.est_postings)
                }
            };
            if better {
                best = Some(use_);
            }
        }
        best
    }

    fn cost_index_use(
        &self,
        pattern_idx: usize,
        ap: &xia_xpath::AccessPattern,
        def: &xia_storage::IndexDef,
    ) -> IndexUse {
        let cm = &self.cost_model;
        self.telemetry.incr(Counter::SelectivityEstimates);
        let pat_stats = PatternStats::collect(&ap.linear, self.collection, self.stats);
        let (est_docs, est_postings) = match &ap.pred {
            // Existence: answered from the index's per-path document lists
            // (structural postings); the probe is keyed by path id, so a
            // general index pays no extra.
            xia_xpath::PatternPred::Exists => {
                let docs = pat_stats.docs_upper as f64;
                (docs, docs)
            }
            xia_xpath::PatternPred::Compare(op, _) => {
                // Pattern-level matches (what survives path filtering).
                let kind = ap.pred.value_kind().unwrap_or(ValueKind::Str);
                let sel_q = pat_stats.predicate_selectivity(&ap.pred, self.stats);
                let m_nodes = pat_stats.matching_nodes(&ap.pred, kind, self.stats);
                let est_docs = pat_stats.matching_docs(m_nodes);
                // A probe of a more general index also scans postings from
                // paths beyond the query pattern's (path-filtered away
                // afterwards). We charge a leakage fraction of the extra
                // entries: small for equality probes (mostly disjoint key
                // domains), larger for range probes (numeric ranges overlap
                // across paths). This keeps the specific index strictly
                // preferable when both match, while the general index still
                // beats a scan — the trade-off the paper's search
                // algorithms navigate.
                let entries_pattern = pat_stats.entries_for(kind) as f64;
                let extra_entries = (def.stats.entries as f64 - entries_pattern).max(0.0);
                let leak = if op.is_equality() { 0.05 } else { 0.25 };
                (est_docs, m_nodes + extra_entries * sel_q * leak)
            }
        };
        let probe_cost = cm.probe_cost(
            def.stats.levels,
            est_postings,
            def.stats.avg_key_width + xia_storage::size::POSTING_BYTES,
        );
        IndexUse {
            index: def.id,
            pattern_idx,
            est_postings,
            est_docs,
            probe_cost,
        }
    }

    /// Estimated documents surviving the intersection of the chosen index
    /// probes (independence assumption), optionally applying the residual
    /// (non-indexed) predicates too.
    fn combined_docs(
        &self,
        steps: &[PlanStep],
        root_docs: f64,
        nq: &NormalizedQuery,
        apply_residual: bool,
    ) -> f64 {
        if root_docs == 0.0 {
            return 0.0;
        }
        let mut docs = root_docs;
        for s in steps {
            docs *= (s.est_docs() / root_docs).clamp(0.0, 1.0);
        }
        if apply_residual {
            let covered: std::collections::HashSet<usize> = steps
                .iter()
                .filter_map(|s| match s {
                    PlanStep::Probe(u) => Some(u.pattern_idx),
                    PlanStep::Union { .. } => None,
                })
                .collect();
            let covered_groups: std::collections::HashSet<usize> = steps
                .iter()
                .filter_map(|s| match s {
                    PlanStep::Union { group, .. } => Some(*group),
                    PlanStep::Probe(_) => None,
                })
                .collect();
            for (pi, ap) in nq.patterns.iter().enumerate() {
                if covered.contains(&pi) {
                    continue;
                }
                let d = self.pattern_docs(ap);
                docs *= (d / root_docs).clamp(0.0, 1.0);
            }
            for (gi, group) in nq.or_groups.iter().enumerate() {
                if covered_groups.contains(&gi) {
                    continue;
                }
                docs *= self.group_selectivity(group, root_docs);
            }
        }
        docs
    }

    /// Selectivity of a disjunction group: 1 − Π(1 − sel_branch).
    fn group_selectivity(&self, group: &[xia_xpath::AccessPattern], root_docs: f64) -> f64 {
        if root_docs == 0.0 {
            return 0.0;
        }
        let miss: f64 = group
            .iter()
            .map(|ap| 1.0 - (self.pattern_docs(ap) / root_docs).clamp(0.0, 1.0))
            .product();
        (1.0 - miss).clamp(0.0, 1.0)
    }

    /// Estimated documents satisfying one access pattern.
    fn pattern_docs(&self, ap: &xia_xpath::AccessPattern) -> f64 {
        self.telemetry.incr(Counter::SelectivityEstimates);
        let ps = PatternStats::collect(&ap.linear, self.collection, self.stats);
        match &ap.pred {
            xia_xpath::PatternPred::Exists => ps.docs_upper as f64,
            xia_xpath::PatternPred::Compare(..) => {
                let kind = ap.pred.value_kind().unwrap_or(ValueKind::Str);
                let m = ps.matching_nodes(&ap.pred, kind, self.stats);
                ps.matching_docs(m)
            }
        }
    }

    fn index_and_cost(&self, nq: &NormalizedQuery, steps: &[PlanStep], root_docs: f64) -> f64 {
        let cm = &self.cost_model;
        let probe: f64 = steps.iter().map(|s| s.probe_cost()).sum();
        let docs_after_indexes = self.combined_docs(steps, root_docs, nq, false);
        let residual_preds = (nq.patterns.len() + nq.or_groups.len()).saturating_sub(steps.len());
        let mut cost = probe
            + cm.fetch_cost(
                docs_after_indexes,
                self.stats.avg_doc_nodes(),
                self.stats.avg_doc_bytes(),
                residual_preds,
            );
        if nq.is_modification {
            let final_docs = self.combined_docs(steps, root_docs, nq, true);
            cost += cm.write_cost(
                final_docs,
                self.stats.avg_doc_nodes(),
                self.stats.avg_doc_bytes(),
            );
        }
        cost
    }

    /// Estimated result documents applying all predicates by navigation.
    fn estimate_result_docs(&self, nq: &NormalizedQuery, root_docs: f64) -> f64 {
        if root_docs == 0.0 {
            return 0.0;
        }
        let mut docs = root_docs;
        for ap in &nq.patterns {
            let d = self.pattern_docs(ap);
            docs *= (d / root_docs).clamp(0.0, 1.0);
        }
        for group in &nq.or_groups {
            docs *= self.group_selectivity(group, root_docs);
        }
        docs
    }

    /// Estimated documents a modification statement touches (used by the
    /// maintenance-cost model).
    pub fn estimate_target_docs(&self, stmt: &Statement) -> f64 {
        match normalize_statement(stmt) {
            Some(nq) => {
                self.telemetry.incr(Counter::SelectivityEstimates);
                let root_stats = PatternStats::collect(&nq.root, self.collection, self.stats);
                self.estimate_result_docs(&nq, root_stats.docs_upper as f64)
            }
            None => 1.0, // an insert affects exactly its own document
        }
    }

    fn plan_insert(&self, stmt: &Statement) -> Plan {
        let Statement::Insert { xml, .. } = stmt else {
            unreachable!("only inserts normalize to None");
        };
        let nodes = estimate_payload_nodes(xml) as f64;
        let bytes = xml.len() as f64;
        let cost = self.cost_model.insert_cost(nodes, bytes);
        Plan {
            access: AccessChoice::Scan,
            est_docs: 1.0,
            total_cost: cost,
            scan_cost: cost,
        }
    }
}

/// Cheap estimate of the node count of an XML payload without parsing it:
/// open tags plus attributes.
pub fn estimate_payload_nodes(xml: &str) -> u64 {
    let bytes = xml.as_bytes();
    let mut count = 0u64;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            match bytes.get(i + 1) {
                Some(b'/') | Some(b'!') | Some(b'?') => {}
                Some(_) => count += 1,
                None => {}
            }
        } else if bytes[i] == b'=' {
            // Rough attribute counter: every `="` inside a tag.
            if bytes.get(i + 1) == Some(&b'"') {
                count += 1;
            }
        }
        i += 1;
    }
    count.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_storage::runstats;
    use xia_xpath::{parse_linear_path, parse_statement};

    fn big_collection() -> Collection {
        let mut c = Collection::new("SDOC");
        for i in 0..2_000u32 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Yield", (i % 100) as f64 / 10.0);
                b.begin("SecInfo");
                b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
                b.leaf(
                    "Sector",
                    ["Energy", "Tech", "Retail", "Util"][(i % 4) as usize],
                );
                b.end();
                b.end();
                b.leaf("Name", format!("Security {i}").as_str());
            });
        }
        c
    }

    fn q_symbol() -> Statement {
        parse_statement(r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "S42" return $s"#)
            .unwrap()
    }

    #[test]
    fn enumerate_mode_returns_paper_candidates() {
        let c = big_collection();
        let s = runstats(&c);
        let cat = Catalog::new();
        let opt = Optimizer::new(&c, &s, &cat);
        let q2 = parse_statement(
            r#"for $sec in SECURITY('SDOC')/Security[Yield>4.5]
               where $sec/SecInfo/*/Sector = "Energy"
               return <Security>{$sec/Name}</Security>"#,
        )
        .unwrap();
        let cands = opt.enumerate_indexes(&q2);
        let pats: Vec<String> = cands.iter().map(|c| c.pattern.to_string()).collect();
        assert_eq!(pats, vec!["/Security/Yield", "/Security/SecInfo/*/Sector"]);
        assert_eq!(cands[0].kind, ValueKind::Num);
        assert_eq!(cands[1].kind, ValueKind::Str);
        // Enumerate mode does not bump the Evaluate counter.
        assert_eq!(opt.evaluate_calls(), 0);
    }

    #[test]
    fn no_indexes_means_scan_plan() {
        let c = big_collection();
        let s = runstats(&c);
        let cat = Catalog::new();
        let opt = Optimizer::new(&c, &s, &cat);
        let plan = opt.optimize(&q_symbol());
        assert_eq!(plan.access, AccessChoice::Scan);
        assert_eq!(opt.evaluate_calls(), 1);
    }

    #[test]
    fn matching_virtual_index_beats_scan_for_selective_query() {
        let c = big_collection();
        let s = runstats(&c);
        let mut cat = Catalog::new();
        let id = cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let plan = opt.optimize(&q_symbol());
        assert!(plan.uses_indexes(), "plan = {plan}");
        assert_eq!(plan.used_indexes(), vec![id]);
        assert!(plan.total_cost < plan.scan_cost);
    }

    #[test]
    fn optimizer_prefers_cheaper_specific_index_over_general() {
        let c = big_collection();
        let s = runstats(&c);
        let mut cat = Catalog::new();
        let general = cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security//*").unwrap(),
            ValueKind::Str,
        );
        let specific = cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let plan = opt.optimize(&q_symbol());
        assert_eq!(plan.used_indexes(), vec![specific]);
        let _ = general;
    }

    #[test]
    fn general_index_is_used_when_it_is_the_only_match() {
        let c = big_collection();
        let s = runstats(&c);
        let mut cat = Catalog::new();
        let general = cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security//*").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let plan = opt.optimize(&q_symbol());
        assert_eq!(plan.used_indexes(), vec![general]);
        // The general probe is costed higher than a specific probe would
        // be, but still far below a scan for an equality predicate.
        assert!(plan.total_cost < plan.scan_cost);
    }

    #[test]
    fn index_anding_uses_multiple_indexes_when_worthwhile() {
        let c = big_collection();
        let s = runstats(&c);
        let mut cat = Catalog::new();
        cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Yield").unwrap(),
            ValueKind::Num,
        );
        cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/SecInfo/*/Sector").unwrap(),
            ValueKind::Str,
        );
        let opt = Optimizer::new(&c, &s, &cat);
        let q = parse_statement(
            r#"for $sec in SECURITY('SDOC')/Security[Yield = 4.5]
               where $sec/SecInfo/*/Sector = "Energy"
               return $sec"#,
        )
        .unwrap();
        let plan = opt.optimize(&q);
        assert!(plan.uses_indexes());
        // Both predicates are selective; the optimizer should AND them.
        assert_eq!(plan.used_indexes().len(), 2, "plan = {plan}");
    }

    #[test]
    fn index_interaction_second_index_adds_less_benefit() {
        let c = big_collection();
        let s = runstats(&c);
        // Cost with only the symbol index.
        let mut cat1 = Catalog::new();
        cat1.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        let q = parse_statement(
            r#"for $s in SECURITY('SDOC')/Security
               where $s/Symbol = "S42" and $s/Yield > 4.5
               return $s"#,
        )
        .unwrap();
        let opt1 = Optimizer::new(&c, &s, &cat1);
        let cost1 = opt1.optimize(&q).total_cost;
        // Adding a yield index on top of the (unique-key) symbol index
        // changes little: interaction.
        let mut cat2 = Catalog::new();
        cat2.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        cat2.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Yield").unwrap(),
            ValueKind::Num,
        );
        let opt2 = Optimizer::new(&c, &s, &cat2);
        let cost2 = opt2.optimize(&q).total_cost;
        let scan = opt2.optimize(&q).scan_cost;
        let benefit1 = scan - cost1;
        let benefit2 = scan - cost2;
        assert!(benefit2 <= benefit1 * 1.2, "b1={benefit1} b2={benefit2}");
        assert!(benefit2 - benefit1 < benefit1 * 0.5);
    }

    #[test]
    fn update_plans_include_write_cost() {
        let c = big_collection();
        let s = runstats(&c);
        let cat = Catalog::new();
        let opt = Optimizer::new(&c, &s, &cat);
        let upd = parse_statement(
            r#"update SDOC set /Security/Yield = 9.9 where /Security[Symbol = "S42"]"#,
        )
        .unwrap();
        let q = q_symbol();
        let upd_cost = opt.optimize(&upd).total_cost;
        let q_cost = opt.optimize(&q).total_cost;
        assert!(upd_cost > q_cost);
    }

    #[test]
    fn insert_plan_costs_payload() {
        let c = big_collection();
        let s = runstats(&c);
        let cat = Catalog::new();
        let opt = Optimizer::new(&c, &s, &cat);
        let small = parse_statement("insert into SDOC <a><b>1</b></a>").unwrap();
        let big_xml = format!("insert into SDOC <a>{}</a>", "<b>x</b>".repeat(500));
        let big = parse_statement(&big_xml).unwrap();
        let cs = opt.optimize(&small).total_cost;
        let cb = opt.optimize(&big).total_cost;
        assert!(cb > cs);
        assert_eq!(opt.evaluate_calls(), 2);
    }

    #[test]
    fn estimate_payload_nodes_counts_tags_and_attrs() {
        assert_eq!(estimate_payload_nodes("<a><b>1</b><c/></a>"), 3);
        assert_eq!(estimate_payload_nodes(r#"<a id="1"><b/></a>"#), 3);
        assert_eq!(estimate_payload_nodes(""), 1);
    }

    #[test]
    fn try_optimize_reports_injected_cost_faults() {
        let c = big_collection();
        let s = runstats(&c);
        let cat = Catalog::new();
        let mut opt = Optimizer::new(&c, &s, &cat);
        // No injector attached: behaves exactly like optimize().
        assert!(opt.try_optimize(&q_symbol()).is_ok());
        let f = xia_fault::FaultInjector::seeded(11).with_always(FaultSite::OptimizerCost);
        opt.set_faults(&f);
        match opt.try_optimize(&q_symbol()) {
            Err(CostError::Injected(e)) => assert_eq!(e.site, FaultSite::OptimizerCost),
            other => panic!("expected injected fault, got {other:?}"),
        }
        assert_eq!(f.injected(FaultSite::OptimizerCost), 1);
    }

    #[test]
    fn estimate_target_docs_for_selective_delete() {
        let c = big_collection();
        let s = runstats(&c);
        let cat = Catalog::new();
        let opt = Optimizer::new(&c, &s, &cat);
        let del = parse_statement(r#"delete from SDOC where /Security[Symbol = "S42"]"#).unwrap();
        let docs = opt.estimate_target_docs(&del);
        assert!((0.5..=5.0).contains(&docs), "docs = {docs}");
        let ins = parse_statement("insert into SDOC <a/>").unwrap();
        assert_eq!(opt.estimate_target_docs(&ins), 1.0);
    }
}
