//! # xia-optimizer
//!
//! The cost-based XML query optimizer the advisor couples to — the role the
//! modified DB2 9 optimizer plays in the paper.
//!
//! The advisor treats the optimizer as an oracle through two modes
//! (Section III of the paper):
//!
//! * **Enumerate Indexes** ([`Optimizer::enumerate_indexes`]): optimize a
//!   statement with the universal `//*` virtual index in place and report
//!   every rewritten query pattern that index matching matched — the *basic
//!   candidates*.
//! * **Evaluate Indexes** ([`Optimizer::optimize`]): cost a statement under
//!   the current catalog (including virtual indexes) and return the best
//!   plan. Every call increments a counter, because minimizing optimizer
//!   calls is one of the paper's claims (Fig. 3) and the advisor's
//!   sub-configuration machinery is measured against it.
//!
//! Plans really do use multiple indexes (index-ANDing over document sets),
//! so *index interaction* — the benefit of an index depending on what other
//! indexes exist — is a real phenomenon here, which the paper's top-down
//! *full* search exploits and its *lite* variant ignores.
//!
//! [`exec`] executes plans against physical storage; it refuses virtual
//! indexes, mirroring the paper's separation between what-if costing and
//! execution.

pub mod cost;
pub mod exec;
pub mod maintenance;
pub mod matching;
pub mod modes;
pub mod plan;
pub mod selectivity;

pub use cost::CostModel;
pub use exec::{execute_query, execute_query_items, ExecError, ExecResult};
pub use matching::{index_matches, statement_signature, CandidatePattern};
pub use modes::{CostError, Optimizer};
pub use plan::{AccessChoice, IndexUse, Plan, PlanStep};
pub use selectivity::PatternStats;
