//! Index matching: which catalog indexes can answer which query patterns.
//!
//! An index with pattern `P` and kind `K` matches an access pattern `(Q,
//! pred)` iff `P` *covers* `Q` (language inclusion over rooted label paths)
//! and `K` equals the predicate's literal type. This is the optimizer-side
//! index-matching step the paper's candidate enumeration piggybacks on.

use xia_storage::{Catalog, CatalogView, IndexDef};
use xia_xpath::{
    contain, AccessPattern, CmpOp, LinearPath, PatternPred, Statement, StatementSignature,
    ValueKind,
};

/// A candidate index pattern enumerated by the optimizer for one statement
/// (the output of the Enumerate Indexes mode).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePattern {
    /// Collection the statement (and hence the index) targets.
    pub collection: String,
    /// The linear index pattern (the access pattern's path, verbatim — the
    /// paper's basic candidates keep the wildcard steps the query exposed,
    /// cf. C2 in Table I).
    pub pattern: LinearPath,
    /// Key type implied by the compared literal.
    pub kind: ValueKind,
}

/// Whether the access pattern can be answered by *some* index — the check
/// the `//*` universal virtual index performs in Enumerate mode. `!=`
/// predicates are not index-matched (a B-tree probe cannot narrow them);
/// existence tests are answered structurally (the index's per-path
/// document lists).
pub fn pattern_is_indexable(ap: &AccessPattern) -> bool {
    match &ap.pred {
        PatternPred::Compare(op, _) => *op != CmpOp::Ne,
        PatternPred::Exists => true,
    }
}

/// Whether index `def` matches access pattern `ap`. Value comparisons
/// additionally require the key types to agree; existence tests are
/// key-type independent.
pub fn index_matches(def: &IndexDef, ap: &AccessPattern) -> bool {
    if !pattern_is_indexable(ap) {
        return false;
    }
    match ap.pred.value_kind() {
        Some(kind) => kind == def.kind && contain::covers(&def.pattern, &ap.linear),
        // Existence: any kind works (structural postings are kept either
        // way).
        None => contain::covers(&def.pattern, &ap.linear),
    }
}

/// The statement's index-matching surface: every indexable access pattern
/// its plans could probe an index with, plus the collection. Plan costing
/// consults the catalog *only* through [`index_matches`] over these
/// patterns (inserts never consult it at all), so an index matching none
/// of them cannot influence the statement's plan or cost — this is what
/// the advisor's relevance pruning is derived from.
pub fn statement_signature(stmt: &Statement) -> StatementSignature {
    match xia_xpath::normalize_statement(stmt) {
        Some(nq) => {
            let targets = nq
                .patterns
                .iter()
                .chain(nq.or_groups.iter().flatten())
                .filter(|ap| pattern_is_indexable(ap))
                .map(|ap| (ap.linear.clone(), ap.pred.value_kind()))
                .collect();
            StatementSignature {
                collection: nq.collection,
                targets,
            }
        }
        // Inserts read nothing: their plans are catalog-independent.
        None => StatementSignature {
            collection: stmt.collection().to_string(),
            targets: Vec::new(),
        },
    }
}

/// All live catalog indexes matching an access pattern.
pub fn matching_indexes<'c>(catalog: &'c Catalog, ap: &AccessPattern) -> Vec<&'c IndexDef> {
    matching_indexes_view(catalog.view(), ap)
}

/// [`matching_indexes`] over a catalog view (base catalog plus an optional
/// what-if overlay) — the side-effect-free form Evaluate mode uses.
pub fn matching_indexes_view<'c>(view: CatalogView<'c>, ap: &AccessPattern) -> Vec<&'c IndexDef> {
    view.iter().filter(|d| index_matches(d, ap)).collect()
}

/// [`matching_indexes_view`] with each containment test counted against a
/// telemetry sink (one attempt per live index definition probed).
pub fn matching_indexes_traced<'c>(
    view: CatalogView<'c>,
    ap: &AccessPattern,
    telemetry: &xia_obs::Telemetry,
) -> Vec<&'c IndexDef> {
    let mut attempts = 0u64;
    let out = view
        .iter()
        .filter(|d| {
            attempts += 1;
            index_matches(d, ap)
        })
        .collect();
    telemetry.add(xia_obs::Counter::IndexMatchingAttempts, attempts);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_storage::{runstats, Collection};
    use xia_xpath::{parse_linear_path, Literal};

    fn ap(path: &str, op: CmpOp, lit: Literal) -> AccessPattern {
        AccessPattern {
            linear: parse_linear_path(path).unwrap(),
            pred: PatternPred::Compare(op, lit),
        }
    }

    fn catalog_with(patterns: &[(&str, ValueKind)]) -> Catalog {
        let mut c = Collection::new("SDOC");
        c.build_doc("Security", |b| {
            b.leaf("Symbol", "IBM");
            b.leaf("Yield", 4.5);
        });
        let s = runstats(&c);
        let mut cat = Catalog::new();
        for (p, k) in patterns {
            cat.create_virtual(&c, &s, &parse_linear_path(p).unwrap(), *k);
        }
        cat
    }

    #[test]
    fn exact_pattern_matches() {
        let cat = catalog_with(&[("/Security/Symbol", ValueKind::Str)]);
        let a = ap("/Security/Symbol", CmpOp::Eq, Literal::Str("IBM".into()));
        assert_eq!(matching_indexes(&cat, &a).len(), 1);
    }

    #[test]
    fn general_index_matches_specific_pattern() {
        let cat = catalog_with(&[("/Security//*", ValueKind::Str)]);
        let a = ap("/Security/Symbol", CmpOp::Eq, Literal::Str("IBM".into()));
        assert_eq!(matching_indexes(&cat, &a).len(), 1);
    }

    #[test]
    fn specific_index_does_not_match_general_pattern() {
        let cat = catalog_with(&[("/Security/Symbol", ValueKind::Str)]);
        let a = ap("/Security//*", CmpOp::Eq, Literal::Str("IBM".into()));
        assert!(matching_indexes(&cat, &a).is_empty());
    }

    #[test]
    fn kind_must_match() {
        let cat = catalog_with(&[("/Security/Yield", ValueKind::Str)]);
        let a = ap("/Security/Yield", CmpOp::Gt, Literal::Num(4.0));
        assert!(matching_indexes(&cat, &a).is_empty());
    }

    #[test]
    fn ne_is_not_indexable() {
        let cat = catalog_with(&[("/Security/Symbol", ValueKind::Str)]);
        let a = ap("/Security/Symbol", CmpOp::Ne, Literal::Str("IBM".into()));
        assert!(matching_indexes(&cat, &a).is_empty());
    }

    #[test]
    fn exists_matches_indexes_of_any_kind() {
        let cat = catalog_with(&[
            ("/Security/Symbol", ValueKind::Str),
            ("/Security/Symbol", ValueKind::Num),
        ]);
        let e = AccessPattern {
            linear: parse_linear_path("/Security/Symbol").unwrap(),
            pred: PatternPred::Exists,
        };
        assert!(pattern_is_indexable(&e));
        assert_eq!(matching_indexes(&cat, &e).len(), 2);
    }

    #[test]
    fn statement_signature_exposes_indexable_targets() {
        let stmt = xia_xpath::parse_statement(
            r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "IBM" and $s/Yield > 4.0 return $s"#,
        )
        .unwrap();
        let sig = statement_signature(&stmt);
        assert_eq!(sig.collection, "SDOC");
        assert!(sig
            .targets
            .iter()
            .any(|(p, k)| p.to_string() == "/Security/Symbol" && *k == Some(ValueKind::Str)));
        assert!(sig
            .targets
            .iter()
            .any(|(p, k)| p.to_string() == "/Security/Yield" && *k == Some(ValueKind::Num)));
        // The signature admits exactly what index_matches would accept.
        assert!(sig.admits(
            "SDOC",
            &parse_linear_path("/Security//*").unwrap(),
            ValueKind::Str
        ));
        assert!(!sig.admits(
            "SDOC",
            &parse_linear_path("/Order/Price").unwrap(),
            ValueKind::Str
        ));
    }

    #[test]
    fn insert_signature_is_empty() {
        let stmt =
            xia_xpath::parse_statement("insert into SDOC <Security><Symbol>GE</Symbol></Security>")
                .unwrap();
        let sig = statement_signature(&stmt);
        assert_eq!(sig.collection, "SDOC");
        assert!(sig.targets.is_empty());
    }

    #[test]
    fn multiple_indexes_can_match_one_pattern() {
        let cat = catalog_with(&[
            ("/Security/Symbol", ValueKind::Str),
            ("/Security//*", ValueKind::Str),
            ("//Symbol", ValueKind::Str),
        ]);
        let a = ap("/Security/Symbol", CmpOp::Eq, Literal::Str("IBM".into()));
        assert_eq!(matching_indexes(&cat, &a).len(), 3);
    }
}
