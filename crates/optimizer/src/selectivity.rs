//! Selectivity estimation for access patterns.

use xia_storage::{Collection, CollectionStats};
use xia_xml::PathId;
use xia_xpath::{AccessPattern, CmpOp, LinearPath, Literal, PathMatcher, PatternPred, ValueKind};

/// Aggregated statistics for the set of rooted paths an access pattern (or
/// an index pattern) targets.
#[derive(Debug, Clone, Default)]
pub struct PatternStats {
    /// Paths the pattern matches.
    pub paths: Vec<PathId>,
    /// Valued nodes at those paths (string view).
    pub valued_nodes: u64,
    /// Numeric-valued nodes at those paths.
    pub numeric_nodes: u64,
    /// Total nodes at those paths.
    pub nodes: u64,
    /// Documents containing at least one node at any of the paths (upper
    /// bound: sum capped by collection doc count).
    pub docs_upper: u64,
    /// Distinct values (summed over paths, capped by valued nodes).
    pub distinct: u64,
    /// Average value byte width.
    pub avg_value_len: f64,
    /// Expected postings for an equality probe with a key drawn from the
    /// pattern's domain, per kind: `Σ_p entries_p / distinct_p`. This is
    /// the per-path estimate — summing distincts across paths and dividing
    /// once would make *broader* patterns look more selective, inverting
    /// the specific-vs-general preference.
    eq_matches_str: f64,
    /// Numeric-kind equivalent of `eq_matches_str`.
    eq_matches_num: f64,
}

impl PatternStats {
    /// Collects aggregated statistics for a linear pattern.
    pub fn collect(
        pattern: &LinearPath,
        collection: &Collection,
        stats: &CollectionStats,
    ) -> PatternStats {
        let matcher = PathMatcher::new(pattern, collection.vocab());
        let paths = matcher.matching_path_ids(collection.vocab());
        Self::from_paths(paths, stats)
    }

    /// Aggregates statistics over an explicit path set.
    pub fn from_paths(paths: Vec<PathId>, stats: &CollectionStats) -> PatternStats {
        let mut out = PatternStats {
            paths,
            ..Default::default()
        };
        let mut value_bytes = 0u64;
        let mut docs = 0u64;
        for &pid in &out.paths {
            let ps = stats.path(pid);
            out.nodes += ps.node_count;
            out.valued_nodes += ps.value_count;
            out.numeric_nodes += ps.numeric_count;
            out.distinct += ps.distinct_values;
            value_bytes += ps.value_bytes;
            docs += ps.doc_count;
            if ps.distinct_values > 0 {
                out.eq_matches_str += ps.value_count as f64 / ps.distinct_values as f64;
                let num_distinct = ps.distinct_values.min(ps.numeric_count).max(1);
                out.eq_matches_num += ps.numeric_count as f64 / num_distinct as f64;
            }
        }
        out.docs_upper = docs.min(stats.doc_count);
        out.distinct = out.distinct.min(out.valued_nodes);
        out.avg_value_len = if out.valued_nodes == 0 {
            0.0
        } else {
            value_bytes as f64 / out.valued_nodes as f64
        };
        out
    }

    /// Number of index entries a pattern of the given kind would have.
    pub fn entries_for(&self, kind: ValueKind) -> u64 {
        match kind {
            ValueKind::Str => self.valued_nodes,
            ValueKind::Num => self.numeric_nodes,
        }
    }

    /// Estimated selectivity of a predicate over the pattern's valued
    /// nodes.
    pub fn predicate_selectivity(&self, pred: &PatternPred, stats: &CollectionStats) -> f64 {
        match pred {
            PatternPred::Exists => 1.0,
            PatternPred::Compare(op, lit) => self.compare_selectivity(*op, lit, stats),
        }
    }

    fn compare_selectivity(&self, op: CmpOp, lit: &Literal, stats: &CollectionStats) -> f64 {
        match lit {
            Literal::Str(_) => match op {
                CmpOp::Eq => self.eq_selectivity(ValueKind::Str),
                CmpOp::Ne => 1.0 - self.eq_selectivity(ValueKind::Str),
                // String ranges: no order statistics kept; use the classic
                // 1/3 heuristic.
                _ => 1.0 / 3.0,
            },
            Literal::Num(v) => {
                if matches!(op, CmpOp::Eq) {
                    return self.eq_selectivity(ValueKind::Num);
                }
                if matches!(op, CmpOp::Ne) {
                    return 1.0 - self.eq_selectivity(ValueKind::Num);
                }
                // Weighted average of the per-path histogram estimates.
                let mut weighted = 0.0;
                let mut weight = 0.0;
                for &pid in &self.paths {
                    let ps = stats.path(pid);
                    if ps.numeric_count > 0 {
                        weighted += ps.range_selectivity(op, *v) * ps.numeric_count as f64;
                        weight += ps.numeric_count as f64;
                    }
                }
                if weight == 0.0 {
                    1.0 / 3.0
                } else {
                    weighted / weight
                }
            }
        }
    }

    fn eq_selectivity(&self, kind: ValueKind) -> f64 {
        let entries = self.entries_for(kind) as f64;
        if entries == 0.0 {
            return 0.0;
        }
        let matches = match kind {
            ValueKind::Str => self.eq_matches_str,
            ValueKind::Num => self.eq_matches_num,
        };
        (matches / entries).clamp(0.0, 1.0)
    }

    /// Estimated matching nodes for a pattern+predicate, given kind.
    pub fn matching_nodes(
        &self,
        pred: &PatternPred,
        kind: ValueKind,
        stats: &CollectionStats,
    ) -> f64 {
        self.entries_for(kind) as f64 * self.predicate_selectivity(pred, stats)
    }

    /// Estimated documents containing a matching node: matching nodes
    /// discounted by per-document clustering, capped by the pattern's
    /// document count.
    pub fn matching_docs(&self, matching_nodes: f64) -> f64 {
        if self.docs_upper == 0 {
            return 0.0;
        }
        let nodes_per_doc = (self.nodes as f64 / self.docs_upper as f64).max(1.0);
        (matching_nodes / nodes_per_doc)
            .max(matching_nodes.min(1.0))
            .min(self.docs_upper as f64)
    }
}

/// Convenience: full estimate for one access pattern.
pub fn estimate_pattern(
    ap: &AccessPattern,
    collection: &Collection,
    stats: &CollectionStats,
) -> (PatternStats, f64, f64) {
    let ps = PatternStats::collect(&ap.linear, collection, stats);
    let kind = ap.pred.value_kind().unwrap_or(ValueKind::Str);
    let nodes = ps.matching_nodes(&ap.pred, kind, stats);
    let docs = ps.matching_docs(nodes);
    (ps, nodes, docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_storage::runstats;
    use xia_xpath::parse_linear_path;

    fn collection() -> (Collection, CollectionStats) {
        let mut c = Collection::new("SDOC");
        for i in 0..100 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Yield", (i % 10) as f64);
                b.begin("SecInfo");
                b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
                b.leaf("Sector", if i % 4 == 0 { "Energy" } else { "Tech" });
                b.end();
                b.end();
            });
        }
        let s = runstats(&c);
        (c, s)
    }

    #[test]
    fn collects_aggregate_over_wildcard_paths() {
        let (c, s) = collection();
        let p = parse_linear_path("/Security/SecInfo/*/Sector").unwrap();
        let ps = PatternStats::collect(&p, &c, &s);
        assert_eq!(ps.paths.len(), 2); // StockInfo and FundInfo variants
        assert_eq!(ps.valued_nodes, 100);
        assert_eq!(ps.docs_upper, 100);
    }

    #[test]
    fn eq_selectivity_via_distinct() {
        let (c, s) = collection();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let ps = PatternStats::collect(&p, &c, &s);
        let pred = PatternPred::Compare(CmpOp::Eq, Literal::Str("S5".into()));
        let sel = ps.predicate_selectivity(&pred, &s);
        assert!((sel - 0.01).abs() < 1e-9, "sel = {sel}");
        let m = ps.matching_nodes(&pred, ValueKind::Str, &s);
        assert!((m - 1.0).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_via_histogram() {
        let (c, s) = collection();
        let p = parse_linear_path("/Security/Yield").unwrap();
        let ps = PatternStats::collect(&p, &c, &s);
        let pred = PatternPred::Compare(CmpOp::Gt, Literal::Num(4.5));
        let sel = ps.predicate_selectivity(&pred, &s);
        assert!((sel - 0.5).abs() < 0.12, "sel = {sel}");
    }

    #[test]
    fn matching_docs_bounded_by_doc_count() {
        let (c, s) = collection();
        let p = parse_linear_path("/Security/Yield").unwrap();
        let ps = PatternStats::collect(&p, &c, &s);
        let docs = ps.matching_docs(1e9);
        assert_eq!(docs, 100.0);
        assert_eq!(ps.matching_docs(0.0), 0.0);
    }

    #[test]
    fn exists_has_selectivity_one() {
        let (c, s) = collection();
        let p = parse_linear_path("/Security/SecInfo").unwrap();
        let ps = PatternStats::collect(&p, &c, &s);
        assert_eq!(ps.predicate_selectivity(&PatternPred::Exists, &s), 1.0);
    }

    #[test]
    fn eq_matches_are_estimated_per_path_not_from_pooled_distincts() {
        // Two sibling paths share a key domain (both sectors). A probe
        // with an existing key matches in *both* paths; pooling distincts
        // across paths (1/Σdistinct) would claim broader patterns are MORE
        // selective, inverting the specific-vs-general index preference.
        let mut c = Collection::new("X");
        for i in 0..80 {
            c.build_doc("Security", |b| {
                b.begin("SecInfo");
                b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
                b.leaf("Sector", ["A", "B", "C", "D"][(i / 2) % 4]); // decorrelated from shape
                b.end();
                b.end();
            });
        }
        let s = runstats(&c);
        let ps = PatternStats::collect(
            &parse_linear_path("/Security/SecInfo/*/Sector").unwrap(),
            &c,
            &s,
        );
        let pred = PatternPred::Compare(CmpOp::Eq, Literal::Str("A".into()));
        let m = ps.matching_nodes(&pred, ValueKind::Str, &s);
        // 80 sector nodes over 2 paths × 4 distinct each → 10 per key per
        // path → 20 expected matches (not 80/8 = 10).
        assert!((m - 20.0).abs() < 1e-6, "matches = {m}");
    }

    #[test]
    fn numeric_kind_counts_only_numeric_nodes() {
        let mut c = Collection::new("X");
        c.build_doc("a", |b| {
            b.leaf("v", "1.5");
            b.leaf("v", "hello");
        });
        let s = runstats(&c);
        let ps = PatternStats::collect(&parse_linear_path("/a/v").unwrap(), &c, &s);
        assert_eq!(ps.entries_for(ValueKind::Num), 1);
        assert_eq!(ps.entries_for(ValueKind::Str), 2);
    }
}
