//! # xia-obs
//!
//! Std-only telemetry for the XML Index Advisor: the measurement substrate
//! behind the paper's own evaluation artifacts (Fig. 3 advisor time,
//! Table III candidate counts, the benefit-cache ablation).
//!
//! Three pieces:
//!
//! * [`Telemetry`] — a cheap, cloneable handle. Cloning shares the
//!   underlying sinks; [`Telemetry::off`] yields a no-op handle whose
//!   every operation is a branch on `None`.
//! * [`Counter`] — the advisor's named event counters (optimizer
//!   invocations per mode, benefit-cache hits/misses, candidates
//!   enumerated/generalized/admitted/pruned, …), stored as one atomic
//!   per counter.
//! * [`TraceReport`] — a structured snapshot (counters + nested phase
//!   timings + optional per-statement costs) serializable to JSON and
//!   pretty text with a hand-rolled emitter (no serde; the build
//!   environment has no registry access).
//!
//! Phase timers are RAII scopes: [`Telemetry::span`] returns a guard that
//! records elapsed time into a tree on drop. Re-entering a phase name
//! under the same parent merges into one node (accumulating time and call
//! count), so hot loops produce bounded trees.

mod counter;
pub mod event;
mod hist;
pub mod journal;
pub mod json;
pub mod provenance;
mod report;
mod snapshot;
mod span;

pub use counter::Counter;
pub use event::{Event, PruneReason};
pub use hist::{Hist, HistSummary, LatencyHistogram};
pub use journal::EventJournal;
pub use report::{StatementTrace, TraceReport};
pub use snapshot::MetricsSnapshot;
pub use span::SpanSnapshot;

use span::SpanStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    counters: [AtomicU64; Counter::COUNT],
    spans: Mutex<SpanStore>,
    hists: [Mutex<LatencyHistogram>; Hist::COUNT],
}

/// Cheap handle to a shared telemetry sink. See the crate docs.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Default for Telemetry {
    /// Defaults to an *enabled* handle (the advisor is observable unless
    /// explicitly opted out).
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A fresh, enabled telemetry sink.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                spans: Mutex::new(SpanStore::default()),
                hists: std::array::from_fn(|_| Mutex::new(LatencyHistogram::new())),
            })),
        }
    }

    /// A disabled handle: every operation is a no-op.
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Current value of a counter (0 on a disabled handle).
    pub fn get(&self, counter: Counter) -> u64 {
        match &self.inner {
            Some(inner) => inner.counters[counter.index()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Zeroes all counters and clears the span tree. Only call between
    /// phases — open spans are discarded.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            for c in &inner.counters {
                c.store(0, Ordering::Relaxed);
            }
            inner.spans.lock().expect("span store poisoned").clear();
            for h in &inner.hists {
                *h.lock().expect("histogram poisoned") = LatencyHistogram::new();
            }
        }
    }

    /// Records one latency sample, in nanoseconds.
    #[inline]
    pub fn record_nanos(&self, hist: Hist, nanos: u64) {
        if let Some(inner) = &self.inner {
            inner.hists[hist.index()]
                .lock()
                .expect("histogram poisoned")
                .record(nanos);
        }
    }

    /// Records one latency sample from a [`Duration`].
    #[inline]
    pub fn record(&self, hist: Hist, elapsed: Duration) {
        if self.inner.is_some() {
            self.record_nanos(hist, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// A clone of a named histogram's current state (empty on a disabled
    /// handle).
    pub fn hist_snapshot(&self, hist: Hist) -> LatencyHistogram {
        match &self.inner {
            Some(inner) => inner.hists[hist.index()]
                .lock()
                .expect("histogram poisoned")
                .clone(),
            None => LatencyHistogram::new(),
        }
    }

    /// Condensed summary of a named histogram.
    pub fn hist_summary(&self, hist: Hist) -> HistSummary {
        match &self.inner {
            Some(inner) => inner.hists[hist.index()]
                .lock()
                .expect("histogram poisoned")
                .summary(),
            None => HistSummary::default(),
        }
    }

    /// Folds another sink's histograms into this one (used by the what-if
    /// worker merge; the fold is associative and commutative, so merge
    /// order cannot change the result).
    pub fn merge_hists_from(&self, other: &Telemetry) {
        if let (Some(inner), Some(_)) = (&self.inner, &other.inner) {
            for h in Hist::ALL {
                let scratch = other.hist_snapshot(h);
                if scratch.count() > 0 {
                    inner.hists[h.index()]
                        .lock()
                        .expect("histogram poisoned")
                        .merge_from(&scratch);
                }
            }
        }
    }

    /// Opens a named phase scope; time accrues to the tree node for
    /// `name` under the currently open span when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let inner = self.inner.clone();
        if let Some(inner) = &inner {
            inner.spans.lock().expect("span store poisoned").enter(name);
        }
        SpanGuard {
            inner,
            start: Instant::now(),
        }
    }

    /// All counters with their current values, in declaration order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.get(c)))
            .collect()
    }

    /// Snapshot of the phase-timing tree roots.
    pub fn span_snapshots(&self) -> Vec<SpanSnapshot> {
        match &self.inner {
            Some(inner) => inner.spans.lock().expect("span store poisoned").snapshot(),
            None => Vec::new(),
        }
    }

    /// Total microseconds accrued to spans named `name`, summed over the
    /// whole tree (a phase may appear under several parents).
    pub fn span_micros(&self, name: &str) -> u64 {
        fn walk(nodes: &[SpanSnapshot], name: &str, acc: &mut u64) {
            for n in nodes {
                if n.name == name {
                    *acc += n.micros;
                }
                walk(&n.children, name, acc);
            }
        }
        let mut acc = 0;
        walk(&self.span_snapshots(), name, &mut acc);
        acc
    }

    /// Builds a [`TraceReport`] from the current counters and span tree.
    pub fn report(&self) -> TraceReport {
        TraceReport {
            counters: self
                .counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            dropped_events: 0,
            phases: self.span_snapshots(),
            latencies: Hist::ALL
                .iter()
                .map(|&h| (h.name().to_string(), self.hist_summary(h)))
                .collect(),
            statements: Vec::new(),
        }
    }
}

/// RAII guard returned by [`Telemetry::span`]; closes the phase on drop.
#[must_use = "dropping the guard immediately records a zero-length span"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            inner
                .spans
                .lock()
                .expect("span store poisoned")
                .exit(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let t = Telemetry::new();
        t.incr(Counter::OptimizerEvaluateCalls);
        t.add(Counter::OptimizerEvaluateCalls, 4);
        t.add(Counter::EstIndexBytes, 1024);
        assert_eq!(t.get(Counter::OptimizerEvaluateCalls), 5);
        assert_eq!(t.get(Counter::EstIndexBytes), 1024);
        assert_eq!(t.get(Counter::BenefitCacheHits), 0);
        t.reset();
        assert_eq!(t.get(Counter::OptimizerEvaluateCalls), 0);
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Telemetry::new();
        let u = t.clone();
        u.incr(Counter::GreedyIterations);
        assert_eq!(t.get(Counter::GreedyIterations), 1);
    }

    #[test]
    fn off_handle_is_inert() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        t.incr(Counter::GreedyIterations);
        assert_eq!(t.get(Counter::GreedyIterations), 0);
        let _g = t.span("phase");
        drop(_g);
        assert!(t.span_snapshots().is_empty());
    }

    #[test]
    fn spans_nest_and_merge_by_name() {
        let t = Telemetry::new();
        {
            let _outer = t.span("advise");
            for _ in 0..3 {
                let _inner = t.span("evaluate");
            }
            let _other = t.span("search");
        }
        let roots = t.span_snapshots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "advise");
        assert_eq!(roots[0].calls, 1);
        let children: Vec<&str> = roots[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(children, vec!["evaluate", "search"]);
        assert_eq!(roots[0].children[0].calls, 3);
    }

    #[test]
    fn sibling_roots_are_separate() {
        let t = Telemetry::new();
        drop(t.span("a"));
        drop(t.span("b"));
        drop(t.span("a"));
        let roots = t.span_snapshots();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].calls, 2);
    }

    #[test]
    fn span_micros_sums_across_parents() {
        let t = Telemetry::new();
        {
            let _a = t.span("search");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _b = t.span("evaluate");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _c = t.span("evaluate");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // "evaluate" accrues under "search" and at the root: both count.
        assert!(t.span_micros("evaluate") >= 3_000);
        assert!(t.span_micros("search") >= 3_000);
        assert_eq!(t.span_micros("missing"), 0);
    }

    #[test]
    fn histograms_record_merge_and_reset() {
        let t = Telemetry::new();
        t.record(Hist::WhatIfCall, Duration::from_micros(10));
        t.record_nanos(Hist::ContainCheck, 500);
        assert_eq!(t.hist_summary(Hist::WhatIfCall).count, 1);
        let scratch = Telemetry::new();
        scratch.record(Hist::WhatIfCall, Duration::from_micros(20));
        t.merge_hists_from(&scratch);
        let s = t.hist_summary(Hist::WhatIfCall);
        assert_eq!(s.count, 2);
        assert!(s.max_ns >= 20_000);
        t.reset();
        assert_eq!(t.hist_summary(Hist::WhatIfCall).count, 0);
        assert_eq!(t.hist_summary(Hist::ContainCheck).count, 0);
    }

    #[test]
    fn off_handle_histograms_are_inert() {
        let t = Telemetry::off();
        t.record(Hist::WhatIfCall, Duration::from_micros(10));
        assert_eq!(t.hist_summary(Hist::WhatIfCall), HistSummary::default());
        assert_eq!(t.hist_snapshot(Hist::WhatIfCall).count(), 0);
    }

    #[test]
    fn span_latency_percentiles_populate() {
        let t = Telemetry::new();
        for _ in 0..4 {
            let _g = t.span("evaluate");
        }
        let roots = t.span_snapshots();
        assert_eq!(roots[0].latency.count, 4);
        assert!(roots[0].latency.max_ns >= roots[0].latency.p50_ns);
    }

    #[test]
    fn every_counter_appears_in_the_report() {
        let t = Telemetry::new();
        let report = t.report();
        assert_eq!(report.counters.len(), Counter::COUNT);
        let names: std::collections::HashSet<_> =
            report.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names.len(), Counter::COUNT, "duplicate counter names");
    }
}
