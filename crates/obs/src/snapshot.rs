//! Diffable metrics snapshots — the export unit a serving layer
//! publishes per connection (ROADMAP: advisor-as-a-service).
//!
//! A [`MetricsSnapshot`] freezes a [`crate::Telemetry`] sink's counters
//! and latency summaries together with a [`crate::EventJournal`]'s
//! high-water marks. Two snapshots of the same sink diff into the
//! activity between them: counters and journal marks subtract exactly;
//! histogram summaries keep the later snapshot's percentiles with a
//! subtracted sample count (percentiles are not subtractable — the
//! bucket arrays never leave the sink).

use crate::hist::{Hist, HistSummary};
use crate::journal::EventJournal;
use crate::json::Json;
use crate::Telemetry;

/// A frozen view of one sink + journal pair. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Every counter with its value, in declaration order.
    pub counters: Vec<(String, u64)>,
    /// Latency summaries, in [`Hist::ALL`] order.
    pub latencies: Vec<(String, HistSummary)>,
    /// Journal high-water mark (total events ever emitted).
    pub journal_high_water: u64,
    /// Events dropped by the journal ring so far.
    pub journal_dropped: u64,
}

impl MetricsSnapshot {
    /// Captures the current state of a sink and journal.
    pub fn capture(telemetry: &Telemetry, journal: &EventJournal) -> Self {
        Self {
            counters: telemetry
                .counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            latencies: Hist::ALL
                .iter()
                .map(|&h| (h.name().to_string(), telemetry.hist_summary(h)))
                .collect(),
            journal_high_water: journal.high_water(),
            journal_dropped: journal.dropped(),
        }
    }

    /// The activity between `earlier` and `self`: counters and journal
    /// marks subtract (saturating — a reset sink reads as zero activity);
    /// latency summaries keep `self`'s percentiles with the sample-count
    /// delta.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let earlier_counter = |name: &str| {
            earlier
                .counters
                .iter()
                .find(|(k, _)| k == name)
                .map_or(0, |&(_, v)| v)
        };
        let earlier_count = |name: &str| {
            earlier
                .latencies
                .iter()
                .find(|(k, _)| k == name)
                .map_or(0, |(_, s)| s.count)
        };
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(earlier_counter(k))))
                .collect(),
            latencies: self
                .latencies
                .iter()
                .map(|(k, s)| {
                    let mut s = *s;
                    s.count = s.count.saturating_sub(earlier_count(k));
                    (k.clone(), s)
                })
                .collect(),
            journal_high_water: self
                .journal_high_water
                .saturating_sub(earlier.journal_high_water),
            journal_dropped: self.journal_dropped.saturating_sub(earlier.journal_dropped),
        }
    }

    /// Value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "latencies".to_string(),
                Json::Obj(
                    self.latencies
                        .iter()
                        .map(|(k, s)| (k.clone(), crate::report::hist_summary_to_json(s)))
                        .collect(),
                ),
            ),
            (
                "journal".to_string(),
                Json::Obj(vec![
                    (
                        "high_water".to_string(),
                        Json::Num(self.journal_high_water as f64),
                    ),
                    (
                        "dropped".to_string(),
                        Json::Num(self.journal_dropped as f64),
                    ),
                ]),
            ),
        ])
        .render()
    }

    /// Parses a snapshot back from its JSON rendering.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let v = Json::parse(text)?;
        let counters = match v.get("counters") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_num()
                        .map(|n| (k.clone(), n as u64))
                        .ok_or_else(|| format!("counter `{k}` is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `counters` object".to_string()),
        };
        let latencies = match v.get("latencies") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), crate::report::hist_summary_from_json(v)?)))
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing `latencies` object".to_string()),
        };
        let journal = v.get("journal").ok_or("missing `journal` object")?;
        let mark = |k: &str| {
            journal
                .get(k)
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing journal `{k}`"))
        };
        Ok(MetricsSnapshot {
            counters,
            latencies,
            journal_high_water: mark("high_water")?,
            journal_dropped: mark("dropped")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::Counter;
    use std::time::Duration;

    fn populated() -> (Telemetry, EventJournal) {
        let t = Telemetry::new();
        t.add(Counter::OptimizerEvaluateCalls, 10);
        t.record(Hist::WhatIfCall, Duration::from_micros(50));
        t.record(Hist::WhatIfCall, Duration::from_micros(70));
        let j = EventJournal::new();
        j.emit(|| Event::BudgetExhausted { charged: 1 });
        (t, j)
    }

    #[test]
    fn capture_freezes_counters_latencies_and_marks() {
        let (t, j) = populated();
        let s = MetricsSnapshot::capture(&t, &j);
        assert_eq!(s.counter("optimizer_evaluate_calls"), Some(10));
        let (name, what_if) = &s.latencies[0];
        assert_eq!(name, "what_if_call");
        assert_eq!(what_if.count, 2);
        assert!(what_if.max_ns >= 70_000);
        assert_eq!(s.journal_high_water, 1);
        assert_eq!(s.journal_dropped, 0);
    }

    #[test]
    fn diff_subtracts_counters_and_marks() {
        let (t, j) = populated();
        let before = MetricsSnapshot::capture(&t, &j);
        t.add(Counter::OptimizerEvaluateCalls, 5);
        t.record(Hist::WhatIfCall, Duration::from_micros(90));
        j.emit(|| Event::BudgetExhausted { charged: 2 });
        j.emit(|| Event::BudgetExhausted { charged: 3 });
        let after = MetricsSnapshot::capture(&t, &j);
        let d = after.diff(&before);
        assert_eq!(d.counter("optimizer_evaluate_calls"), Some(5));
        assert_eq!(d.counter("benefit_cache_hits"), Some(0));
        assert_eq!(d.latencies[0].1.count, 1);
        assert_eq!(d.journal_high_water, 2);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let (t, j) = populated();
        let s = MetricsSnapshot::capture(&t, &j);
        let back = MetricsSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn snapshot_of_off_handles_is_all_zero() {
        let s = MetricsSnapshot::capture(&Telemetry::off(), &EventJournal::off());
        assert!(s.counters.iter().all(|&(_, v)| v == 0));
        assert!(s.latencies.iter().all(|(_, h)| h.count == 0));
        assert_eq!(s.journal_high_water, 0);
    }
}
