//! Structured trace reports: counters + phase tree + per-statement costs,
//! serializable to JSON and pretty text.

use crate::hist::HistSummary;
use crate::json::Json;
use crate::span::SpanSnapshot;
use std::fmt::Write as _;

/// Before/after estimated cost of one workload statement under a
/// recommended configuration (the `explain` subcommand's what-if rows).
#[derive(Debug, Clone, PartialEq)]
pub struct StatementTrace {
    /// Statement text (first line / truncated form is fine).
    pub statement: String,
    /// Estimated cost with no candidate indexes.
    pub base_cost: f64,
    /// Estimated cost under the recommended configuration.
    pub new_cost: f64,
}

/// A complete trace snapshot of one advisor run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Every counter with its value, in declaration order.
    pub counters: Vec<(String, u64)>,
    /// Events the decision journal's ring buffer dropped (oldest first)
    /// because it overflowed. Non-zero means provenance replay over this
    /// run's journal sees an incomplete chain.
    pub dropped_events: u64,
    /// Phase-timing tree roots.
    pub phases: Vec<SpanSnapshot>,
    /// Named latency distributions ([`crate::Hist::ALL`] order): what-if
    /// calls, containment checks, ….
    pub latencies: Vec<(String, HistSummary)>,
    /// Optional per-statement what-if costs.
    pub statements: Vec<StatementTrace>,
}

impl TraceReport {
    /// Adds a per-statement what-if cost row.
    pub fn push_statement(&mut self, statement: impl Into<String>, base_cost: f64, new_cost: f64) {
        self.statements.push(StatementTrace {
            statement: statement.into(),
            base_cost,
            new_cost,
        });
    }

    /// Value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "dropped_events".to_string(),
                Json::Num(self.dropped_events as f64),
            ),
            (
                "phases".to_string(),
                Json::Arr(self.phases.iter().map(span_to_json).collect()),
            ),
            (
                "latencies".to_string(),
                Json::Obj(
                    self.latencies
                        .iter()
                        .map(|(k, s)| (k.clone(), hist_summary_to_json(s)))
                        .collect(),
                ),
            ),
            (
                "statements".to_string(),
                Json::Arr(
                    self.statements
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("statement".to_string(), Json::Str(s.statement.clone())),
                                ("base_cost".to_string(), Json::Num(s.base_cost)),
                                ("new_cost".to_string(), Json::Num(s.new_cost)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report back from its JSON rendering (used by tests and
    /// external tooling).
    pub fn from_json(text: &str) -> Result<TraceReport, String> {
        let v = Json::parse(text)?;
        let counters = match v.get("counters") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_num()
                        .map(|n| (k.clone(), n as u64))
                        .ok_or_else(|| format!("counter `{k}` is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `counters` object".to_string()),
        };
        // Lenient: reports written before the journal-overflow counter
        // existed simply report zero drops.
        let dropped_events = v
            .get("dropped_events")
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64;
        let phases = match v.get("phases") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(span_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `phases` array".to_string()),
        };
        // Lenient: reports written before latency histograms existed
        // simply have no distributions.
        let latencies = match v.get("latencies") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), hist_summary_from_json(v)?)))
                .collect::<Result<Vec<_>, String>>()?,
            _ => Vec::new(),
        };
        let statements = match v.get("statements") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|s| {
                    Ok(StatementTrace {
                        statement: s
                            .get("statement")
                            .and_then(Json::as_str)
                            .ok_or("statement text missing")?
                            .to_string(),
                        base_cost: s
                            .get("base_cost")
                            .and_then(Json::as_num)
                            .ok_or("base_cost missing")?,
                        new_cost: s
                            .get("new_cost")
                            .and_then(Json::as_num)
                            .ok_or("new_cost missing")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing `statements` array".to_string()),
        };
        Ok(TraceReport {
            counters,
            dropped_events,
            phases,
            latencies,
            statements,
        })
    }

    /// Human-readable rendering: phase tree, then non-zero counters, then
    /// statement costs.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("phases:\n");
        if self.phases.is_empty() {
            out.push_str("  (none recorded)\n");
        }
        for root in &self.phases {
            render_span(root, 1, &mut out);
        }
        out.push_str("counters:\n");
        let width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            if *value > 0 {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "journal: ring buffer dropped {} event{} — provenance replay is incomplete",
                self.dropped_events,
                if self.dropped_events == 1 { "" } else { "s" }
            );
        }
        if self.latencies.iter().any(|(_, s)| s.count > 0) {
            out.push_str("latencies:\n");
            let width = self
                .latencies
                .iter()
                .filter(|(_, s)| s.count > 0)
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (name, s) in &self.latencies {
                if s.count > 0 {
                    let _ = writeln!(
                        out,
                        "  {name:<width$}  {} sample{}  {}",
                        s.count,
                        if s.count == 1 { "" } else { "s" },
                        render_percentiles(s)
                    );
                }
            }
        }
        if !self.statements.is_empty() {
            out.push_str("statement what-if costs:\n");
            for s in &self.statements {
                let pct = if s.base_cost > 0.0 {
                    100.0 * (s.base_cost - s.new_cost) / s.base_cost
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {:>12.1} -> {:>12.1}  ({pct:>5.1}% off)  {}",
                    s.base_cost, s.new_cost, s.statement
                );
            }
        }
        out
    }
}

/// Renders a latency summary as a JSON object (all values nanoseconds).
pub(crate) fn hist_summary_to_json(s: &HistSummary) -> Json {
    Json::Obj(vec![
        ("count".to_string(), Json::Num(s.count as f64)),
        ("p50_ns".to_string(), Json::Num(s.p50_ns as f64)),
        ("p95_ns".to_string(), Json::Num(s.p95_ns as f64)),
        ("p99_ns".to_string(), Json::Num(s.p99_ns as f64)),
        ("max_ns".to_string(), Json::Num(s.max_ns as f64)),
    ])
}

/// Parses a latency summary back from its JSON object form.
pub(crate) fn hist_summary_from_json(v: &Json) -> Result<HistSummary, String> {
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_num)
            .map(|n| n as u64)
            .ok_or_else(|| format!("latency summary missing `{k}`"))
    };
    Ok(HistSummary {
        count: field("count")?,
        p50_ns: field("p50_ns")?,
        p95_ns: field("p95_ns")?,
        p99_ns: field("p99_ns")?,
        max_ns: field("max_ns")?,
    })
}

fn span_to_json(s: &SpanSnapshot) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(s.name.clone())),
        ("micros".to_string(), Json::Num(s.micros as f64)),
        ("calls".to_string(), Json::Num(s.calls as f64)),
        ("latency".to_string(), hist_summary_to_json(&s.latency)),
        (
            "children".to_string(),
            Json::Arr(s.children.iter().map(span_to_json).collect()),
        ),
    ])
}

fn span_from_json(v: &Json) -> Result<SpanSnapshot, String> {
    Ok(SpanSnapshot {
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("span name missing")?
            .to_string(),
        micros: v
            .get("micros")
            .and_then(Json::as_num)
            .ok_or("span micros missing")? as u64,
        calls: v
            .get("calls")
            .and_then(Json::as_num)
            .ok_or("span calls missing")? as u64,
        // Lenient: spans from pre-histogram reports carry no latency.
        latency: match v.get("latency") {
            Some(l) => hist_summary_from_json(l)?,
            None => HistSummary::default(),
        },
        children: match v.get("children") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(span_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        },
    })
}

/// `p50/p95/p99/max` in milliseconds, compact.
fn render_percentiles(s: &HistSummary) -> String {
    let ms = |ns: u64| ns as f64 / 1_000_000.0;
    format!(
        "p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        ms(s.p50_ns),
        ms(s.p95_ns),
        ms(s.p99_ns),
        ms(s.max_ns)
    )
}

fn render_span(s: &SpanSnapshot, depth: usize, out: &mut String) {
    let detail = if s.calls > 1 {
        format!("  [{}]", render_percentiles(&s.latency))
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{:indent$}{:<24} {:>10.3} ms  ({} call{}){detail}",
        "",
        s.name,
        s.micros as f64 / 1_000.0,
        s.calls,
        if s.calls == 1 { "" } else { "s" },
        indent = depth * 2
    );
    for c in &s.children {
        render_span(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, Telemetry};

    fn sample() -> TraceReport {
        let t = Telemetry::new();
        t.add(Counter::OptimizerEvaluateCalls, 42);
        t.add(Counter::BenefitCacheHits, 7);
        {
            let _a = t.span("advise");
            let _b = t.span("search");
            let _c = t.span("evaluate");
        }
        let mut report = t.report();
        report.push_statement("for $s in SECURITY('SDOC')/Security \"q\"", 120.5, 10.25);
        report
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let report = sample();
        let back = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn json_contains_counters_and_nested_phases() {
        let report = sample();
        let v = Json::parse(&report.to_json()).unwrap();
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters.get("optimizer_evaluate_calls").unwrap().as_num(),
            Some(42.0)
        );
        let phases = v.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("name").unwrap().as_str(), Some("advise"));
        let search = &phases[0].get("children").unwrap().as_arr().unwrap()[0];
        assert_eq!(search.get("name").unwrap().as_str(), Some("search"));
    }

    #[test]
    fn text_rendering_mentions_phases_and_counters() {
        let text = sample().to_text();
        assert!(text.contains("advise"));
        assert!(text.contains("evaluate"));
        assert!(text.contains("optimizer_evaluate_calls"));
        assert!(text.contains("42"));
        // Zero counters are suppressed in text form.
        assert!(!text.contains("topdown_expansions"));
        assert!(text.contains("what-if"));
    }

    #[test]
    fn latency_sections_render_and_round_trip() {
        let t = Telemetry::new();
        t.record_nanos(crate::Hist::WhatIfCall, 2_000_000);
        t.record_nanos(crate::Hist::WhatIfCall, 3_000_000);
        let report = t.report();
        let text = report.to_text();
        assert!(text.contains("latencies:"));
        assert!(text.contains("what_if_call"));
        assert!(text.contains("p95"));
        // Zero-sample histograms stay out of the text form.
        assert!(!text.contains("contain_check"));
        let back = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_tolerates_reports_without_latencies() {
        let report = TraceReport {
            counters: vec![("benefit_cache_hits".to_string(), 1)],
            dropped_events: 0,
            phases: Vec::new(),
            latencies: Vec::new(),
            statements: Vec::new(),
        };
        let text = r#"{"counters":{"benefit_cache_hits":1},"phases":[],"statements":[]}"#;
        assert_eq!(TraceReport::from_json(text).unwrap(), report);
    }

    #[test]
    fn dropped_events_render_and_round_trip() {
        let mut report = sample();
        assert!(!report.to_text().contains("dropped"));
        report.dropped_events = 3;
        let text = report.to_text();
        assert!(text.contains("dropped 3 events"));
        assert!(text.contains("incomplete"));
        let back = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.dropped_events, 3);
        assert_eq!(back, report);
    }

    #[test]
    fn counter_lookup_by_name() {
        let report = sample();
        assert_eq!(report.counter("benefit_cache_hits"), Some(7));
        assert_eq!(report.counter("nope"), None);
    }
}
