//! Minimal JSON value, writer, and parser — enough to emit and re-read
//! trace reports without serde (the build environment has no registry
//! access). Supports the standard scalar escapes plus `\uXXXX` for
//! control characters; numbers are f64 (counters stay exact below 2^53).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value, trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Writes an integer-valued f64 without a fraction (`12`, not `12.0`), so
/// counter values render as JSON integers.
fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Appends `s` to `out` with JSON string escaping.
pub fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            // Our emitter never writes surrogates (non-BMP
                            // chars pass through as UTF-8), but external
                            // tools escape them as `\uD800..\uDFFF` pairs.
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(&b"\\u"[..]) {
                                    return Err(format!("lone high surrogate \\u{code:04x}"));
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "high surrogate \\u{code:04x} followed by \\u{low:04x}"
                                    ));
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(format!("lone low surrogate \\u{code:04x}"));
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| format!("invalid \\u{scalar:04x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Four hex digits starting at byte `at`, as a code unit.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        if !hex.iter().all(u8::is_ascii_hexdigit) {
            return Err(format!("bad \\u escape `{}`", String::from_utf8_lossy(hex)));
        }
        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        u32::from_str_radix(hex, 16).map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(12.0).render(), "12");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Str("a\"b".into()).render(), r#""a\"b""#);
    }

    #[test]
    fn escapes_control_characters() {
        let s = Json::Str("line\nbreak\ttab\u{1}ctl".into()).render();
        assert_eq!(s, r#""line\nbreak\ttab\u0001ctl""#);
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = Json::Obj(vec![
            ("empty".into(), Json::Arr(vec![])),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("two".into()), Json::Null]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Bool(false))]),
            ),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn round_trips_hostile_strings() {
        let nasty = "quote\" slash\\ newline\n unicode→é null\u{0} tab\t";
        let v = Json::Obj(vec![(nasty.to_string(), Json::Str(nasty.to_string()))]);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_external_surrogate_pairs() {
        // External emitters escape non-BMP chars as surrogate pairs.
        assert_eq!(
            Json::parse(r#""\uD83D\uDE00""#).unwrap(),
            Json::Str("😀".into())
        );
        assert_eq!(
            Json::parse(r#""x\uD835\uDD4Ay""#).unwrap(),
            Json::Str("x𝕊y".into())
        );
        // Literal UTF-8 still passes straight through.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        // Lone or malformed surrogates are not scalar values.
        assert!(Json::parse(r#""\uD83D""#).is_err());
        assert!(Json::parse(r#""\uD83D!""#).is_err());
        assert!(Json::parse(r#""\uDE00""#).is_err());
        assert!(Json::parse(r#""\uD83D\uD83D""#).is_err());
        assert!(Json::parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn fuzz_round_trips_arbitrary_strings() {
        // Deterministic xorshift64* driving a char-class mix heavy on the
        // troublesome cases: quotes, backslashes, slashes (TPoX path
        // labels), control chars, multi-byte UTF-8, and non-BMP scalars.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..500 {
            let len = (next() % 24) as usize;
            let s: String = (0..len)
                .map(|_| match next() % 10 {
                    0 => '"',
                    1 => '\\',
                    2 => '/',
                    3 => char::from_u32((next() % 0x20) as u32).expect("control char"),
                    4 => 'é',
                    5 => '→',
                    6 => '😀',
                    7 => '\u{10FFFF}',
                    _ => char::from_u32(b'a' as u32 + (next() % 26) as u32).expect("ascii"),
                })
                .collect();
            let v = Json::Obj(vec![(s.clone(), Json::Str(s.clone()))]);
            let text = v.render();
            assert!(text.is_ascii() || std::str::from_utf8(text.as_bytes()).is_ok());
            let back = Json::parse(&text).unwrap_or_else(|e| panic!("{e} for {text:?}"));
            assert_eq!(back, v, "round-trip mismatch for {s:?}");
        }
    }

    #[test]
    fn parses_whitespace_liberally() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nulla").is_err());
    }
}
