//! Provenance replay: reconstruct why an index pattern was recommended
//! (or not) from a decision journal.
//!
//! [`explain_why`] walks a journal's `(seq, event)` stream and prints the
//! derivation chain for one pattern: how it entered the candidate set
//! (enumeration, or which statement pair generalized into it — followed
//! recursively down to basic candidates), which heuristic prunes it hit,
//! its benefit deltas across the search rounds, and the final knapsack
//! decision. Works on a live [`crate::EventJournal`] snapshot or on
//! events re-read from a JSONL file.

use crate::event::Event;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Structured derivation chain for one pattern.
#[derive(Debug, Clone, Default)]
pub struct Derivation {
    /// `CandidateGenerated` origin (`basic` / `generalized`), if seen.
    pub origin: Option<String>,
    /// The first `(left, right)` pair that generalized into the pattern.
    pub generalized_from: Option<(String, String)>,
    /// Prune reasons the pattern hit, in journal order.
    pub prunes: Vec<String>,
    /// `(benefit, cache_hit)` of every what-if evaluation whose
    /// sub-configuration contained the pattern, in journal order.
    pub benefit_deltas: Vec<(f64, bool)>,
    /// Every knapsack decision for the pattern, in journal order; the
    /// last entry is the final one.
    pub decisions: Vec<(bool, f64, u64)>,
}

impl Derivation {
    /// Whether the journal mentions the pattern at all.
    pub fn is_known(&self) -> bool {
        self.origin.is_some()
            || self.generalized_from.is_some()
            || !self.prunes.is_empty()
            || !self.benefit_deltas.is_empty()
            || !self.decisions.is_empty()
    }

    /// The final knapsack decision, if any was recorded.
    pub fn final_decision(&self) -> Option<(bool, f64, u64)> {
        self.decisions.last().copied()
    }
}

/// Collects the derivation chain for `pattern` from a journal stream.
pub fn derive(events: &[(u64, Event)], pattern: &str) -> Derivation {
    let mut d = Derivation::default();
    for (_, e) in events {
        match e {
            Event::CandidateGenerated {
                pattern: p, origin, ..
            } if p == pattern && d.origin.is_none() => {
                d.origin = Some(origin.clone());
            }
            Event::PairGeneralized {
                left,
                right,
                result,
                ..
            } if result == pattern && d.generalized_from.is_none() => {
                d.generalized_from = Some((left.clone(), right.clone()));
            }
            Event::CandidatePruned { pattern: p, reason } if p == pattern => {
                d.prunes.push(reason.name().to_string());
            }
            Event::WhatIfEvaluated {
                config,
                cost,
                cache_hit,
            } if config.iter().any(|c| c == pattern) => {
                d.benefit_deltas.push((*cost, *cache_hit));
            }
            Event::KnapsackDecision {
                pattern: p,
                kept,
                benefit,
                size,
            } if p == pattern => {
                d.decisions.push((*kept, *benefit, *size));
            }
            _ => {}
        }
    }
    d
}

/// A warning line for provenance output when the journal ring dropped
/// events: the replayed derivation chain may be missing its oldest links,
/// so it must be presented as incomplete rather than authoritative.
pub fn incompleteness_note(dropped: u64) -> Option<String> {
    (dropped > 0).then(|| {
        format!(
            "warning: journal ring dropped {dropped} event{}; the derivation chain may be incomplete",
            if dropped == 1 { "" } else { "s" }
        )
    })
}

/// Renders the full derivation chain for `pattern` as indented text,
/// recursing through generalization parents down to basic candidates
/// (with a cycle guard). Returns a "no events" message for unknown
/// patterns, so callers can print the result unconditionally.
pub fn explain_why(events: &[(u64, Event)], pattern: &str) -> String {
    let mut out = String::new();
    let mut seen = HashSet::new();
    explain_into(events, pattern, 0, &mut seen, &mut out);
    out
}

fn explain_into(
    events: &[(u64, Event)],
    pattern: &str,
    depth: usize,
    seen: &mut HashSet<String>,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    if !seen.insert(pattern.to_string()) {
        let _ = writeln!(out, "{pad}{pattern}: (derivation shown above)");
        return;
    }
    let d = derive(events, pattern);
    if !d.is_known() {
        let _ = writeln!(out, "{pad}{pattern}: no journal events for this pattern");
        return;
    }
    match (&d.origin, &d.generalized_from) {
        (_, Some((left, right))) => {
            let _ = writeln!(out, "{pad}{pattern}: generalized from {left} ⊔ {right}");
        }
        (Some(origin), None) => {
            let _ = writeln!(out, "{pad}{pattern}: {origin} candidate");
        }
        (None, None) => {
            let _ = writeln!(out, "{pad}{pattern}:");
        }
    }
    if !d.prunes.is_empty() {
        let _ = writeln!(out, "{pad}  prunes hit: {}", d.prunes.join(", "));
    }
    if !d.benefit_deltas.is_empty() {
        let values: Vec<String> = summarize_deltas(&d.benefit_deltas);
        let _ = writeln!(
            out,
            "{pad}  benefit deltas over {} evaluation(s): {}",
            d.benefit_deltas.len(),
            values.join(" → ")
        );
    }
    match d.final_decision() {
        Some((kept, benefit, size)) => {
            let verdict = if kept { "KEPT" } else { "dropped" };
            let _ = writeln!(
                out,
                "{pad}  final decision: {verdict} (benefit {benefit:.2}, size {size} bytes, {} decision round(s))",
                d.decisions.len()
            );
        }
        None => {
            let _ = writeln!(out, "{pad}  final decision: never reached the knapsack");
        }
    }
    if let Some((left, right)) = d.generalized_from {
        explain_into(events, &left, depth + 1, seen, out);
        explain_into(events, &right, depth + 1, seen, out);
    }
}

/// At most the first and last few deltas, elided in the middle — search
/// rounds can re-evaluate a pattern hundreds of times.
fn summarize_deltas(deltas: &[(f64, bool)]) -> Vec<String> {
    const HEAD: usize = 3;
    const TAIL: usize = 2;
    let fmt = |&(v, hit): &(f64, bool)| {
        if hit {
            format!("{v:.2} (cached)")
        } else {
            format!("{v:.2}")
        }
    };
    if deltas.len() <= HEAD + TAIL + 1 {
        deltas.iter().map(fmt).collect()
    } else {
        let mut out: Vec<String> = deltas[..HEAD].iter().map(fmt).collect();
        out.push(format!("… {} more …", deltas.len() - HEAD - TAIL));
        out.extend(deltas[deltas.len() - TAIL..].iter().map(fmt));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PruneReason;

    fn sample_events() -> Vec<(u64, Event)> {
        let e = vec![
            Event::CandidateGenerated {
                collection: "SDOC".into(),
                pattern: "/Security/Symbol".into(),
                kind: "string".into(),
                origin: "basic".into(),
            },
            Event::CandidateGenerated {
                collection: "SDOC".into(),
                pattern: "/Security/Yield".into(),
                kind: "string".into(),
                origin: "basic".into(),
            },
            Event::PairGeneralized {
                collection: "SDOC".into(),
                left: "/Security/Symbol".into(),
                right: "/Security/Yield".into(),
                result: "/Security/*".into(),
            },
            Event::CandidateGenerated {
                collection: "SDOC".into(),
                pattern: "/Security/*".into(),
                kind: "string".into(),
                origin: "generalized".into(),
            },
            Event::WhatIfEvaluated {
                config: vec!["/Security/*".into()],
                cost: 120.0,
                cache_hit: false,
            },
            Event::WhatIfEvaluated {
                config: vec!["/Security/*".into(), "/Security/Symbol".into()],
                cost: 150.0,
                cache_hit: true,
            },
            Event::CandidatePruned {
                pattern: "/Security/*".into(),
                reason: PruneReason::SizeRule,
            },
            Event::KnapsackDecision {
                pattern: "/Security/*".into(),
                kept: false,
                benefit: 120.0,
                size: 9999,
            },
            Event::KnapsackDecision {
                pattern: "/Security/Symbol".into(),
                kept: true,
                benefit: 80.0,
                size: 1024,
            },
        ];
        e.into_iter()
            .enumerate()
            .map(|(i, e)| (i as u64, e))
            .collect()
    }

    #[test]
    fn derive_collects_the_full_chain() {
        let events = sample_events();
        let d = derive(&events, "/Security/*");
        assert_eq!(
            d.generalized_from,
            Some(("/Security/Symbol".into(), "/Security/Yield".into()))
        );
        assert_eq!(d.origin.as_deref(), Some("generalized"));
        assert_eq!(d.prunes, vec!["size_rule"]);
        assert_eq!(d.benefit_deltas, vec![(120.0, false), (150.0, true)]);
        assert_eq!(d.final_decision(), Some((false, 120.0, 9999)));
    }

    #[test]
    fn explain_why_recurses_to_basics() {
        let events = sample_events();
        let text = explain_why(&events, "/Security/*");
        assert!(text.contains("generalized from /Security/Symbol ⊔ /Security/Yield"));
        assert!(text.contains("prunes hit: size_rule"));
        assert!(text.contains("benefit deltas over 2 evaluation(s)"));
        assert!(text.contains("dropped"));
        // Parents appear, indented, down to their basic origin.
        assert!(text.contains("/Security/Symbol: basic candidate"));
        assert!(text.contains("/Security/Yield: basic candidate"));
        assert!(text.contains("KEPT"));
    }

    #[test]
    fn explain_why_handles_unknown_patterns() {
        let text = explain_why(&sample_events(), "/No/Such/Pattern");
        assert!(text.contains("no journal events"));
    }

    #[test]
    fn incompleteness_note_fires_only_on_drops() {
        assert_eq!(incompleteness_note(0), None);
        let note = incompleteness_note(2).unwrap();
        assert!(note.contains("dropped 2 events"));
        assert!(note.contains("incomplete"));
    }

    #[test]
    fn delta_summaries_elide_the_middle() {
        let deltas: Vec<(f64, bool)> = (0..20).map(|i| (i as f64, false)).collect();
        let s = summarize_deltas(&deltas);
        assert!(s.iter().any(|x| x.contains("more")));
        assert!(s.len() < deltas.len());
    }
}
