//! The decision-provenance event journal.
//!
//! [`EventJournal`] mirrors the [`crate::Telemetry`] handle design: a
//! cheap, cloneable handle whose disabled form ([`EventJournal::off`])
//! turns every operation into a branch on `None` — the journal-off path
//! costs the same as the telemetry-off path. The enabled form is a
//! ring-buffered, seq-numbered store of [`Event`]s behind one mutex.
//!
//! `emit` takes a *closure* so payload construction (pattern `String`
//! clones) is skipped entirely on a disabled handle.
//!
//! ## Determinism
//!
//! Every advisor emission site runs on the coordinator thread in
//! deterministic order (the same discipline that keeps recommendations
//! and counters `--jobs`-invariant), so a run's JSONL rendering is
//! byte-identical for any worker count. Worker-side sinks, if ever
//! needed, fold in through [`EventJournal::merge_from`], which
//! re-sequences the source's events in their per-worker seq order after
//! the destination's — the same stable-merge guarantee the telemetry
//! counter merge provides.

use crate::event::Event;
use crate::json::Json;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default ring capacity: large enough to hold every event of the paper's
/// Table III workloads with room to spare, small enough to bound memory.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

#[derive(Debug)]
struct Ring {
    events: VecDeque<(u64, Event)>,
    next_seq: u64,
    dropped: u64,
    capacity: usize,
}

#[derive(Debug)]
struct JournalInner {
    ring: Mutex<Ring>,
}

/// Cheap handle to a shared event journal. See the module docs.
#[derive(Debug, Clone)]
pub struct EventJournal {
    inner: Option<Arc<JournalInner>>,
}

impl Default for EventJournal {
    /// Defaults to a *disabled* handle: journaling is opt-in
    /// (`--journal`, `explain --why`), unlike telemetry.
    fn default() -> Self {
        Self::off()
    }
}

impl EventJournal {
    /// A fresh, enabled journal with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A fresh, enabled journal holding at most `capacity` events
    /// (oldest dropped first; drops are counted).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(JournalInner {
                ring: Mutex::new(Ring {
                    events: VecDeque::new(),
                    next_seq: 0,
                    dropped: 0,
                    capacity: capacity.max(1),
                }),
            })),
        }
    }

    /// A disabled handle: every operation is a no-op.
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event. The closure runs only on an enabled handle, so
    /// payload construction is free on the off path.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            let mut ring = inner.ring.lock().expect("journal poisoned");
            let seq = ring.next_seq;
            ring.next_seq += 1;
            if ring.events.len() >= ring.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.events.push_back((seq, make()));
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.ring.lock().expect("journal poisoned").events.len(),
            None => 0,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark: the next sequence number to be assigned (equals
    /// the total number of events ever emitted).
    pub fn high_water(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.ring.lock().expect("journal poisoned").next_seq,
            None => 0,
        }
    }

    /// Events dropped by the ring (emitted beyond capacity).
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.ring.lock().expect("journal poisoned").dropped,
            None => 0,
        }
    }

    /// Snapshot of the buffered `(seq, event)` pairs, oldest first.
    pub fn events(&self) -> Vec<(u64, Event)> {
        match &self.inner {
            Some(inner) => inner
                .ring
                .lock()
                .expect("journal poisoned")
                .events
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Drops all buffered events and resets the sequence counter.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            let mut ring = inner.ring.lock().expect("journal poisoned");
            ring.events.clear();
            ring.next_seq = 0;
            ring.dropped = 0;
        }
    }

    /// Folds another journal's buffered events into this one, preserving
    /// the source's per-journal seq order (a stable merge: destination
    /// events first, then the source's in their original order, all
    /// re-sequenced). No-op if either handle is disabled.
    pub fn merge_from(&self, other: &EventJournal) {
        if !self.is_enabled() {
            return;
        }
        for (_, event) in other.events() {
            self.emit(|| event.clone());
        }
    }

    /// Renders the buffered events as JSONL: one
    /// `{"seq":N,"event":"...",...}` object per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, event) in self.events() {
            let mut fields = vec![
                ("seq".to_string(), Json::Num(seq as f64)),
                ("event".to_string(), Json::Str(event.name().to_string())),
            ];
            fields.extend(event.fields());
            out.push_str(&Json::Obj(fields).render());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL journal back into `(seq, event)` pairs (blank
    /// lines skipped). The inverse of [`EventJournal::to_jsonl`].
    pub fn parse_jsonl(text: &str) -> Result<Vec<(u64, Event)>, String> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let seq = v
                .get("seq")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("line {}: missing `seq`", lineno + 1))?
                as u64;
            let event = Event::from_json(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            out.push((seq, event));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PruneReason;

    fn pruned(pattern: &str) -> Event {
        Event::CandidatePruned {
            pattern: pattern.to_string(),
            reason: PruneReason::SizeRule,
        }
    }

    #[test]
    fn off_handle_is_inert_and_skips_payload_construction() {
        let j = EventJournal::off();
        assert!(!j.is_enabled());
        j.emit(|| unreachable!("closure must not run on a disabled handle"));
        assert_eq!(j.len(), 0);
        assert_eq!(j.high_water(), 0);
        assert_eq!(j.to_jsonl(), "");
    }

    #[test]
    fn seq_numbers_are_dense_and_clones_share_the_ring() {
        let j = EventJournal::new();
        let k = j.clone();
        j.emit(|| pruned("/a"));
        k.emit(|| pruned("/b"));
        j.emit(|| pruned("/c"));
        let events = j.events();
        assert_eq!(events.len(), 3);
        for (i, (seq, _)) in events.iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
        assert_eq!(j.high_water(), 3);
    }

    #[test]
    fn ring_drops_oldest_and_counts_drops() {
        let j = EventJournal::with_capacity(2);
        for p in ["/a", "/b", "/c", "/d"] {
            j.emit(|| pruned(p));
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.high_water(), 4);
        let seqs: Vec<u64> = j.events().iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![2, 3], "oldest events dropped first");
    }

    #[test]
    fn merge_preserves_source_order_and_is_stable() {
        let a = EventJournal::new();
        let b = EventJournal::new();
        a.emit(|| pruned("/a1"));
        b.emit(|| pruned("/b1"));
        b.emit(|| pruned("/b2"));
        a.merge_from(&b);
        let patterns: Vec<String> = a
            .events()
            .iter()
            .map(|(_, e)| match e {
                Event::CandidatePruned { pattern, .. } => pattern.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(patterns, vec!["/a1", "/b1", "/b2"]);
        // Re-sequenced densely on the destination.
        let seqs: Vec<u64> = a.events().iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn reset_clears_everything() {
        let j = EventJournal::new();
        j.emit(|| pruned("/a"));
        j.reset();
        assert!(j.is_empty());
        assert_eq!(j.high_water(), 0);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn parse_rejects_garbage_lines() {
        assert!(EventJournal::parse_jsonl("not json\n").is_err());
        assert!(EventJournal::parse_jsonl("{\"seq\":0}\n").is_err());
        assert!(EventJournal::parse_jsonl("{\"event\":\"candidate_pruned\"}\n").is_err());
        assert!(EventJournal::parse_jsonl("").unwrap().is_empty());
    }
}
