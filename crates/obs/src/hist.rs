//! Log-bucketed latency histograms (HDR-style).
//!
//! Fixed u64 bucket layout: values below 16 get exact buckets; above
//! that, each power-of-two octave is split into 8 linear sub-buckets
//! (3 significant bits), for 496 buckets total covering the full u64
//! range. Relative quantile error is bounded by one sub-bucket width
//! (≤ 12.5%), which is plenty for latency percentiles.
//!
//! Histograms are *mergeable*: [`LatencyHistogram::merge_from`] is
//! element-wise saturating addition plus min/max folding, which is
//! associative and commutative — per-worker scratch histograms can be
//! folded into the shared sink in any order with the same result (the
//! same guarantee the counter merge relies on).

/// Significant bits kept per octave (8 sub-buckets).
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;
/// Exact buckets for values in `0..2*SUBS`.
const EXACT: usize = (2 * SUBS) as usize;
/// Total bucket count: 16 exact + 60 octaves × 8 sub-buckets.
pub const NUM_BUCKETS: usize = EXACT + (63 - SUB_BITS as usize) * SUBS as usize;

/// Bucket index for a recorded value.
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUBS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // ≥ SUB_BITS + 1
        let octave = (msb - SUB_BITS) as usize; // ≥ 1
        let sub = ((v >> (msb - SUB_BITS)) - SUBS) as usize; // 0..SUBS
        EXACT + (octave - 1) * SUBS as usize + sub
    }
}

/// Inclusive upper bound of a bucket (the value reported for quantiles
/// that land in it), clamped to `u64::MAX` for the topmost bucket.
fn bucket_upper(idx: usize) -> u64 {
    if idx < EXACT {
        idx as u64
    } else {
        let rel = idx - EXACT;
        let octave = (rel / SUBS as usize + 1) as u32;
        let sub = (rel % SUBS as usize) as u64;
        let upper = ((SUBS + sub + 1) as u128) << octave;
        u64::try_from(upper - 1).unwrap_or(u64::MAX)
    }
}

/// A fixed-bucket log histogram of u64 samples (nanoseconds, typically).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    /// Saturating sum of all samples (mean estimation).
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v as u128);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (0 with no samples).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample (0 with no samples).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of the recorded samples (0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// `q`-ranked sample, clamped to the exact observed max. Returns 0
    /// with no samples; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`. Associative and commutative (saturating
    /// adds of non-negative counts), so worker merge order cannot change
    /// the result.
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Condensed summary for reports and snapshots.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            max_ns: self.max(),
        }
    }
}

/// Condensed histogram summary: the fields reports carry (the full bucket
/// array stays inside the sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Median, in nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, in nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, in nanoseconds.
    pub p99_ns: u64,
    /// Exact observed maximum, in nanoseconds.
    pub max_ns: u64,
}

/// Named latency histograms tracked by a [`crate::Telemetry`] sink.
/// Per-phase wall time comes from the span tree (each span node keeps its
/// own per-call histogram); these cover the hot per-call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// One what-if optimizer call (`Optimizer::try_optimize`) during
    /// benefit evaluation or baseline costing.
    WhatIfCall,
    /// One containment check answered through the evaluator
    /// (`BenefitEvaluator::covers`), cache hit or full NFA search.
    ContainCheck,
}

impl Hist {
    /// All histograms, in declaration order.
    pub const ALL: [Hist; 2] = [Hist::WhatIfCall, Hist::ContainCheck];

    /// Number of histograms.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in reports and CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            Hist::WhatIfCall => "what_if_call",
            Hist::ContainCheck => "contain_check",
        }
    }

    /// Slot index in the sink's histogram array.
    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(1234);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 1234);
        assert_eq!(h.max(), 1234);
        // Quantiles clamp to the exact max, so a single sample is exact.
        assert_eq!(h.quantile(0.0), 1234);
        assert_eq!(h.quantile(0.5), 1234);
        assert_eq!(h.quantile(1.0), 1234);
    }

    #[test]
    fn u64_max_sample_is_representable() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.25), 0);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let probes: Vec<u64> = (0..64)
            .flat_map(|b| {
                let v = 1u64 << b;
                [v.saturating_sub(1), v, v.saturating_add(1)]
            })
            .chain([0, 7, 15, 16, 100, u64::MAX])
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut prev = 0usize;
        for v in sorted {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= prev, "bucket index not monotone at {v}");
            assert!(bucket_upper(idx) >= v, "upper bound below member {v}");
            prev = idx;
        }
    }

    #[test]
    fn quantile_error_is_within_one_sub_bucket() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let est = h.quantile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 0.125, "q={q}: est {est} vs {exact} (err {err})");
        }
    }

    /// Deterministic xorshift for the property tests (no external crates,
    /// no wall-clock seeding).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn random_histogram(seed: u64, samples: usize) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        let mut s = seed.max(1);
        for _ in 0..samples {
            // Mix magnitudes: shift a 64-bit draw by a random amount so
            // every octave gets traffic.
            let v = xorshift(&mut s) >> (xorshift(&mut s) % 64);
            h.record(v);
        }
        h
    }

    fn assert_same(a: &LatencyHistogram, b: &LatencyHistogram) {
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.count, b.count);
        assert_eq!(a.sum, b.sum);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
    }

    /// Property: merge(a, merge(b, c)) == merge(merge(a, b), c), across
    /// random histograms including empty and saturated ones.
    #[test]
    fn merge_is_associative() {
        for seed in 1..=20u64 {
            let a = random_histogram(seed, 200);
            let b = random_histogram(seed.wrapping_mul(0x9E37_79B9), 150);
            let mut c = random_histogram(seed.wrapping_mul(0xBF58_476D), 0);
            if seed % 3 == 0 {
                // Saturation edge: counts near u64::MAX still merge
                // associatively (saturating adds of non-negatives).
                c.count = u64::MAX - 1;
                c.buckets[0] = u64::MAX - 1;
                c.min = 0;
            }
            let mut left = b.clone();
            left.merge_from(&c);
            let mut lhs = a.clone();
            lhs.merge_from(&left);

            let mut right = a.clone();
            right.merge_from(&b);
            right.merge_from(&c);

            assert_same(&lhs, &right);
        }
    }

    #[test]
    fn merge_is_commutative_and_identity_on_empty() {
        let a = random_histogram(7, 100);
        let b = random_histogram(11, 100);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_same(&ab, &ba);

        let mut with_empty = a.clone();
        with_empty.merge_from(&LatencyHistogram::new());
        assert_same(&with_empty, &a);
    }

    #[test]
    fn hist_names_are_unique_and_indices_dense() {
        let mut seen = std::collections::HashSet::new();
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
            assert!(seen.insert(h.name()), "duplicate name {}", h.name());
        }
    }
}
