//! Nested phase-timing tree.
//!
//! Spans are merged by name under their parent: entering `"evaluate"`
//! 10 000 times inside `"search"` yields one tree node with
//! `calls == 10_000`, keeping memory bounded for hot loops. Each node
//! also keeps a log-bucketed histogram of its per-call durations, so
//! reports can show p50/p95/p99/max instead of a single sum.

use crate::hist::{HistSummary, LatencyHistogram};
use std::time::Duration;

#[derive(Debug, Clone)]
struct SpanNode {
    name: &'static str,
    nanos: u128,
    calls: u64,
    hist: LatencyHistogram,
    children: Vec<usize>,
}

/// The mutable span tree behind a telemetry sink. One instance per sink,
/// guarded by a mutex; spans are expected to open/close on one thread at
/// a time (the advisor is single-threaded per recommendation).
#[derive(Debug, Default)]
pub(crate) struct SpanStore {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl SpanStore {
    /// Opens a span named `name` under the currently open span (or as a
    /// root), merging with an existing same-named sibling.
    pub(crate) fn enter(&mut self, name: &'static str) {
        let siblings = match self.stack.last() {
            Some(&parent) => &self.nodes[parent].children,
            None => &self.roots,
        };
        let existing = siblings
            .iter()
            .copied()
            .find(|&i| self.nodes[i].name == name);
        let idx = match existing {
            Some(i) => i,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(SpanNode {
                    name,
                    nanos: 0,
                    calls: 0,
                    hist: LatencyHistogram::new(),
                    children: Vec::new(),
                });
                match self.stack.last() {
                    Some(&parent) => self.nodes[parent].children.push(idx),
                    None => self.roots.push(idx),
                }
                idx
            }
        };
        self.stack.push(idx);
    }

    /// Closes the innermost open span, accruing `elapsed` to it.
    pub(crate) fn exit(&mut self, elapsed: Duration) {
        if let Some(idx) = self.stack.pop() {
            let node = &mut self.nodes[idx];
            node.nanos += elapsed.as_nanos();
            node.calls += 1;
            node.hist
                .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Drops all recorded spans (including any still open).
    pub(crate) fn clear(&mut self) {
        self.nodes.clear();
        self.roots.clear();
        self.stack.clear();
    }

    /// Immutable snapshot of the tree roots.
    pub(crate) fn snapshot(&self) -> Vec<SpanSnapshot> {
        self.roots.iter().map(|&i| self.snap(i)).collect()
    }

    fn snap(&self, idx: usize) -> SpanSnapshot {
        let node = &self.nodes[idx];
        SpanSnapshot {
            name: node.name.to_string(),
            micros: (node.nanos / 1_000) as u64,
            calls: node.calls,
            latency: node.hist.summary(),
            children: node.children.iter().map(|&c| self.snap(c)).collect(),
        }
    }
}

/// One node of a phase-timing snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Phase name.
    pub name: String,
    /// Total time accrued across all calls, in microseconds.
    pub micros: u64,
    /// Number of times the phase was entered.
    pub calls: u64,
    /// Per-call duration distribution (p50/p95/p99/max, nanoseconds).
    pub latency: HistSummary,
    /// Nested phases, in first-entered order.
    pub children: Vec<SpanSnapshot>,
}

impl SpanSnapshot {
    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanSnapshot> {
        self.children.iter().find(|c| c.name == name)
    }
}
