//! Typed decision-provenance events emitted by the advisor pipeline.
//!
//! Every order-sensitive decision the advisor makes — candidate creation,
//! pair generalization, heuristic prunes, what-if evaluations, knapsack
//! admissions, degradations — has a structured event here. Events carry
//! *no wall-clock data*, and every emission site runs on the coordinator
//! thread in deterministic order, so a journal's JSONL rendering is
//! byte-identical for any `--jobs` value.

use crate::json::Json;

/// Why a candidate was rejected by a search heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// The candidate's workload coverage is already provided by the
    /// chosen configuration (redundancy bitmap, paper Section VI-A).
    CoverageRedundant,
    /// The β size rule: the general index is too large relative to the
    /// specifics it replaces.
    SizeRule,
    /// The general index's improved benefit fell below the specifics it
    /// would replace (Heuristic 1).
    BenefitGate,
    /// Dropped by the final redundancy pass: no plan of the compiled
    /// workload uses the index.
    NotUsedInPlan,
    /// Replaced by its DAG children during top-down refinement.
    Replaced,
}

impl PruneReason {
    /// Stable snake_case name used in the JSONL rendering.
    pub fn name(self) -> &'static str {
        match self {
            PruneReason::CoverageRedundant => "coverage_redundant",
            PruneReason::SizeRule => "size_rule",
            PruneReason::BenefitGate => "benefit_gate",
            PruneReason::NotUsedInPlan => "not_used_in_plan",
            PruneReason::Replaced => "replaced",
        }
    }

    fn parse(s: &str) -> Option<PruneReason> {
        [
            PruneReason::CoverageRedundant,
            PruneReason::SizeRule,
            PruneReason::BenefitGate,
            PruneReason::NotUsedInPlan,
            PruneReason::Replaced,
        ]
        .into_iter()
        .find(|r| r.name() == s)
    }
}

/// One structured pipeline event. Field values are pattern *strings*
/// (not candidate ids) so a journal replays without the candidate set.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A candidate entered the candidate set (enumeration or
    /// generalization). `origin` is `"basic"` or `"generalized"`.
    CandidateGenerated {
        /// Collection the candidate indexes.
        collection: String,
        /// Index pattern (linear XPath).
        pattern: String,
        /// Key type name (`string` / `numerical`).
        kind: String,
        /// `"basic"` or `"generalized"`.
        origin: String,
    },
    /// A statement pair generalized into a new pattern (Algorithm 1).
    /// Recorded for the *first* derivation of each new pattern.
    PairGeneralized {
        /// Collection of the pair.
        collection: String,
        /// First input pattern.
        left: String,
        /// Second input pattern.
        right: String,
        /// The generalization produced.
        result: String,
    },
    /// A search heuristic rejected a candidate.
    CandidatePruned {
        /// The rejected candidate's pattern.
        pattern: String,
        /// Which heuristic fired.
        reason: PruneReason,
    },
    /// One sub-configuration benefit evaluation resolved.
    WhatIfEvaluated {
        /// Patterns of the evaluated sub-configuration, in key order.
        config: Vec<String>,
        /// Query-side benefit of the sub-configuration
        /// (`Σ freq·(baseline − indexed)`, the cached value).
        cost: f64,
        /// Served from the benefit cache (or a duplicate within the
        /// batch) instead of fanning out optimizer calls.
        cache_hit: bool,
    },
    /// A search weighed a candidate against the current configuration.
    /// The last decision for a pattern is the final one.
    KnapsackDecision {
        /// The candidate's pattern.
        pattern: String,
        /// Admitted into (or confirmed in) the configuration.
        kept: bool,
        /// The configuration benefit that justified the decision.
        benefit: f64,
        /// Estimated candidate size in bytes.
        size: u64,
    },
    /// An injected (or organic) optimizer fault degraded one statement
    /// costing to the heuristic fallback.
    FaultInjected {
        /// Workload statement index whose costing degraded.
        statement: usize,
    },
    /// The what-if budget ran out; later evaluations degrade to cached
    /// and heuristic costs. Emitted once per evaluator.
    BudgetExhausted {
        /// Optimizer calls charged when the budget tripped.
        charged: u64,
    },
    /// The run controller stopped the run before the search finished;
    /// the recommendation is the best configuration found so far.
    RunStopped {
        /// Why the run stopped (`deadline` / `cancelled`).
        reason: String,
    },
    /// The resource governor walked one rung down the graceful-degradation
    /// ladder because the cache memory tally exceeded the budget.
    GovernorDemoted {
        /// The rung entered (`shrink_memo` / `no_stmt_cache` /
        /// `heuristic_only`).
        rung: String,
        /// Approximate live cache bytes when the demotion fired.
        approx_bytes: u64,
    },
    /// The workload was compressed into weighted cost-identity templates
    /// before the search (CoPhy-style advising).
    WorkloadCompressed {
        /// Statements in the original workload.
        statements: u64,
        /// Weighted templates the search actually costs.
        templates: u64,
    },
    /// The `cophy` LP/knapsack relaxation solved. `bound` is the
    /// fractional (LP) optimum — an upper bound on any integer
    /// configuration's benefit; `value` is the rounded solution's benefit.
    LpRelaxed {
        /// Fractional LP optimum (upper bound).
        bound: f64,
        /// Benefit of the rounded integer solution.
        value: f64,
        /// Relaxation loop iterations.
        iterations: u64,
    },
    /// The template-mass distribution of the observed workload drifted
    /// past the configured threshold since the last recommendation; the
    /// serving layer re-advises incrementally and rebaselines.
    DriftDetected {
        /// Total-variation distance between the current and baseline
        /// template-mass distributions, in `[0, 1]`.
        drift: f64,
        /// The configured re-advise threshold that was crossed.
        threshold: f64,
        /// Distinct templates in the current distribution.
        templates: u64,
    },
}

impl Event {
    /// Stable snake_case tag used as the JSONL `event` field.
    pub fn name(&self) -> &'static str {
        match self {
            Event::CandidateGenerated { .. } => "candidate_generated",
            Event::PairGeneralized { .. } => "pair_generalized",
            Event::CandidatePruned { .. } => "candidate_pruned",
            Event::WhatIfEvaluated { .. } => "what_if_evaluated",
            Event::KnapsackDecision { .. } => "knapsack_decision",
            Event::FaultInjected { .. } => "fault_injected",
            Event::BudgetExhausted { .. } => "budget_exhausted",
            Event::RunStopped { .. } => "run_stopped",
            Event::GovernorDemoted { .. } => "governor_demoted",
            Event::WorkloadCompressed { .. } => "workload_compressed",
            Event::LpRelaxed { .. } => "lp_relaxed",
            Event::DriftDetected { .. } => "drift_detected",
        }
    }

    /// The JSON object for one journal line (without the `seq` field,
    /// which the journal prepends).
    pub(crate) fn fields(&self) -> Vec<(String, Json)> {
        let s = |v: &str| Json::Str(v.to_string());
        match self {
            Event::CandidateGenerated {
                collection,
                pattern,
                kind,
                origin,
            } => vec![
                ("collection".into(), s(collection)),
                ("pattern".into(), s(pattern)),
                ("kind".into(), s(kind)),
                ("origin".into(), s(origin)),
            ],
            Event::PairGeneralized {
                collection,
                left,
                right,
                result,
            } => vec![
                ("collection".into(), s(collection)),
                ("left".into(), s(left)),
                ("right".into(), s(right)),
                ("result".into(), s(result)),
            ],
            Event::CandidatePruned { pattern, reason } => vec![
                ("pattern".into(), s(pattern)),
                ("reason".into(), s(reason.name())),
            ],
            Event::WhatIfEvaluated {
                config,
                cost,
                cache_hit,
            } => vec![
                (
                    "config".into(),
                    Json::Arr(config.iter().map(|p| s(p)).collect()),
                ),
                ("cost".into(), Json::Num(*cost)),
                ("cache_hit".into(), Json::Bool(*cache_hit)),
            ],
            Event::KnapsackDecision {
                pattern,
                kept,
                benefit,
                size,
            } => vec![
                ("pattern".into(), s(pattern)),
                ("kept".into(), Json::Bool(*kept)),
                ("benefit".into(), Json::Num(*benefit)),
                ("size".into(), Json::Num(*size as f64)),
            ],
            Event::FaultInjected { statement } => {
                vec![("statement".into(), Json::Num(*statement as f64))]
            }
            Event::BudgetExhausted { charged } => {
                vec![("charged".into(), Json::Num(*charged as f64))]
            }
            Event::RunStopped { reason } => vec![("reason".into(), s(reason))],
            Event::GovernorDemoted { rung, approx_bytes } => vec![
                ("rung".into(), s(rung)),
                ("approx_bytes".into(), Json::Num(*approx_bytes as f64)),
            ],
            Event::WorkloadCompressed {
                statements,
                templates,
            } => vec![
                ("statements".into(), Json::Num(*statements as f64)),
                ("templates".into(), Json::Num(*templates as f64)),
            ],
            Event::LpRelaxed {
                bound,
                value,
                iterations,
            } => vec![
                ("bound".into(), Json::Num(*bound)),
                ("value".into(), Json::Num(*value)),
                ("iterations".into(), Json::Num(*iterations as f64)),
            ],
            Event::DriftDetected {
                drift,
                threshold,
                templates,
            } => vec![
                ("drift".into(), Json::Num(*drift)),
                ("threshold".into(), Json::Num(*threshold)),
                ("templates".into(), Json::Num(*templates as f64)),
            ],
        }
    }

    /// Parses an event back from a journal line's JSON object.
    pub(crate) fn from_json(v: &Json) -> Result<Event, String> {
        let tag = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or("missing `event` tag")?;
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{tag}: missing `{k}`"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("{tag}: missing `{k}`"))
        };
        let bool_field = |k: &str| -> Result<bool, String> {
            match v.get(k) {
                Some(Json::Bool(b)) => Ok(*b),
                _ => Err(format!("{tag}: missing `{k}`")),
            }
        };
        Ok(match tag {
            "candidate_generated" => Event::CandidateGenerated {
                collection: str_field("collection")?,
                pattern: str_field("pattern")?,
                kind: str_field("kind")?,
                origin: str_field("origin")?,
            },
            "pair_generalized" => Event::PairGeneralized {
                collection: str_field("collection")?,
                left: str_field("left")?,
                right: str_field("right")?,
                result: str_field("result")?,
            },
            "candidate_pruned" => Event::CandidatePruned {
                pattern: str_field("pattern")?,
                reason: PruneReason::parse(&str_field("reason")?)
                    .ok_or_else(|| format!("unknown prune reason in {tag}"))?,
            },
            "what_if_evaluated" => Event::WhatIfEvaluated {
                config: match v.get("config") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|p| {
                            p.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "non-string config member".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(format!("{tag}: missing `config`")),
                },
                cost: num_field("cost")?,
                cache_hit: bool_field("cache_hit")?,
            },
            "knapsack_decision" => Event::KnapsackDecision {
                pattern: str_field("pattern")?,
                kept: bool_field("kept")?,
                benefit: num_field("benefit")?,
                size: num_field("size")? as u64,
            },
            "fault_injected" => Event::FaultInjected {
                statement: num_field("statement")? as usize,
            },
            "budget_exhausted" => Event::BudgetExhausted {
                charged: num_field("charged")? as u64,
            },
            "run_stopped" => Event::RunStopped {
                reason: str_field("reason")?,
            },
            "governor_demoted" => Event::GovernorDemoted {
                rung: str_field("rung")?,
                approx_bytes: num_field("approx_bytes")? as u64,
            },
            "workload_compressed" => Event::WorkloadCompressed {
                statements: num_field("statements")? as u64,
                templates: num_field("templates")? as u64,
            },
            "lp_relaxed" => Event::LpRelaxed {
                bound: num_field("bound")?,
                value: num_field("value")?,
                iterations: num_field("iterations")? as u64,
            },
            "drift_detected" => Event::DriftDetected {
                drift: num_field("drift")?,
                threshold: num_field("threshold")?,
                templates: num_field("templates")? as u64,
            },
            other => return Err(format!("unknown event tag `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::EventJournal;

    fn samples() -> Vec<Event> {
        vec![
            Event::CandidateGenerated {
                collection: "SDOC".into(),
                pattern: "/Security/Symbol".into(),
                kind: "string".into(),
                origin: "basic".into(),
            },
            Event::PairGeneralized {
                collection: "SDOC".into(),
                left: "/Security/Symbol".into(),
                right: "/Security/SecInfo/*/Sector".into(),
                result: "/Security//*".into(),
            },
            Event::CandidatePruned {
                pattern: "/Security//*".into(),
                reason: PruneReason::SizeRule,
            },
            Event::WhatIfEvaluated {
                config: vec!["/Security/Symbol".into(), "/Security/Yield".into()],
                cost: 1234.5,
                cache_hit: false,
            },
            Event::KnapsackDecision {
                pattern: "/Security/Symbol".into(),
                kept: true,
                benefit: 99.25,
                size: 4096,
            },
            Event::FaultInjected { statement: 3 },
            Event::BudgetExhausted { charged: 500 },
            Event::RunStopped {
                reason: "deadline".into(),
            },
            Event::GovernorDemoted {
                rung: "shrink_memo".into(),
                approx_bytes: 1 << 20,
            },
            Event::WorkloadCompressed {
                statements: 100_000,
                templates: 412,
            },
            Event::LpRelaxed {
                bound: 512.75,
                value: 498.5,
                iterations: 7,
            },
            Event::DriftDetected {
                drift: 0.375,
                threshold: 0.2,
                templates: 12,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_jsonl() {
        let j = EventJournal::new();
        for e in samples() {
            j.emit(|| e.clone());
        }
        let text = j.to_jsonl();
        let back = EventJournal::parse_jsonl(&text).unwrap();
        assert_eq!(back.len(), samples().len());
        for (i, (seq, event)) in back.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*event, samples()[i]);
        }
    }

    #[test]
    fn prune_reasons_round_trip() {
        for r in [
            PruneReason::CoverageRedundant,
            PruneReason::SizeRule,
            PruneReason::BenefitGate,
            PruneReason::NotUsedInPlan,
            PruneReason::Replaced,
        ] {
            assert_eq!(PruneReason::parse(r.name()), Some(r));
        }
        assert_eq!(PruneReason::parse("nope"), None);
    }
}
