//! Named event counters for the advisor pipeline.

/// Every counted event in the advisor, optimizer, and catalog. Each
/// variant maps to one atomic slot in a [`crate::Telemetry`] sink; see
/// `DESIGN.md` for the paper artifact each counter reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Counter {
    /// Evaluate-mode optimizer invocations (`Optimizer::optimize`) — the
    /// paper's "number of optimizer calls" axis (Fig. 3).
    OptimizerEvaluateCalls,
    /// Enumerate-mode optimizer invocations (`Optimizer::enumerate_indexes`).
    OptimizerEnumerateCalls,
    /// Index definitions tested for pattern containment during plan
    /// matching.
    IndexMatchingAttempts,
    /// Selectivity estimations performed while costing index plans.
    SelectivityEstimates,
    /// Benefit evaluations answered from the sub-configuration cache.
    BenefitCacheHits,
    /// Benefit evaluations that had to call the optimizer.
    BenefitCacheMisses,
    /// Top-level `benefit()` requests issued by the searches.
    BenefitEvaluations,
    /// Basic candidates produced by enumerate-mode (Table III "basic").
    CandidatesEnumerated,
    /// Generalized candidates added by Algorithm 1 (Table III "general").
    CandidatesGeneralized,
    /// Candidates admitted into the recommended configuration.
    CandidatesAdmitted,
    /// Candidates rejected by the greedy-search heuristics (β size rule,
    /// benefit gate, redundancy elimination).
    CandidatesPrunedHeuristic,
    /// Iterations of the greedy selection loops.
    GreedyIterations,
    /// Replacement expansions explored by the top-down searches.
    TopDownExpansions,
    /// Virtual (what-if) indexes created in a catalog.
    VirtualIndexesCreated,
    /// Virtual indexes dropped from a catalog.
    VirtualIndexesDropped,
    /// Statistics derivations for virtual indexes.
    StatsDerivations,
    /// Estimated bytes of virtual indexes created (gauge-style sum).
    EstIndexBytes,
    /// Workload statements quarantined after a parse or costing failure
    /// (graceful degradation instead of aborting the advise run).
    StatementsQuarantined,
    /// Benefit evaluations answered with a heuristic fallback cost after
    /// an optimizer failure or budget exhaustion.
    CostFallbacks,
    /// What-if evaluations refused because the call/time budget ran out.
    WhatIfBudgetExhausted,
    /// Faults fired by the xia-fault injector during this run.
    FaultsInjected,
    /// Per-statement costings served without an optimizer call because the
    /// candidate being probed is irrelevant to the statement (relevance
    /// pruning layer).
    StatementsPruned,
    /// Per-statement costings answered from the projection-keyed
    /// statement cost cache.
    StmtCacheHits,
    /// Incremental `benefit_delta` probes issued by the searches.
    DeltaProbes,
    /// Candidate pairs the generalization fixpoint examined (reached the
    /// loop body: the naive path counts every ordered pair including the
    /// compatibility check it then fails; the semi-naive path counts the
    /// bucket-compatible pairs it processes). The E12 speedup factor is
    /// this counter's naive/semi-naive ratio.
    GeneralizePairsVisited,
    /// Candidate pairs the semi-naive fixpoint never visited because the
    /// two candidates live in different (collection, value-kind) buckets.
    PairsSkippedBucket,
    /// `generalize_pair` invocations answered from the canonical-pair memo
    /// instead of re-running the rule engine.
    PairsMemoHits,
    /// Containment verdicts answered from the shared cover cache.
    ContainCacheHits,
    /// Containment verdicts decided by the name-mask fast reject without
    /// running the NFA product search.
    ContainFastRejects,
    /// Resource-governor demotions: rungs of the graceful-degradation
    /// ladder walked because the cache memory tally exceeded
    /// `--mem-budget`.
    GovernorDemotions,
    /// Run-progress checkpoints written by the run controller.
    CheckpointsWritten,
    /// Documents ingested through the streaming (SAX-style) parse path
    /// instead of the DOM parser.
    DocsStreamed,
    /// Multi-document ingestion batches processed (one per worker chunk of
    /// a parallel `ingest_batch` call).
    IngestBatches,
    /// Value rows iterated from the columnar leaf store during statistics
    /// collection and physical index builds (contiguous typed slices
    /// instead of per-node pointer chasing).
    ColumnarScanRows,
    /// Weighted workload templates produced by CoPhy-style compression
    /// (one per distinct cost-identity template key).
    TemplatesBuilt,
    /// Statements folded into an existing template during workload
    /// compression (original statements minus templates built).
    StmtsCompressed,
    /// Iterations of the LP/knapsack relaxation loop in the `cophy`
    /// search (fractional solve + greedy rounding passes).
    LpIterations,
}

impl Counter {
    /// All counters, in declaration order.
    pub const ALL: [Counter; 37] = [
        Counter::OptimizerEvaluateCalls,
        Counter::OptimizerEnumerateCalls,
        Counter::IndexMatchingAttempts,
        Counter::SelectivityEstimates,
        Counter::BenefitCacheHits,
        Counter::BenefitCacheMisses,
        Counter::BenefitEvaluations,
        Counter::CandidatesEnumerated,
        Counter::CandidatesGeneralized,
        Counter::CandidatesAdmitted,
        Counter::CandidatesPrunedHeuristic,
        Counter::GreedyIterations,
        Counter::TopDownExpansions,
        Counter::VirtualIndexesCreated,
        Counter::VirtualIndexesDropped,
        Counter::StatsDerivations,
        Counter::EstIndexBytes,
        Counter::StatementsQuarantined,
        Counter::CostFallbacks,
        Counter::WhatIfBudgetExhausted,
        Counter::FaultsInjected,
        Counter::StatementsPruned,
        Counter::StmtCacheHits,
        Counter::DeltaProbes,
        Counter::GeneralizePairsVisited,
        Counter::PairsSkippedBucket,
        Counter::PairsMemoHits,
        Counter::ContainCacheHits,
        Counter::ContainFastRejects,
        Counter::GovernorDemotions,
        Counter::CheckpointsWritten,
        Counter::DocsStreamed,
        Counter::IngestBatches,
        Counter::ColumnarScanRows,
        Counter::TemplatesBuilt,
        Counter::StmtsCompressed,
        Counter::LpIterations,
    ];

    /// Number of counters.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in reports and CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            Counter::OptimizerEvaluateCalls => "optimizer_evaluate_calls",
            Counter::OptimizerEnumerateCalls => "optimizer_enumerate_calls",
            Counter::IndexMatchingAttempts => "index_matching_attempts",
            Counter::SelectivityEstimates => "selectivity_estimates",
            Counter::BenefitCacheHits => "benefit_cache_hits",
            Counter::BenefitCacheMisses => "benefit_cache_misses",
            Counter::BenefitEvaluations => "benefit_evaluations",
            Counter::CandidatesEnumerated => "candidates_enumerated",
            Counter::CandidatesGeneralized => "candidates_generalized",
            Counter::CandidatesAdmitted => "candidates_admitted",
            Counter::CandidatesPrunedHeuristic => "candidates_pruned_heuristic",
            Counter::GreedyIterations => "greedy_iterations",
            Counter::TopDownExpansions => "topdown_expansions",
            Counter::VirtualIndexesCreated => "virtual_indexes_created",
            Counter::VirtualIndexesDropped => "virtual_indexes_dropped",
            Counter::StatsDerivations => "stats_derivations",
            Counter::EstIndexBytes => "est_index_bytes",
            Counter::StatementsQuarantined => "statements_quarantined",
            Counter::CostFallbacks => "cost_fallbacks",
            Counter::WhatIfBudgetExhausted => "what_if_budget_exhausted",
            Counter::FaultsInjected => "faults_injected",
            Counter::StatementsPruned => "statements_pruned",
            Counter::StmtCacheHits => "stmt_cache_hits",
            Counter::DeltaProbes => "delta_probes",
            Counter::GeneralizePairsVisited => "generalize_pairs_visited",
            Counter::PairsSkippedBucket => "pairs_skipped_bucket",
            Counter::PairsMemoHits => "pairs_memo_hits",
            Counter::ContainCacheHits => "contain_cache_hits",
            Counter::ContainFastRejects => "contain_fast_rejects",
            Counter::GovernorDemotions => "governor_demotions",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::DocsStreamed => "docs_streamed",
            Counter::IngestBatches => "ingest_batches",
            Counter::ColumnarScanRows => "columnar_scan_rows",
            Counter::TemplatesBuilt => "templates_built",
            Counter::StmtsCompressed => "stmts_compressed",
            Counter::LpIterations => "lp_iterations",
        }
    }

    /// Slot index in the atomic counter array (the declaration-order
    /// discriminant; `ALL` is declared in the same order).
    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            let n = c.name();
            assert!(seen.insert(n), "duplicate name {n}");
            assert!(n
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch == '_' || ch.is_ascii_digit()));
        }
    }
}
