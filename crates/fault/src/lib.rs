//! # xia-fault
//!
//! Deterministic, seedable fault injection for the XML Index Advisor —
//! the robustness counterpart of `xia-obs`. Where the telemetry crate
//! *observes* the advisor's round trips to the optimizer and storage,
//! this crate *perturbs* them: the same call sites that the paper's
//! what-if interface exercises (Evaluate-mode optimizer calls, statistics
//! access, catalog I/O) are also the places a production advisor must
//! survive failing.
//!
//! Three pieces, mirroring the `Telemetry` pattern exactly:
//!
//! * [`FaultSite`] — the named injection points threaded through storage
//!   and the optimizer.
//! * [`InjectedFault`] — the error value a firing site produces; it
//!   records the site and the (deterministic) call number, so a failure
//!   can be replayed exactly from its seed.
//! * [`FaultInjector`] — a cheap, cloneable handle. Cloning shares the
//!   underlying state; [`FaultInjector::off`] yields a no-op handle whose
//!   every operation is a branch on `None` — zero cost when disabled.
//!
//! Determinism: whether call *n* at site *s* fails is a pure function of
//! `(seed, s, n)` via a splitmix64 hash, independent of timing, thread
//! interleaving of other sites, or how many other sites fired. A chaos
//! test that fixes the seed sees the same faults on every run.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A named fault-injection point. Each site corresponds to one failure
/// class of the advisor's round trips (see DESIGN.md §9 for the mapping
/// to the paper's what-if interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// Storage-layer I/O (persisted-database reads and writes).
    StorageIo,
    /// Evaluate-mode optimizer costing (`Optimizer::try_optimize`).
    OptimizerCost,
    /// Statistics collection (RUNSTATS) unavailable for a collection.
    StatsUnavailable,
    /// Run-checkpoint I/O (checkpoint file reads and writes). A firing
    /// write abandons that checkpoint (the previous one survives); a
    /// firing read falls back to a cold start.
    CheckpointIo,
}

impl FaultSite {
    /// All sites, in declaration order.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::StorageIo,
        FaultSite::OptimizerCost,
        FaultSite::StatsUnavailable,
        FaultSite::CheckpointIo,
    ];

    /// Number of sites.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable kebab-case name (used by `xia recommend --inject`).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::StorageIo => "storage-io",
            FaultSite::OptimizerCost => "optimizer-cost",
            FaultSite::StatsUnavailable => "stats-unavailable",
            FaultSite::CheckpointIo => "checkpoint-io",
        }
    }

    /// Parses a site name produced by [`FaultSite::name`].
    pub fn from_name(s: &str) -> Option<FaultSite> {
        Self::ALL.into_iter().find(|site| site.name() == s)
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The error a firing fault site produces. Carries enough to replay the
/// exact failure: the site and its deterministic call number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: FaultSite,
    /// 1-based call number at that site when it fired.
    pub call: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {} (call #{})", self.site, self.call)
    }
}

impl std::error::Error for InjectedFault {}

impl From<InjectedFault> for std::io::Error {
    fn from(f: InjectedFault) -> Self {
        std::io::Error::other(f)
    }
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    /// Per-site firing probability as a u64 threshold: a call fires when
    /// `hash(seed, site, n) < threshold`. `0` = never, `u64::MAX` = always.
    thresholds: [u64; FaultSite::COUNT],
    /// Calls rolled per site (fired or not).
    calls: [AtomicU64; FaultSite::COUNT],
    /// Faults injected per site.
    injected: [AtomicU64; FaultSite::COUNT],
}

/// A derived fault stream: its own hash seed and per-site call numbering,
/// layered over the parent injector's shared thresholds and counters.
#[derive(Debug)]
struct Stream {
    seed: u64,
    /// Per-site call numbers local to this stream.
    calls: [AtomicU64; FaultSite::COUNT],
}

/// Cheap handle to shared fault-injection state. See the crate docs.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
    /// When present, rolls hash against this stream's seed and call
    /// numbering instead of the shared ones (see
    /// [`FaultInjector::derive_stream`]).
    stream: Option<Arc<Stream>>,
}

/// splitmix64 — the standard 64-bit finalizer; good avalanche, no state.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// A disabled handle: every roll succeeds, at the cost of one branch.
    pub fn off() -> Self {
        Self {
            inner: None,
            stream: None,
        }
    }

    /// A seeded injector with all sites initially at probability 0. Use
    /// [`FaultInjector::with_rate`] / [`FaultInjector::with_always`] to arm
    /// sites before sharing the handle.
    pub fn seeded(seed: u64) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                seed,
                thresholds: [0; FaultSite::COUNT],
                calls: std::array::from_fn(|_| AtomicU64::new(0)),
                injected: std::array::from_fn(|_| AtomicU64::new(0)),
            })),
            stream: None,
        }
    }

    /// Derives a fault stream for one unit of parallel work, identified by
    /// a caller-chosen `salt` (e.g. a hash of the task being costed).
    ///
    /// The derived handle shares the parent's thresholds and aggregate
    /// `calls`/`injected` counters, but rolls against its own seed
    /// (`splitmix64(parent_seed ^ salt)`) and its own per-site call
    /// numbering. Whether a roll fires is therefore a pure function of
    /// `(seed, salt, local call number)` — independent of how concurrent
    /// workers interleave — which is what keeps chaos runs deterministic
    /// under `--jobs N`. Deriving from a disabled handle yields a disabled
    /// handle; deriving from a derived handle chains the seeds.
    pub fn derive_stream(&self, salt: u64) -> FaultInjector {
        let Some(inner) = &self.inner else {
            return FaultInjector::off();
        };
        let parent_seed = self.stream.as_ref().map_or(inner.seed, |s| s.seed);
        let seed = splitmix64(parent_seed ^ salt.wrapping_mul(0xa24b_aed4_963e_e407));
        FaultInjector {
            inner: Some(Arc::clone(inner)),
            stream: Some(Arc::new(Stream {
                seed,
                calls: std::array::from_fn(|_| AtomicU64::new(0)),
            })),
        }
    }

    /// Arms `site` to fire with probability `rate` (clamped to `[0, 1]`).
    /// Builder-style; must be called before the handle is cloned.
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else if rate <= 0.0 {
            0
        } else {
            (rate * u64::MAX as f64) as u64
        };
        if let Some(inner) = self.inner.as_mut().and_then(Arc::get_mut) {
            inner.thresholds[site.index()] = threshold;
        }
        self
    }

    /// Arms `site` to fire on every roll.
    pub fn with_always(self, site: FaultSite) -> Self {
        self.with_rate(site, 1.0)
    }

    /// Whether this handle can inject anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `site` is armed (non-zero probability).
    pub fn is_armed(&self, site: FaultSite) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.thresholds[site.index()] > 0)
    }

    /// Rolls the dice at `site`: returns `Err(InjectedFault)` when the
    /// deterministic schedule says call *n* fails, `Ok(())` otherwise.
    /// On a disabled handle this is a single branch on `None`.
    #[inline]
    pub fn roll(&self, site: FaultSite) -> Result<(), InjectedFault> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        self.roll_armed(inner, site)
    }

    /// Cold path of [`FaultInjector::roll`], separated so the disabled
    /// handle inlines to a branch.
    fn roll_armed(&self, inner: &Inner, site: FaultSite) -> Result<(), InjectedFault> {
        let i = site.index();
        // The shared counter always tracks total rolls across all streams.
        let shared_call = inner.calls[i].fetch_add(1, Ordering::Relaxed) + 1;
        // A derived stream hashes against its own seed and call numbering,
        // so its schedule is independent of concurrent rolls elsewhere.
        let (seed, call) = match &self.stream {
            Some(stream) => (
                stream.seed,
                stream.calls[i].fetch_add(1, Ordering::Relaxed) + 1,
            ),
            None => (inner.seed, shared_call),
        };
        let threshold = inner.thresholds[i];
        if threshold == 0 {
            return Ok(());
        }
        let h = splitmix64(
            seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((i as u64) << 56)
                .wrapping_add(call),
        );
        if threshold == u64::MAX || h < threshold {
            inner.injected[i].fetch_add(1, Ordering::Relaxed);
            return Err(InjectedFault { site, call });
        }
        Ok(())
    }

    /// Calls rolled at `site` so far (0 on a disabled handle).
    pub fn calls(&self, site: FaultSite) -> u64 {
        match &self.inner {
            Some(inner) => inner.calls[site.index()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Faults injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        match &self.inner {
            Some(inner) => inner.injected[site.index()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.injected(s)).sum()
    }

    /// Parses a `site:rate` spec (e.g. `optimizer-cost:0.3`) onto this
    /// handle, arming the site. Used by `xia recommend --inject`.
    pub fn with_spec(self, spec: &str) -> Result<Self, String> {
        let (site, rate) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad fault spec `{spec}` (expected site:rate)"))?;
        let site = FaultSite::from_name(site).ok_or_else(|| {
            format!(
                "unknown fault site `{site}` (expected one of: {})",
                FaultSite::ALL.map(|s| s.name()).join(", ")
            )
        })?;
        let rate: f64 = rate
            .parse()
            .map_err(|_| format!("bad fault rate `{rate}` (expected a number in [0,1])"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} out of range [0,1]"));
        }
        Ok(self.with_rate(site, rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_never_fires() {
        let f = FaultInjector::off();
        assert!(!f.is_enabled());
        for _ in 0..1000 {
            assert!(f.roll(FaultSite::OptimizerCost).is_ok());
        }
        assert_eq!(f.calls(FaultSite::OptimizerCost), 0);
        assert_eq!(f.injected_total(), 0);
    }

    #[test]
    fn unarmed_sites_never_fire_but_count_calls() {
        let f = FaultInjector::seeded(1).with_rate(FaultSite::StorageIo, 1.0);
        for _ in 0..100 {
            assert!(f.roll(FaultSite::OptimizerCost).is_ok());
        }
        assert_eq!(f.calls(FaultSite::OptimizerCost), 100);
        assert_eq!(f.injected(FaultSite::OptimizerCost), 0);
    }

    #[test]
    fn always_fires_every_call_with_call_numbers() {
        let f = FaultInjector::seeded(7).with_always(FaultSite::StorageIo);
        for n in 1..=5u64 {
            let e = f.roll(FaultSite::StorageIo).unwrap_err();
            assert_eq!(e.site, FaultSite::StorageIo);
            assert_eq!(e.call, n);
        }
        assert_eq!(f.injected(FaultSite::StorageIo), 5);
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let runs: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let f = FaultInjector::seeded(42).with_rate(FaultSite::OptimizerCost, 0.3);
                (0..200)
                    .map(|_| f.roll(FaultSite::OptimizerCost).is_err())
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        let fired = runs[0].iter().filter(|&&b| b).count();
        assert!((20..=120).contains(&fired), "rate 0.3 fired {fired}/200");
        // A different seed yields a different schedule.
        let f = FaultInjector::seeded(43).with_rate(FaultSite::OptimizerCost, 0.3);
        let other: Vec<bool> = (0..200)
            .map(|_| f.roll(FaultSite::OptimizerCost).is_err())
            .collect();
        assert_ne!(runs[0], other);
    }

    #[test]
    fn sites_are_independent_streams() {
        // Interleaving rolls at another site must not shift a site's
        // schedule (each site numbers its own calls).
        let solo = FaultInjector::seeded(9).with_rate(FaultSite::StorageIo, 0.5);
        let solo_sched: Vec<bool> = (0..50)
            .map(|_| solo.roll(FaultSite::StorageIo).is_err())
            .collect();
        let mixed = FaultInjector::seeded(9)
            .with_rate(FaultSite::StorageIo, 0.5)
            .with_rate(FaultSite::OptimizerCost, 0.5);
        let mixed_sched: Vec<bool> = (0..50)
            .map(|_| {
                let _ = mixed.roll(FaultSite::OptimizerCost);
                mixed.roll(FaultSite::StorageIo).is_err()
            })
            .collect();
        assert_eq!(solo_sched, mixed_sched);
    }

    #[test]
    fn clones_share_state() {
        let f = FaultInjector::seeded(3).with_always(FaultSite::StatsUnavailable);
        let g = f.clone();
        assert!(g.roll(FaultSite::StatsUnavailable).is_err());
        assert_eq!(f.injected(FaultSite::StatsUnavailable), 1);
    }

    #[test]
    fn derived_streams_are_interleaving_independent() {
        // The schedule of a derived stream must depend only on
        // (seed, salt, local call number) — not on rolls made through the
        // parent or through sibling streams in between.
        let schedule = |noise: bool| -> Vec<bool> {
            let parent = FaultInjector::seeded(77).with_rate(FaultSite::OptimizerCost, 0.4);
            let stream = parent.derive_stream(0xBEEF);
            let sibling = parent.derive_stream(0xCAFE);
            (0..60)
                .map(|_| {
                    if noise {
                        let _ = parent.roll(FaultSite::OptimizerCost);
                        let _ = sibling.roll(FaultSite::OptimizerCost);
                    }
                    stream.roll(FaultSite::OptimizerCost).is_err()
                })
                .collect()
        };
        assert_eq!(schedule(false), schedule(true));
        // Different salts yield different schedules.
        let parent = FaultInjector::seeded(77).with_rate(FaultSite::OptimizerCost, 0.4);
        let roll_out = |salt: u64| -> Vec<bool> {
            let stream = parent.derive_stream(salt);
            (0..60)
                .map(|_| stream.roll(FaultSite::OptimizerCost).is_err())
                .collect()
        };
        assert_ne!(roll_out(1), roll_out(2));
    }

    #[test]
    fn derived_streams_report_into_parent_counters() {
        let parent = FaultInjector::seeded(5).with_always(FaultSite::OptimizerCost);
        let stream = parent.derive_stream(42);
        assert!(stream.roll(FaultSite::OptimizerCost).is_err());
        assert!(stream.roll(FaultSite::OptimizerCost).is_err());
        let _ = parent.roll(FaultSite::OptimizerCost);
        assert_eq!(parent.calls(FaultSite::OptimizerCost), 3);
        assert_eq!(parent.injected(FaultSite::OptimizerCost), 3);
    }

    #[test]
    fn deriving_from_off_stays_off() {
        let stream = FaultInjector::off().derive_stream(9);
        assert!(!stream.is_enabled());
        assert!(stream.roll(FaultSite::StorageIo).is_ok());
    }

    #[test]
    fn spec_parsing() {
        let f = FaultInjector::seeded(0)
            .with_spec("optimizer-cost:1.0")
            .unwrap();
        assert!(f.is_armed(FaultSite::OptimizerCost));
        assert!(!f.is_armed(FaultSite::StorageIo));
        assert!(FaultInjector::seeded(0).with_spec("nope:0.5").is_err());
        assert!(FaultInjector::seeded(0).with_spec("storage-io").is_err());
        assert!(FaultInjector::seeded(0)
            .with_spec("storage-io:2.0")
            .is_err());
        assert!(FaultInjector::seeded(0).with_spec("storage-io:x").is_err());
    }

    #[test]
    fn site_names_round_trip() {
        for s in FaultSite::ALL {
            assert_eq!(FaultSite::from_name(s.name()), Some(s));
        }
        assert_eq!(FaultSite::from_name("bogus"), None);
    }

    #[test]
    fn injected_fault_displays_and_converts_to_io() {
        let f = FaultInjector::seeded(1).with_always(FaultSite::StorageIo);
        let e = f.roll(FaultSite::StorageIo).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("storage-io"), "{msg}");
        let io: std::io::Error = e.into();
        assert!(io.to_string().contains("injected fault"), "{io}");
    }
}
