//! Statement normalization: exposing indexable access patterns.
//!
//! This performs, in one place, the query rewrites the paper credits DB2's
//! optimizer with: a `where $sec/Symbol = "B"` clause and a
//! `[Yield > 4.5]` step predicate both become *access patterns* — absolute
//! linear paths paired with a predicate — which are exactly the patterns
//! the Enumerate-Indexes optimizer mode matches against the `//*` virtual
//! index (candidates C1–C3 of the paper's Table I).

use crate::ast::{CmpOp, Literal, PathExpr, Predicate};
use crate::linear::{LinearPath, LinearStep};
use crate::statement::{Statement, ValueKind};
use crate::xquery::{FlworQuery, ReturnExpr};

/// The predicate applied at an access pattern's target.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternPred {
    /// Value comparison against a literal.
    Compare(CmpOp, Literal),
    /// Structural existence.
    Exists,
}

impl PatternPred {
    /// The value kind the pattern constrains, if it is a comparison.
    pub fn value_kind(&self) -> Option<ValueKind> {
        match self {
            PatternPred::Compare(_, lit) => Some(ValueKind::of_literal(lit)),
            PatternPred::Exists => None,
        }
    }
}

/// An indexable access pattern of a statement: an absolute linear path to a
/// tested node plus the predicate on it.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPattern {
    /// Absolute path from the document root to the tested node.
    pub linear: LinearPath,
    /// Predicate at the target.
    pub pred: PatternPred,
}

impl AccessPattern {
    /// Whether an index of kind `kind` could evaluate this pattern.
    pub fn indexable_as(&self, kind: ValueKind) -> bool {
        self.pred.value_kind() == Some(kind)
    }
}

/// A statement reduced to its data-access structure, independent of the
/// surface language it was written in.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedQuery {
    /// The collection the statement reads.
    pub collection: String,
    /// Absolute linear path of the iterated/located element.
    pub root: LinearPath,
    /// All conjunctive access patterns (value comparisons and existence
    /// tests), in source order.
    pub patterns: Vec<AccessPattern>,
    /// Disjunctive predicate groups: each group is satisfied when *any*
    /// of its branch patterns is (index-ORing candidates).
    pub or_groups: Vec<Vec<AccessPattern>>,
    /// Absolute paths projected by the return clause.
    pub returns: Vec<LinearPath>,
    /// Whether the statement is a modification (affects how the advisor
    /// charges maintenance cost).
    pub is_modification: bool,
}

impl NormalizedQuery {
    /// Patterns that carry a value comparison (the indexable ones).
    pub fn compare_patterns(&self) -> impl Iterator<Item = &AccessPattern> {
        self.patterns
            .iter()
            .filter(|p| matches!(p.pred, PatternPred::Compare(..)))
    }
}

/// Normalizes a statement into its data-access structure. Returns `None`
/// for `Insert`, which reads nothing (its cost is pure storage work plus
/// index maintenance, handled separately).
pub fn normalize(stmt: &Statement) -> Option<NormalizedQuery> {
    match stmt {
        Statement::Query(q) => Some(normalize_flwor(q)),
        Statement::Insert { .. } => None,
        Statement::Delete { collection, target } => Some(normalize_target(collection, target)),
        Statement::Update {
            collection,
            target,
            set,
            ..
        } => {
            let mut n = normalize_target(collection, target);
            // The updated node is also written; record it as a return so the
            // optimizer accounts for locating it.
            n.returns.push(set.clone());
            Some(n)
        }
    }
}

fn normalize_flwor(q: &FlworQuery) -> NormalizedQuery {
    let root = q.source.strip_predicates();
    let mut patterns = Vec::new();
    let mut or_groups = Vec::new();
    collect_step_predicates(&q.source, &mut patterns, &mut or_groups);
    for cond in &q.conditions {
        let linear = root.join(&cond.rel);
        let pred = match &cond.cmp {
            Some((op, value)) => PatternPred::Compare(*op, value.clone()),
            None => PatternPred::Exists,
        };
        patterns.push(AccessPattern { linear, pred });
    }
    let mut returns: Vec<LinearPath> = q
        .returns
        .iter()
        .map(|r| match r {
            ReturnExpr::Var => root.clone(),
            ReturnExpr::Path(rel) => root.join(rel),
        })
        .collect();
    // An `order by` key must be retrieved for every result.
    if let Some(rel) = &q.order_by {
        returns.push(root.join(rel));
    }
    NormalizedQuery {
        collection: q.collection.clone(),
        root,
        patterns,
        or_groups,
        returns,
        is_modification: false,
    }
}

fn normalize_target(collection: &str, target: &PathExpr) -> NormalizedQuery {
    let root = target.strip_predicates();
    let mut patterns = Vec::new();
    let mut or_groups = Vec::new();
    collect_step_predicates(target, &mut patterns, &mut or_groups);
    NormalizedQuery {
        collection: collection.to_string(),
        root: root.clone(),
        patterns,
        or_groups,
        returns: vec![root],
        is_modification: true,
    }
}

/// Collects predicates attached at any step of a path expression, rewriting
/// each into an absolute access pattern rooted at that step's prefix.
/// Disjunctions land in `or_out` as branch groups.
fn collect_step_predicates(
    expr: &PathExpr,
    out: &mut Vec<AccessPattern>,
    or_out: &mut Vec<Vec<AccessPattern>>,
) {
    fn simple_pattern(prefix: &[LinearStep], pred: &Predicate) -> AccessPattern {
        let (rel, pp) = match pred {
            Predicate::Compare { rel, op, value } => {
                (rel, PatternPred::Compare(*op, value.clone()))
            }
            Predicate::Exists { rel } => (rel, PatternPred::Exists),
            Predicate::Or(_) => unreachable!("nested Or is never produced by the parser"),
        };
        let linear = LinearPath::new(prefix.to_vec()).join(rel);
        AccessPattern { linear, pred: pp }
    }
    let mut prefix: Vec<LinearStep> = Vec::new();
    for step in &expr.steps {
        prefix.push(LinearStep {
            axis: step.axis,
            test: step.test,
        });
        for pred in &step.predicates {
            match pred {
                Predicate::Or(branches) => {
                    or_out.push(
                        branches
                            .iter()
                            .map(|b| simple_pattern(&prefix, b))
                            .collect(),
                    );
                }
                _ => out.push(simple_pattern(&prefix, pred)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xquery::parse_statement;

    fn norm(s: &str) -> NormalizedQuery {
        normalize(&parse_statement(s).unwrap()).unwrap()
    }

    #[test]
    fn paper_q1_exposes_symbol_pattern() {
        let n = norm(
            r#"for $sec in SECURITY('SDOC')/Security
               where $sec/Symbol = "BCIIPRC"
               return $sec"#,
        );
        assert_eq!(n.root.to_string(), "/Security");
        assert_eq!(n.patterns.len(), 1);
        assert_eq!(n.patterns[0].linear.to_string(), "/Security/Symbol");
        assert!(n.patterns[0].indexable_as(ValueKind::Str));
        assert_eq!(n.returns, vec![n.root.clone()]);
    }

    #[test]
    fn paper_q2_exposes_yield_and_sector_patterns() {
        let n = norm(
            r#"for $sec in SECURITY('SDOC')/Security[Yield>4.5]
               where $sec/SecInfo/*/Sector = "Energy"
               return <Security>{$sec/Name}</Security>"#,
        );
        let pats: Vec<String> = n.patterns.iter().map(|p| p.linear.to_string()).collect();
        assert_eq!(pats, vec!["/Security/Yield", "/Security/SecInfo/*/Sector"]);
        assert!(n.patterns[0].indexable_as(ValueKind::Num));
        assert!(n.patterns[1].indexable_as(ValueKind::Str));
        assert_eq!(n.returns[0].to_string(), "/Security/Name");
    }

    #[test]
    fn nested_step_predicates_are_rooted_at_their_prefix() {
        let n = norm(r#"collection('C')/a/b[c/d = 3]/e[f]"#);
        let pats: Vec<String> = n.patterns.iter().map(|p| p.linear.to_string()).collect();
        assert_eq!(pats, vec!["/a/b/c/d", "/a/b/e/f"]);
        assert!(matches!(n.patterns[1].pred, PatternPred::Exists));
        assert_eq!(n.root.to_string(), "/a/b/e");
    }

    #[test]
    fn exists_patterns_are_not_compare_patterns() {
        let n = norm(r#"for $a in C('C')/a where $a/b and $a/c = 1 return $a"#);
        assert_eq!(n.patterns.len(), 2);
        assert_eq!(n.compare_patterns().count(), 1);
    }

    #[test]
    fn delete_and_update_are_modifications() {
        let d = norm(r#"delete from C where /a[b = 1]"#);
        assert!(d.is_modification);
        assert_eq!(d.patterns.len(), 1);
        let u = norm(r#"update C set /a/x = 9 where /a[b = 1]"#);
        assert!(u.is_modification);
        assert!(u.returns.iter().any(|r| r.to_string() == "/a/x"));
    }

    #[test]
    fn or_predicates_become_groups() {
        let n = norm(r#"collection('C')/a[b = 1 or c = "x" or d]"#);
        assert!(n.patterns.is_empty());
        assert_eq!(n.or_groups.len(), 1);
        let branches: Vec<String> = n.or_groups[0]
            .iter()
            .map(|p| p.linear.to_string())
            .collect();
        assert_eq!(branches, vec!["/a/b", "/a/c", "/a/d"]);
        assert!(matches!(n.or_groups[0][2].pred, PatternPred::Exists));
    }

    #[test]
    fn or_and_conjuncts_coexist() {
        let n = norm(r#"collection('C')/a[x = 1][b = 2 or c = 3]"#);
        assert_eq!(n.patterns.len(), 1);
        assert_eq!(n.or_groups.len(), 1);
        assert_eq!(n.or_groups[0].len(), 2);
    }

    #[test]
    fn insert_normalizes_to_none() {
        let s = parse_statement("insert into C <a/>").unwrap();
        assert!(normalize(&s).is_none());
    }

    #[test]
    fn descendant_axis_survives_normalization() {
        let n = norm(r#"for $a in C('C')//Security where $a//Sector = "x" return $a"#);
        assert_eq!(n.root.to_string(), "//Security");
        assert_eq!(n.patterns[0].linear.to_string(), "//Security//Sector");
    }
}
