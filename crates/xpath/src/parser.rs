//! Recursive-descent parser for XPath path expressions.

use crate::ast::{CmpOp, Literal, PathExpr, Predicate, Step};
use crate::lexer::{tokenize, Token};
use crate::linear::{Axis, LinearPath, LinearStep, NameTest};
use std::fmt;

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the offending token (input length for end-of-input).
    pub offset: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum number of steps in one path and of predicates on one step.
/// Downstream consumers (containment checks, index matching, plan
/// rendering) recurse or allocate per step, so hostile inputs with
/// hundreds of thousands of steps are rejected up front with a typed
/// error instead of risking stack or memory exhaustion deep in the
/// pipeline.
pub const MAX_PATH_STEPS: usize = 4096;

pub(crate) struct TokenCursor {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    input_len: usize,
}

impl TokenCursor {
    pub(crate) fn new(input: &str) -> Result<Self, ParseError> {
        let tokens = tokenize(input).map_err(|message| ParseError { offset: 0, message })?;
        Ok(Self {
            tokens,
            pos: 0,
            input_len: input.len(),
        })
    }

    pub(crate) fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    pub(crate) fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or(self.input_len)
    }

    pub(crate) fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    pub(crate) fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected `{want}`, found `{t}`"))),
            None => Err(self.err(format!("expected `{want}`, found end of input"))),
        }
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes a name token, failing otherwise.
    pub(crate) fn expect_name(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Name(_)) => {
                if let Some(Token::Name(n)) = self.next() {
                    Ok(n)
                } else {
                    unreachable!("peeked a name")
                }
            }
            Some(t) => Err(self.err(format!("expected a name, found `{t}`"))),
            None => Err(self.err("expected a name, found end of input")),
        }
    }
}

/// Parses a linear path (predicates rejected), e.g. `/Security/SecInfo/*`.
pub fn parse_linear_path(input: &str) -> Result<LinearPath, ParseError> {
    let mut cur = TokenCursor::new(input)?;
    let path = parse_linear_steps(&mut cur, /*absolute=*/ true)?;
    if !cur.at_end() {
        return Err(cur.err("trailing tokens after linear path"));
    }
    if path.is_empty() {
        return Err(cur.err("empty path"));
    }
    Ok(LinearPath::new(path))
}

/// Parses linear steps; if `absolute`, the first step must begin with an
/// axis token; otherwise a bare initial name is allowed (relative path).
pub(crate) fn parse_linear_steps(
    cur: &mut TokenCursor,
    absolute: bool,
) -> Result<Vec<LinearStep>, ParseError> {
    let mut steps = Vec::new();
    loop {
        let axis = match cur.peek() {
            Some(Token::Slash) => {
                cur.next();
                Axis::Child
            }
            Some(Token::DblSlash) => {
                cur.next();
                Axis::Descendant
            }
            Some(Token::Name(_)) | Some(Token::Star) if steps.is_empty() && !absolute => {
                Axis::Child
            }
            _ => break,
        };
        let test = match cur.peek() {
            Some(Token::Star) => {
                cur.next();
                NameTest::Wildcard
            }
            Some(Token::Name(_)) => NameTest::name_of(&cur.expect_name()?),
            _ => return Err(cur.err("expected a name test after axis")),
        };
        if steps.len() >= MAX_PATH_STEPS {
            return Err(cur.err(format!("path longer than {MAX_PATH_STEPS} steps")));
        }
        steps.push(LinearStep { axis, test });
    }
    Ok(steps)
}

/// Parses an absolute path expression with predicates, e.g.
/// `/Security[Yield>4.5]/SecInfo/*/Sector`.
pub fn parse_path_expr(input: &str) -> Result<PathExpr, ParseError> {
    let mut cur = TokenCursor::new(input)?;
    let expr = parse_path_expr_steps(&mut cur, true)?;
    if !cur.at_end() {
        return Err(cur.err("trailing tokens after path expression"));
    }
    if expr.steps.is_empty() {
        return Err(cur.err("empty path expression"));
    }
    Ok(expr)
}

/// Parses path-expression steps from the cursor (shared with the XQuery
/// parser, which encounters paths mid-statement).
pub(crate) fn parse_path_expr_steps(
    cur: &mut TokenCursor,
    absolute: bool,
) -> Result<PathExpr, ParseError> {
    let mut steps = Vec::new();
    loop {
        let axis = match cur.peek() {
            Some(Token::Slash) => {
                cur.next();
                Axis::Child
            }
            Some(Token::DblSlash) => {
                cur.next();
                Axis::Descendant
            }
            Some(Token::Name(_)) | Some(Token::Star) if steps.is_empty() && !absolute => {
                Axis::Child
            }
            _ => break,
        };
        let test = match cur.peek() {
            Some(Token::Star) => {
                cur.next();
                NameTest::Wildcard
            }
            Some(Token::Name(_)) => NameTest::name_of(&cur.expect_name()?),
            _ => return Err(cur.err("expected a name test after axis")),
        };
        let mut predicates = Vec::new();
        while cur.peek() == Some(&Token::LBracket) {
            if predicates.len() >= MAX_PATH_STEPS {
                return Err(cur.err(format!("more than {MAX_PATH_STEPS} predicates on one step")));
            }
            cur.next();
            predicates.push(parse_predicate(cur)?);
            cur.expect(&Token::RBracket)?;
        }
        if steps.len() >= MAX_PATH_STEPS {
            return Err(cur.err(format!("path longer than {MAX_PATH_STEPS} steps")));
        }
        steps.push(Step {
            axis,
            test,
            predicates,
        });
    }
    Ok(PathExpr { steps })
}

fn parse_predicate(cur: &mut TokenCursor) -> Result<Predicate, ParseError> {
    let first = parse_simple_predicate(cur)?;
    if !matches!(cur.peek(), Some(Token::Name(n)) if n.eq_ignore_ascii_case("or")) {
        return Ok(first);
    }
    let mut branches = vec![first];
    while matches!(cur.peek(), Some(Token::Name(n)) if n.eq_ignore_ascii_case("or")) {
        cur.next();
        branches.push(parse_simple_predicate(cur)?);
    }
    Ok(Predicate::Or(branches))
}

fn parse_simple_predicate(cur: &mut TokenCursor) -> Result<Predicate, ParseError> {
    // Optional leading `.` (context-node) — tokenized as Name(".")? Our
    // lexer folds `.` into names/numbers; a lone `.` lexes as a failed
    // number, so we accept an empty relative path implicitly when the next
    // token is an operator.
    let rel = if matches!(
        cur.peek(),
        Some(Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge)
    ) {
        Vec::new()
    } else {
        parse_linear_steps(cur, false)?
    };
    let op = match cur.peek() {
        Some(Token::Eq) => Some(CmpOp::Eq),
        Some(Token::Ne) => Some(CmpOp::Ne),
        Some(Token::Lt) => Some(CmpOp::Lt),
        Some(Token::Le) => Some(CmpOp::Le),
        Some(Token::Gt) => Some(CmpOp::Gt),
        Some(Token::Ge) => Some(CmpOp::Ge),
        _ => None,
    };
    match op {
        None => {
            if rel.is_empty() {
                Err(cur.err("empty predicate"))
            } else {
                Ok(Predicate::Exists { rel })
            }
        }
        Some(op) => {
            cur.next();
            let value = match cur.next() {
                Some(Token::Str(s)) => Literal::Str(s),
                Some(Token::Num(n)) => Literal::Num(n),
                Some(t) => return Err(cur.err(format!("expected a literal, found `{t}`"))),
                None => return Err(cur.err("expected a literal, found end of input")),
            };
            Ok(Predicate::Compare { rel, op, value })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_linear_paths() {
        let p = parse_linear_path("/Security/SecInfo/*/Sector").unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.to_string(), "/Security/SecInfo/*/Sector");
        let p = parse_linear_path("//Yield").unwrap();
        assert_eq!(p.steps[0].axis, Axis::Descendant);
    }

    #[test]
    fn rejects_predicates_in_linear_paths() {
        assert!(parse_linear_path("/a[b=1]").is_err());
    }

    #[test]
    fn rejects_empty_and_garbage() {
        assert!(parse_linear_path("").is_err());
        assert!(parse_linear_path("/a extra").is_err());
        assert!(parse_linear_path("/").is_err());
    }

    #[test]
    fn parses_compare_predicates() {
        let e = parse_path_expr("/Security[Yield>4.5]").unwrap();
        assert_eq!(e.steps.len(), 1);
        match &e.steps[0].predicates[0] {
            Predicate::Compare { rel, op, value } => {
                assert_eq!(rel.len(), 1);
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(*value, Literal::Num(4.5));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parses_string_predicates_with_wildcard_rel() {
        let e = parse_path_expr("/Security[SecInfo/*/Sector = \"Energy\"]").unwrap();
        match &e.steps[0].predicates[0] {
            Predicate::Compare { rel, value, .. } => {
                assert_eq!(rel.len(), 3);
                assert_eq!(*value, Literal::Str("Energy".into()));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parses_existence_predicates() {
        let e = parse_path_expr("/Security[SecInfo/StockInfo]").unwrap();
        assert!(matches!(&e.steps[0].predicates[0], Predicate::Exists { rel } if rel.len() == 2));
    }

    #[test]
    fn parses_multiple_predicates_and_descendant_rel() {
        let e = parse_path_expr("/a[b=1][//c>2]/d").unwrap();
        assert_eq!(e.steps[0].predicates.len(), 2);
        match &e.steps[0].predicates[1] {
            Predicate::Compare { rel, .. } => assert_eq!(rel[0].axis, Axis::Descendant),
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn error_offsets_are_reported() {
        let err = parse_path_expr("/a[b=]").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.message.contains("literal"));
    }

    #[test]
    fn parses_or_predicates() {
        let e = parse_path_expr(r#"/a[b = 1 or c = "x"]"#).unwrap();
        match &e.steps[0].predicates[0] {
            Predicate::Or(branches) => {
                assert_eq!(branches.len(), 2);
                assert!(matches!(
                    &branches[0],
                    Predicate::Compare { op: CmpOp::Eq, .. }
                ));
            }
            other => panic!("expected Or, got {other:?}"),
        }
        // Display round-trips.
        let printed = e.to_string();
        assert_eq!(parse_path_expr(&printed).unwrap(), e, "{printed}");
    }

    #[test]
    fn or_with_existence_branches() {
        let e = parse_path_expr("/a[b or c/d >= 2 or e]").unwrap();
        match &e.steps[0].predicates[0] {
            Predicate::Or(branches) => {
                assert_eq!(branches.len(), 3);
                assert!(matches!(&branches[0], Predicate::Exists { .. }));
                assert!(matches!(&branches[2], Predicate::Exists { .. }));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn or_needs_a_right_hand_side() {
        assert!(parse_path_expr("/a[b = 1 or]").is_err());
    }

    #[test]
    fn deep_paths_parse() {
        let s = format!(
            "/{}",
            (0..20)
                .map(|i| format!("n{i}"))
                .collect::<Vec<_>>()
                .join("/")
        );
        let p = parse_linear_path(&s).unwrap();
        assert_eq!(p.len(), 20);
    }

    #[test]
    fn hostile_step_count_is_rejected() {
        let s = "/a".repeat(MAX_PATH_STEPS + 1);
        let err = parse_linear_path(&s).unwrap_err();
        assert!(err.message.contains("longer than"), "{err}");
        let err = parse_path_expr(&s).unwrap_err();
        assert!(err.message.contains("longer than"), "{err}");
        // At the cap, both parsers accept.
        let ok = "/a".repeat(MAX_PATH_STEPS);
        assert!(parse_linear_path(&ok).is_ok());
    }

    #[test]
    fn hostile_predicate_count_is_rejected() {
        let s = format!("/a{}", "[b]".repeat(MAX_PATH_STEPS + 1));
        let err = parse_path_expr(&s).unwrap_err();
        assert!(err.message.contains("predicates"), "{err}");
    }

    #[test]
    fn hostile_lexer_input_errors_without_panicking() {
        // Unterminated strings, stray operator bytes, and multi-byte
        // characters must produce typed errors, never panics.
        for bad in [
            "\"unterminated",
            "'unterminated",
            "a ! b",
            "a : b",
            "$",
            "héllo",
            "\u{1F600}",
            "1e",
            "..5.5.",
        ] {
            assert!(parse_path_expr(bad).is_err(), "accepted {bad:?}");
        }
    }
}
