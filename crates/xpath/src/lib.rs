//! # xia-xpath
//!
//! The query-language frontend of the XML Index Advisor reproduction.
//!
//! * [`LinearPath`] — linear XPath path expressions (child/descendant axes,
//!   name tests, wildcards, **no predicates**). These are the paper's *index
//!   patterns* (Section III).
//! * [`contain`] — sound and complete containment (`covers`) between linear
//!   paths via NFA language inclusion, plus matching against concrete rooted
//!   label paths. The optimizer's *index matching* step is built on this.
//! * [`PathExpr`] — XPath path expressions *with* predicates at arbitrary
//!   steps, as allowed in workload queries.
//! * [`xquery`] — an XQuery-lite FLWOR parser sufficient for the paper's
//!   running example (Q1/Q2) and TPoX-style queries.
//! * [`Statement`] / [`normalize`] — workload statements
//!   (query/insert/delete/update) and their normalization into *access
//!   patterns*: the rewritten, indexable linear patterns the optimizer
//!   matches indexes against (this performs the query rewrites that expose
//!   candidates C1/C2 in the paper's Table I).

pub mod ast;
pub mod contain;
pub mod intern;
pub mod lexer;
pub mod linear;
pub mod normalize;
pub mod parser;
pub mod sqlxml;
pub mod statement;
pub mod template;
pub mod xquery;

pub use ast::{CmpOp, Literal, PathExpr, Predicate, Step};
pub use contain::{
    covers, CoverCache, CoverCacheStats, PathMatcher, PatternId, RelevanceMatrix,
    StatementSignature,
};
pub use intern::{intern, Sym};
pub use linear::{Axis, LinearPath, LinearStep, NameTest};
pub use normalize::{
    normalize as normalize_statement, AccessPattern, NormalizedQuery, PatternPred,
};
pub use parser::{parse_linear_path, parse_path_expr, ParseError, MAX_PATH_STEPS};
pub use sqlxml::parse_sqlxml;
pub use statement::{Statement, ValueKind};
pub use template::{fnv1a, template_fingerprint, template_key};
pub use xquery::{parse_statement, FlworQuery, ReturnExpr};
