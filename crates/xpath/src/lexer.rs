//! Token stream shared by the XPath and XQuery-lite parsers.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `/`
    Slash,
    /// `//`
    DblSlash,
    /// `*`
    Star,
    /// A name (element name or keyword; keywords are resolved by parsers).
    Name(String),
    /// `$name`
    Var(String),
    /// A quoted string literal (quotes stripped, entities not processed).
    Str(String),
    /// A numeric literal.
    Num(f64),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `,`
    Comma,
    /// `:=` (accepted, unused)
    Assign,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Slash => write!(f, "/"),
            Token::DblSlash => write!(f, "//"),
            Token::Star => write!(f, "*"),
            Token::Name(n) => write!(f, "{n}"),
            Token::Var(v) => write!(f, "${v}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Num(n) => write!(f, "{n}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Comma => write!(f, ","),
            Token::Assign => write!(f, ":="),
        }
    }
}

/// Tokenizes `input`. Returns tokens with their byte offsets.
pub fn tokenize(input: &str) -> Result<Vec<(usize, Token)>, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                pos += 1;
            }
            b'/' => {
                if bytes.get(pos + 1) == Some(&b'/') {
                    out.push((pos, Token::DblSlash));
                    pos += 2;
                } else {
                    out.push((pos, Token::Slash));
                    pos += 1;
                }
            }
            b'*' => {
                out.push((pos, Token::Star));
                pos += 1;
            }
            b'[' => {
                out.push((pos, Token::LBracket));
                pos += 1;
            }
            b']' => {
                out.push((pos, Token::RBracket));
                pos += 1;
            }
            b'(' => {
                out.push((pos, Token::LParen));
                pos += 1;
            }
            b')' => {
                out.push((pos, Token::RParen));
                pos += 1;
            }
            b'{' => {
                out.push((pos, Token::LBrace));
                pos += 1;
            }
            b'}' => {
                out.push((pos, Token::RBrace));
                pos += 1;
            }
            b',' => {
                out.push((pos, Token::Comma));
                pos += 1;
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push((pos, Token::Le));
                    pos += 2;
                } else {
                    out.push((pos, Token::Lt));
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push((pos, Token::Ge));
                    pos += 2;
                } else {
                    out.push((pos, Token::Gt));
                    pos += 1;
                }
            }
            b'=' => {
                out.push((pos, Token::Eq));
                pos += 1;
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push((pos, Token::Ne));
                    pos += 2;
                } else {
                    return Err(format!("unexpected `!` at byte {pos}"));
                }
            }
            b':' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push((pos, Token::Assign));
                    pos += 2;
                } else {
                    return Err(format!("unexpected `:` at byte {pos}"));
                }
            }
            b'$' => {
                let start = pos + 1;
                let mut end = start;
                while end < bytes.len() && is_name_byte(bytes[end]) {
                    end += 1;
                }
                if end == start {
                    return Err(format!("expected variable name at byte {pos}"));
                }
                out.push((pos, Token::Var(input[start..end].to_string())));
                pos = end;
            }
            b'"' | b'\'' => {
                let quote = c;
                let start = pos + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end] != quote {
                    end += 1;
                }
                if end == bytes.len() {
                    return Err(format!("unterminated string literal at byte {pos}"));
                }
                out.push((pos, Token::Str(input[start..end].to_string())));
                pos = end + 1;
            }
            b'0'..=b'9' | b'-' | b'+' | b'.' => {
                let start = pos;
                let mut end = pos + 1;
                while end < bytes.len()
                    && (bytes[end].is_ascii_digit()
                        || bytes[end] == b'.'
                        || bytes[end] == b'e'
                        || bytes[end] == b'E'
                        || ((bytes[end] == b'+' || bytes[end] == b'-')
                            && matches!(bytes[end - 1], b'e' | b'E')))
                {
                    end += 1;
                }
                let text = &input[start..end];
                let n: f64 = text
                    .parse()
                    .map_err(|_| format!("bad numeric literal `{text}` at byte {pos}"))?;
                out.push((pos, Token::Num(n)));
                pos = end;
            }
            _ if is_name_byte(c) => {
                let start = pos;
                let mut end = pos + 1;
                while end < bytes.len() && is_name_byte(bytes[end]) {
                    end += 1;
                }
                out.push((pos, Token::Name(input[start..end].to_string())));
                pos = end;
            }
            _ => {
                return Err(format!(
                    "unexpected character `{}` at byte {pos}",
                    c as char
                ))
            }
        }
    }
    Ok(out)
}

fn is_name_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_paths() {
        let toks: Vec<Token> = tokenize("/Security//*")
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(
            toks,
            vec![
                Token::Slash,
                Token::Name("Security".into()),
                Token::DblSlash,
                Token::Star
            ]
        );
    }

    #[test]
    fn tokenizes_predicates_and_operators() {
        let toks: Vec<Token> = tokenize("[Yield >= 4.5]")
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(
            toks,
            vec![
                Token::LBracket,
                Token::Name("Yield".into()),
                Token::Ge,
                Token::Num(4.5),
                Token::RBracket
            ]
        );
    }

    #[test]
    fn tokenizes_variables_and_strings() {
        let toks: Vec<Token> = tokenize("$sec/Symbol = \"BCIIPRC\"")
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(
            toks,
            vec![
                Token::Var("sec".into()),
                Token::Slash,
                Token::Name("Symbol".into()),
                Token::Eq,
                Token::Str("BCIIPRC".into())
            ]
        );
    }

    #[test]
    fn negative_numbers_and_exponents() {
        let toks: Vec<Token> = tokenize("-1.5e3")
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(toks, vec![Token::Num(-1500.0)]);
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn errors_on_stray_bang() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn single_quotes_accepted() {
        let toks: Vec<Token> = tokenize("'SDOC'")
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(toks, vec![Token::Str("SDOC".into())]);
    }
}
