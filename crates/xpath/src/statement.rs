//! Workload statements.

use crate::ast::{Literal, PathExpr};
use crate::linear::LinearPath;
use crate::xquery::FlworQuery;
use std::fmt;

/// The value type of an index or candidate — the paper's `string` vs
/// `numerical` column of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKind {
    /// String-typed keys.
    Str,
    /// Double-typed keys.
    Num,
}

impl ValueKind {
    /// Kind implied by a literal's type.
    pub fn of_literal(lit: &Literal) -> ValueKind {
        match lit {
            Literal::Str(_) => ValueKind::Str,
            Literal::Num(_) => ValueKind::Num,
        }
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ValueKind::Str => "string",
            ValueKind::Num => "numerical",
        })
    }
}

/// A workload statement: a query or a data-modification statement.
///
/// The advisor's benefit model (paper Section III) treats them uniformly:
/// queries contribute `freq · (cost_old − cost_new)`, modifications
/// additionally pay index-maintenance cost `mc(x, s)` per index.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// An XQuery-lite query.
    Query(FlworQuery),
    /// Insert a document (raw XML payload).
    Insert {
        /// Target collection.
        collection: String,
        /// The document text.
        xml: String,
    },
    /// Delete all documents whose root matches the target path expression.
    Delete {
        /// Target collection.
        collection: String,
        /// Path expression selecting victim documents.
        target: PathExpr,
    },
    /// Set the value of all nodes at `set` in matching documents.
    Update {
        /// Target collection.
        collection: String,
        /// Path expression selecting documents to update.
        target: PathExpr,
        /// Absolute path of the node whose value changes.
        set: LinearPath,
        /// The new value.
        value: Literal,
    },
}

impl Statement {
    /// The collection the statement touches.
    pub fn collection(&self) -> &str {
        match self {
            Statement::Query(q) => &q.collection,
            Statement::Insert { collection, .. }
            | Statement::Delete { collection, .. }
            | Statement::Update { collection, .. } => collection,
        }
    }

    /// Whether this is a data-modification statement.
    pub fn is_modification(&self) -> bool {
        !matches!(self, Statement::Query(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xquery::parse_statement;

    #[test]
    fn collection_accessor_works_for_all_kinds() {
        let q = parse_statement("for $s in S('A')/a return $s").unwrap();
        assert_eq!(q.collection(), "A");
        assert!(!q.is_modification());
        let i = parse_statement("insert into B <x/>").unwrap();
        assert_eq!(i.collection(), "B");
        assert!(i.is_modification());
        let d = parse_statement("delete from C where /x[y=1]").unwrap();
        assert_eq!(d.collection(), "C");
        let u = parse_statement("update D set /x/y = 2 where /x").unwrap();
        assert_eq!(u.collection(), "D");
        assert!(u.is_modification());
    }

    #[test]
    fn value_kind_of_literal() {
        assert_eq!(
            ValueKind::of_literal(&Literal::Str("x".into())),
            ValueKind::Str
        );
        assert_eq!(ValueKind::of_literal(&Literal::Num(1.0)), ValueKind::Num);
        assert_eq!(ValueKind::Str.to_string(), "string");
        assert_eq!(ValueKind::Num.to_string(), "numerical");
    }
}
