//! XQuery-lite: single-variable FLWOR expressions plus update statements.
//!
//! Grammar (enough for the paper's running example and TPoX-style queries):
//!
//! ```text
//! statement := flwor | path-query | insert | delete | update
//! flwor     := 'for' VAR 'in' source let* where? order-by? 'return' ret
//! let       := 'let' VAR ':=' VAR rel-path
//! where     := 'where' cond ('and' cond)*
//! order-by  := 'order' 'by' VAR rel-path ('ascending'|'descending')?
//! source    := NAME '(' STR ')' path-expr          -- e.g. SECURITY('SDOC')/Security[Yield>4.5]
//! cond      := VAR rel-path (op literal)?          -- comparison or existence
//! ret       := VAR rel-path? | '<' NAME '>' '{' item (',' item)* '}' '<' '/' NAME '>'
//! path-query:= NAME '(' STR ')' path-expr          -- plain XPath over a collection
//! insert    := 'insert' 'into' NAME raw-xml
//! delete    := 'delete' 'from' NAME 'where' path-expr
//! update    := 'update' NAME 'set' linear-path '=' literal 'where' path-expr
//! ```

use crate::ast::{CmpOp, Literal, PathExpr};
use crate::lexer::Token;
use crate::linear::{LinearPath, LinearStep};
use crate::parser::{parse_linear_steps, parse_path_expr_steps, ParseError, TokenCursor};
use crate::statement::Statement;

/// A `where`-clause condition: a relative path from the binding variable,
/// optionally compared to a literal (`None` = existence test).
#[derive(Debug, Clone, PartialEq)]
pub struct WhereCond {
    /// Relative path from the binding.
    pub rel: Vec<LinearStep>,
    /// Comparison, or `None` for an existence test.
    pub cmp: Option<(CmpOp, Literal)>,
}

/// A return-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnExpr {
    /// `return $v` — the whole bound element.
    Var,
    /// `return $v/rel` — a projected relative path.
    Path(Vec<LinearStep>),
}

/// A parsed FLWOR (or plain path) query.
#[derive(Debug, Clone, PartialEq)]
pub struct FlworQuery {
    /// Collection accessed (the argument of `NAME('...')`).
    pub collection: String,
    /// The binding variable name (`None` for a plain path query).
    pub var: Option<String>,
    /// The binding path expression, predicates included.
    pub source: PathExpr,
    /// `let` bindings: variable name → path relative to the `for` binding.
    /// References are expanded during parsing; kept for display/debugging.
    pub lets: Vec<(String, Vec<LinearStep>)>,
    /// Conjunctive `where` conditions.
    pub conditions: Vec<WhereCond>,
    /// `order by` path (relative to the binding), if present.
    pub order_by: Option<Vec<LinearStep>>,
    /// Returned items.
    pub returns: Vec<ReturnExpr>,
}

/// Parses one workload statement.
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let trimmed = input.trim();
    let lower = trimmed.to_ascii_lowercase();
    if lower.starts_with("insert") {
        return parse_insert(trimmed);
    }
    if lower.starts_with("delete") {
        return parse_delete(trimmed);
    }
    if lower.starts_with("update") {
        return parse_update(trimmed);
    }
    if lower.starts_with("select") {
        return Ok(Statement::Query(crate::sqlxml::parse_sqlxml(trimmed)?));
    }
    let mut cur = TokenCursor::new(trimmed)?;
    let q = if lower.starts_with("for") {
        parse_flwor(&mut cur)?
    } else {
        parse_path_query(&mut cur)?
    };
    if !cur.at_end() {
        return Err(cur.err("trailing tokens after statement"));
    }
    Ok(Statement::Query(q))
}

fn keyword(cur: &mut TokenCursor, kw: &str) -> Result<(), ParseError> {
    match cur.peek() {
        Some(Token::Name(n)) if n.eq_ignore_ascii_case(kw) => {
            cur.next();
            Ok(())
        }
        Some(t) => Err(cur.err(format!("expected keyword `{kw}`, found `{t}`"))),
        None => Err(cur.err(format!("expected keyword `{kw}`, found end of input"))),
    }
}

fn peek_keyword(cur: &TokenCursor, kw: &str) -> bool {
    matches!(cur.peek(), Some(Token::Name(n)) if n.eq_ignore_ascii_case(kw))
}

/// Parses `NAME '(' STR ')'` — the collection accessor, e.g.
/// `SECURITY('SDOC')` or `collection("orders")`.
fn parse_collection_accessor(cur: &mut TokenCursor) -> Result<String, ParseError> {
    cur.expect_name()?; // accessor function name; DB2 uses the table name
    cur.expect(&Token::LParen)?;
    let coll = match cur.next() {
        Some(Token::Str(s)) => s,
        Some(t) => return Err(cur.err(format!("expected collection name string, found `{t}`"))),
        None => return Err(cur.err("expected collection name string")),
    };
    cur.expect(&Token::RParen)?;
    Ok(coll)
}

fn parse_flwor(cur: &mut TokenCursor) -> Result<FlworQuery, ParseError> {
    keyword(cur, "for")?;
    let var = match cur.next() {
        Some(Token::Var(v)) => v,
        Some(t) => return Err(cur.err(format!("expected `$var`, found `{t}`"))),
        None => return Err(cur.err("expected `$var`")),
    };
    keyword(cur, "in")?;
    let collection = parse_collection_accessor(cur)?;
    let source = parse_path_expr_steps(cur, true)?;
    if source.steps.is_empty() {
        return Err(cur.err("binding path must have at least one step"));
    }

    // `let $x := $v/rel` bindings; later references to $x expand inline.
    let mut scope = Scope::new(&var);
    while peek_keyword(cur, "let") {
        cur.next();
        let name = match cur.next() {
            Some(Token::Var(v)) => v,
            Some(t) => return Err(cur.err(format!("expected `$var` after let, found `{t}`"))),
            None => return Err(cur.err("expected `$var` after let")),
        };
        cur.expect(&Token::Assign)?;
        let rel = parse_var_path(cur, &scope)?;
        scope.bind(&name, rel);
    }

    let mut conditions = Vec::new();
    if peek_keyword(cur, "where") {
        cur.next();
        loop {
            conditions.push(parse_condition(cur, &scope)?);
            if peek_keyword(cur, "and") {
                cur.next();
            } else {
                break;
            }
        }
    }

    let mut order_by = None;
    if peek_keyword(cur, "order") {
        cur.next();
        keyword(cur, "by")?;
        let rel = parse_var_path(cur, &scope)?;
        if peek_keyword(cur, "ascending") || peek_keyword(cur, "descending") {
            cur.next();
        }
        order_by = Some(rel);
    }

    keyword(cur, "return")?;
    let returns = parse_return(cur, &scope)?;
    Ok(FlworQuery {
        collection,
        var: Some(var),
        source,
        lets: scope.lets,
        conditions,
        order_by,
        returns,
    })
}

/// Variable scope: the `for` variable plus `let` aliases, each resolving
/// to a path relative to the `for` binding.
struct Scope {
    for_var: String,
    lets: Vec<(String, Vec<LinearStep>)>,
}

impl Scope {
    fn new(for_var: &str) -> Self {
        Self {
            for_var: for_var.to_string(),
            lets: Vec::new(),
        }
    }

    fn bind(&mut self, name: &str, rel: Vec<LinearStep>) {
        self.lets.push((name.to_string(), rel));
    }

    /// Prefix steps for a variable reference, or `None` if unknown.
    fn resolve(&self, name: &str) -> Option<Vec<LinearStep>> {
        if name == self.for_var {
            return Some(Vec::new());
        }
        self.lets
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, rel)| rel.clone())
    }
}

/// Parses `$var rel-path?` and resolves it against the scope into a path
/// relative to the `for` binding.
fn parse_var_path(cur: &mut TokenCursor, scope: &Scope) -> Result<Vec<LinearStep>, ParseError> {
    let name = match cur.next() {
        Some(Token::Var(v)) => v,
        Some(t) => return Err(cur.err(format!("expected a variable, found `{t}`"))),
        None => return Err(cur.err("expected a variable")),
    };
    let Some(mut prefix) = scope.resolve(&name) else {
        return Err(cur.err(format!("unknown variable `${name}`")));
    };
    prefix.extend(parse_linear_steps(cur, true)?);
    Ok(prefix)
}

fn parse_condition(cur: &mut TokenCursor, scope: &Scope) -> Result<WhereCond, ParseError> {
    let rel = parse_var_path(cur, scope)?;
    let cmp = match cur.peek() {
        Some(Token::Eq) => Some(CmpOp::Eq),
        Some(Token::Ne) => Some(CmpOp::Ne),
        Some(Token::Lt) => Some(CmpOp::Lt),
        Some(Token::Le) => Some(CmpOp::Le),
        Some(Token::Gt) => Some(CmpOp::Gt),
        Some(Token::Ge) => Some(CmpOp::Ge),
        _ => None,
    };
    let cmp = match cmp {
        Some(op) => {
            cur.next();
            let value = match cur.next() {
                Some(Token::Str(s)) => Literal::Str(s),
                Some(Token::Num(n)) => Literal::Num(n),
                Some(t) => return Err(cur.err(format!("expected a literal, found `{t}`"))),
                None => return Err(cur.err("expected a literal")),
            };
            Some((op, value))
        }
        None => {
            if rel.is_empty() {
                return Err(cur.err("a bare `$var` is not a condition"));
            }
            None
        }
    };
    Ok(WhereCond { rel, cmp })
}

fn parse_return(cur: &mut TokenCursor, scope: &Scope) -> Result<Vec<ReturnExpr>, ParseError> {
    match cur.peek() {
        // Element constructor: <Name>{ $v/p, $v/q }</Name>
        Some(Token::Lt) => {
            cur.next();
            let open = cur.expect_name()?;
            cur.expect(&Token::Gt)?;
            cur.expect(&Token::LBrace)?;
            let mut items = Vec::new();
            loop {
                items.push(parse_return_item(cur, scope)?);
                if cur.peek() == Some(&Token::Comma) {
                    cur.next();
                } else {
                    break;
                }
            }
            cur.expect(&Token::RBrace)?;
            cur.expect(&Token::Lt)?;
            cur.expect(&Token::Slash)?;
            let close = cur.expect_name()?;
            if close != open {
                return Err(cur.err(format!(
                    "mismatched constructor tags `<{open}>` vs `</{close}>`"
                )));
            }
            cur.expect(&Token::Gt)?;
            Ok(items)
        }
        _ => Ok(vec![parse_return_item(cur, scope)?]),
    }
}

fn parse_return_item(cur: &mut TokenCursor, scope: &Scope) -> Result<ReturnExpr, ParseError> {
    let rel = parse_var_path(cur, scope)?;
    if rel.is_empty() {
        Ok(ReturnExpr::Var)
    } else {
        Ok(ReturnExpr::Path(rel))
    }
}

fn parse_path_query(cur: &mut TokenCursor) -> Result<FlworQuery, ParseError> {
    let collection = parse_collection_accessor(cur)?;
    let source = parse_path_expr_steps(cur, true)?;
    if source.steps.is_empty() {
        return Err(cur.err("path query must have at least one step"));
    }
    Ok(FlworQuery {
        collection,
        var: None,
        source,
        lets: Vec::new(),
        conditions: Vec::new(),
        order_by: None,
        returns: vec![ReturnExpr::Var],
    })
}

fn parse_insert(input: &str) -> Result<Statement, ParseError> {
    // insert into NAME <xml...>
    let lt = input.find('<').ok_or(ParseError {
        offset: input.len(),
        message: "insert statement needs an XML payload".into(),
    })?;
    let (head, xml) = input.split_at(lt);
    let mut cur = TokenCursor::new(head)?;
    keyword(&mut cur, "insert")?;
    keyword(&mut cur, "into")?;
    let collection = cur.expect_name()?;
    if !cur.at_end() {
        return Err(cur.err("unexpected tokens before XML payload"));
    }
    Ok(Statement::Insert {
        collection,
        xml: xml.trim().to_string(),
    })
}

fn parse_delete(input: &str) -> Result<Statement, ParseError> {
    // delete from NAME where /path[pred]
    let mut cur = TokenCursor::new(input)?;
    keyword(&mut cur, "delete")?;
    keyword(&mut cur, "from")?;
    let collection = cur.expect_name()?;
    keyword(&mut cur, "where")?;
    let target = parse_path_expr_steps(&mut cur, true)?;
    if target.steps.is_empty() {
        return Err(cur.err("delete needs a target path"));
    }
    if !cur.at_end() {
        return Err(cur.err("trailing tokens after delete statement"));
    }
    Ok(Statement::Delete { collection, target })
}

fn parse_update(input: &str) -> Result<Statement, ParseError> {
    // update NAME set /path = literal where /path[pred]
    let mut cur = TokenCursor::new(input)?;
    keyword(&mut cur, "update")?;
    let collection = cur.expect_name()?;
    keyword(&mut cur, "set")?;
    let set_steps = parse_linear_steps(&mut cur, true)?;
    if set_steps.is_empty() {
        return Err(cur.err("update needs a set path"));
    }
    cur.expect(&Token::Eq)?;
    let value = match cur.next() {
        Some(Token::Str(s)) => Literal::Str(s),
        Some(Token::Num(n)) => Literal::Num(n),
        Some(t) => return Err(cur.err(format!("expected a literal, found `{t}`"))),
        None => return Err(cur.err("expected a literal")),
    };
    keyword(&mut cur, "where")?;
    let target = parse_path_expr_steps(&mut cur, true)?;
    if target.steps.is_empty() {
        return Err(cur.err("update needs a target path"));
    }
    if !cur.at_end() {
        return Err(cur.err("trailing tokens after update statement"));
    }
    Ok(Statement::Update {
        collection,
        target,
        set: LinearPath::new(set_steps),
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Predicate;

    /// The paper's Q1.
    const Q1: &str = r#"
        for $sec in SECURITY('SDOC')/Security
        where $sec/Symbol = "BCIIPRC"
        return $sec
    "#;

    /// The paper's Q2.
    const Q2: &str = r#"
        for $sec in SECURITY('SDOC')/Security[Yield>4.5]
        where $sec/SecInfo/*/Sector = "Energy"
        return <Security>{$sec/Name}</Security>
    "#;

    #[test]
    fn parses_paper_q1() {
        let Statement::Query(q) = parse_statement(Q1).unwrap() else {
            panic!("expected query");
        };
        assert_eq!(q.collection, "SDOC");
        assert_eq!(q.var.as_deref(), Some("sec"));
        assert_eq!(q.source.to_string(), "/Security");
        assert_eq!(q.conditions.len(), 1);
        assert_eq!(q.conditions[0].cmp.as_ref().unwrap().0, CmpOp::Eq);
        assert_eq!(q.returns, vec![ReturnExpr::Var]);
    }

    #[test]
    fn parses_paper_q2() {
        let Statement::Query(q) = parse_statement(Q2).unwrap() else {
            panic!("expected query");
        };
        assert_eq!(q.source.steps[0].predicates.len(), 1);
        assert!(matches!(
            &q.source.steps[0].predicates[0],
            Predicate::Compare { op: CmpOp::Gt, .. }
        ));
        assert_eq!(q.conditions.len(), 1);
        assert_eq!(q.conditions[0].rel.len(), 3);
        assert_eq!(q.returns.len(), 1);
        assert!(matches!(&q.returns[0], ReturnExpr::Path(p) if p.len() == 1));
    }

    #[test]
    fn parses_conjunctive_where() {
        let s = r#"for $o in ORDERS('ODOC')/Order
                   where $o/Symbol = "IBM" and $o/Quantity >= 100 and $o/Payment
                   return $o/Price"#;
        let Statement::Query(q) = parse_statement(s).unwrap() else {
            panic!()
        };
        assert_eq!(q.conditions.len(), 3);
        assert!(q.conditions[2].cmp.is_none()); // existence
    }

    #[test]
    fn parses_plain_path_query() {
        let Statement::Query(q) =
            parse_statement(r#"collection("SDOC")/Security[Yield > 4.5]/Name"#).unwrap()
        else {
            panic!()
        };
        assert_eq!(q.collection, "SDOC");
        assert!(q.var.is_none());
        assert_eq!(q.source.strip_predicates().to_string(), "/Security/Name");
    }

    #[test]
    fn parses_constructor_with_multiple_items() {
        let s = r#"for $s in SECURITY('SDOC')/Security
                   return <Out>{$s/Name, $s/Symbol}</Out>"#;
        let Statement::Query(q) = parse_statement(s).unwrap() else {
            panic!()
        };
        assert_eq!(q.returns.len(), 2);
    }

    #[test]
    fn rejects_unknown_variables() {
        let s = r#"for $a in X('C')/a where $b/x = 1 return $a"#;
        let err = parse_statement(s).unwrap_err();
        assert!(err.message.contains("unknown variable"), "{err}");
    }

    #[test]
    fn rejects_mismatched_constructor() {
        let s = r#"for $a in X('C')/a return <X>{$a/b}</Y>"#;
        assert!(parse_statement(s).is_err());
    }

    #[test]
    fn parses_insert() {
        let s = r#"insert into SDOC <Security><Symbol>IBM</Symbol></Security>"#;
        let Statement::Insert { collection, xml } = parse_statement(s).unwrap() else {
            panic!()
        };
        assert_eq!(collection, "SDOC");
        assert!(xml.starts_with("<Security>"));
    }

    #[test]
    fn parses_delete() {
        let s = r#"delete from SDOC where /Security[Symbol = "IBM"]"#;
        let Statement::Delete { collection, target } = parse_statement(s).unwrap() else {
            panic!()
        };
        assert_eq!(collection, "SDOC");
        assert_eq!(target.predicate_count(), 1);
    }

    #[test]
    fn parses_update() {
        let s = r#"update SDOC set /Security/Yield = 5.0 where /Security[Symbol = "IBM"]"#;
        let Statement::Update { set, value, .. } = parse_statement(s).unwrap() else {
            panic!()
        };
        assert_eq!(set.to_string(), "/Security/Yield");
        assert_eq!(value, Literal::Num(5.0));
    }

    #[test]
    fn insert_without_payload_errors() {
        assert!(parse_statement("insert into SDOC").is_err());
    }

    #[test]
    fn let_bindings_expand_in_conditions_and_returns() {
        let s = r#"for $s in SECURITY('SDOC')/Security
                   let $info := $s/SecInfo/StockInfo
                   where $info/Sector = "Energy"
                   return $info/Industry"#;
        let Statement::Query(q) = parse_statement(s).unwrap() else {
            panic!()
        };
        assert_eq!(q.lets.len(), 1);
        // Condition path expanded: SecInfo/StockInfo/Sector.
        assert_eq!(q.conditions[0].rel.len(), 3);
        assert!(matches!(&q.returns[0], ReturnExpr::Path(p) if p.len() == 3));
    }

    #[test]
    fn let_bindings_chain() {
        let s = r#"for $s in C('C')/a
                   let $b := $s/b
                   let $c := $b/c
                   where $c/d = 1
                   return $s"#;
        let Statement::Query(q) = parse_statement(s).unwrap() else {
            panic!()
        };
        assert_eq!(q.conditions[0].rel.len(), 3); // b/c/d
    }

    #[test]
    fn order_by_is_parsed_with_optional_direction() {
        for dir in ["", " ascending", " descending"] {
            let s = format!(r#"for $s in C('C')/a where $s/b = 1 order by $s/x{dir} return $s/b"#);
            let Statement::Query(q) = parse_statement(&s).unwrap() else {
                panic!()
            };
            assert_eq!(q.order_by.as_ref().unwrap().len(), 1, "{s}");
        }
    }

    #[test]
    fn unknown_let_variable_errors() {
        let s = r#"for $a in C('C')/a let $x := $zzz/b return $a"#;
        assert!(parse_statement(s).is_err());
    }

    #[test]
    fn normalized_order_by_appears_in_returns() {
        let s = r#"for $s in C('C')/a where $s/b = 1 order by $s/k return $s/b"#;
        let stmt = parse_statement(s).unwrap();
        let n = crate::normalize::normalize(&stmt).unwrap();
        assert!(n.returns.iter().any(|r| r.to_string() == "/a/k"));
    }
}
