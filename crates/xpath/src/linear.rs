//! Linear XPath path expressions — the paper's index patterns.
//!
//! A linear path is a sequence of steps, each with a child (`/`) or
//! descendant (`//`) axis and a name test that is either a concrete label or
//! the wildcard `*`. Examples from the paper's Table I:
//! `/Security/Symbol`, `/Security/SecInfo/*/Sector`, `/Security//*`.
//!
//! Concrete names are interned ([`crate::intern::Sym`]), so steps are
//! `Copy`, comparisons are integer-sized, and each path exposes a
//! precomputed-in-one-pass 64-bit [`LinearPath::signature`] plus a
//! bloom-style [`LinearPath::name_mask`] used by the containment layer's
//! fast reject.

use crate::intern::{intern, Sym};
use std::cmp::Ordering;
use std::fmt;

/// Navigation axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// `/` — immediate child.
    Child,
    /// `//` — any descendant.
    Descendant,
}

/// Name test of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NameTest {
    /// A concrete element/attribute name (interned).
    Name(Sym),
    /// The wildcard `*`.
    Wildcard,
}

impl NameTest {
    /// Builds a concrete name test, interning the name.
    pub fn name_of(name: &str) -> Self {
        NameTest::Name(intern(name))
    }

    /// Whether this test accepts the given label.
    pub fn accepts(&self, label: &str) -> bool {
        match self {
            NameTest::Name(n) => n.as_str() == label,
            NameTest::Wildcard => true,
        }
    }

    /// The concrete name, if not a wildcard.
    pub fn name(&self) -> Option<&'static str> {
        match self {
            NameTest::Name(n) => Some(n.as_str()),
            NameTest::Wildcard => None,
        }
    }

    /// The interned symbol, if not a wildcard.
    pub fn sym(&self) -> Option<Sym> {
        match self {
            NameTest::Name(n) => Some(*n),
            NameTest::Wildcard => None,
        }
    }
}

// Ordering is by the *resolved text* (with `Name < Wildcard`, the
// declaration order), not by symbol id: symbol ids reflect interning
// order, which varies run to run, while every canonically sorted output
// (generalization results, candidate orderings) must match the ordering
// the pre-interning `Name(String)` derive produced byte for byte.
impl Ord for NameTest {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (NameTest::Name(a), NameTest::Name(b)) => a.as_str().cmp(b.as_str()),
            (NameTest::Name(_), NameTest::Wildcard) => Ordering::Less,
            (NameTest::Wildcard, NameTest::Name(_)) => Ordering::Greater,
            (NameTest::Wildcard, NameTest::Wildcard) => Ordering::Equal,
        }
    }
}

impl PartialOrd for NameTest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One step of a linear path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinearStep {
    /// `/` or `//`.
    pub axis: Axis,
    /// Label or `*`.
    pub test: NameTest,
}

impl LinearStep {
    /// Child-axis step with a concrete name.
    pub fn child(name: &str) -> Self {
        Self {
            axis: Axis::Child,
            test: NameTest::name_of(name),
        }
    }

    /// Descendant-axis step with a concrete name.
    pub fn descendant(name: &str) -> Self {
        Self {
            axis: Axis::Descendant,
            test: NameTest::name_of(name),
        }
    }

    /// Child-axis wildcard step (`/*`).
    pub fn child_wild() -> Self {
        Self {
            axis: Axis::Child,
            test: NameTest::Wildcard,
        }
    }

    /// Descendant-axis wildcard step (`//*`).
    pub fn descendant_wild() -> Self {
        Self {
            axis: Axis::Descendant,
            test: NameTest::Wildcard,
        }
    }
}

/// A linear XPath path expression without predicates: an index pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct LinearPath {
    /// The steps, in order from the root.
    pub steps: Vec<LinearStep>,
}

// Hashing feeds the 64-bit path signature instead of walking the steps
// again, so every hash-based dedup of paths (generalization results, pair
// memos, candidate keys) runs off the same precomputable fingerprint.
// Equal paths produce equal signatures by construction.
impl std::hash::Hash for LinearPath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.signature());
    }
}

impl LinearPath {
    /// Creates a path from steps.
    pub fn new(steps: Vec<LinearStep>) -> Self {
        Self { steps }
    }

    /// The universal index pattern `//*` that (virtually) indexes every
    /// element — the paper's Enumerate-Indexes virtual index.
    pub fn universal() -> Self {
        Self {
            steps: vec![LinearStep::descendant_wild()],
        }
    }

    /// Builds a child-axis-only path from concrete labels.
    pub fn from_labels<'a>(labels: impl IntoIterator<Item = &'a str>) -> Self {
        Self {
            steps: labels.into_iter().map(LinearStep::child).collect(),
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The final (target) step — the nodes this pattern indexes.
    pub fn last_step(&self) -> Option<&LinearStep> {
        self.steps.last()
    }

    /// Appends another relative linear path, returning the concatenation.
    pub fn join(&self, rel: &[LinearStep]) -> LinearPath {
        let mut steps = self.steps.clone();
        steps.extend(rel.iter().copied());
        LinearPath { steps }
    }

    /// Whether the path uses only child axes and concrete names (a fully
    /// *specific* pattern that matches exactly one rooted label path).
    pub fn is_specific(&self) -> bool {
        self.steps
            .iter()
            .all(|s| s.axis == Axis::Child && s.test != NameTest::Wildcard)
    }

    /// Whether any step uses `//` or `*` (a *general* pattern).
    pub fn is_general(&self) -> bool {
        !self.is_specific()
    }

    /// Matches this pattern against a concrete rooted label sequence.
    ///
    /// Dynamic programming over (steps × labels); the pattern denotes the
    /// regular expression obtained by mapping `/l` to `l`, `//l` to `Σ* l`,
    /// `/*` to `Σ` and `//*` to `Σ* Σ`.
    pub fn matches_labels(&self, labels: &[&str]) -> bool {
        // cur[j] = the first j labels can be consumed by the steps so far.
        let n = labels.len();
        let mut cur = vec![false; n + 1];
        cur[0] = true;
        let mut next = vec![false; n + 1];
        for step in &self.steps {
            next.iter_mut().for_each(|b| *b = false);
            match step.axis {
                Axis::Child => {
                    for j in 1..=n {
                        next[j] = cur[j - 1] && step.test.accepts(labels[j - 1]);
                    }
                }
                Axis::Descendant => {
                    // prefix-OR of cur gives "reachable with Σ*".
                    let mut reach = false;
                    for j in 1..=n {
                        reach |= cur[j - 1];
                        next[j] = reach && step.test.accepts(labels[j - 1]);
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur[n]
    }

    /// Applies the paper's Rule 0 rewrite: any *middle* `/*` (or `//*`) step
    /// is removed and the following step's axis becomes `//`. E.g. both
    /// `/a/*/b` and `/a/*/*/b` rewrite to `/a//b`. The final step is never
    /// rewritten (it is the indexing target).
    pub fn rewrite_rule0(&self) -> LinearPath {
        let mut steps: Vec<LinearStep> = Vec::with_capacity(self.steps.len());
        let mut pending_descendant = false;
        for (i, step) in self.steps.iter().enumerate() {
            let is_last = i + 1 == self.steps.len();
            if !is_last && step.test == NameTest::Wildcard {
                // Drop the middle wildcard; the next kept step becomes `//`.
                pending_descendant = true;
                continue;
            }
            let mut s = *step;
            if pending_descendant || s.axis == Axis::Descendant {
                s.axis = Axis::Descendant;
            }
            steps.push(s);
            pending_descendant = false;
        }
        LinearPath { steps }
    }

    /// Iterates the concrete names used in the pattern, in step order,
    /// without allocating (wildcards are skipped; repeats are not deduped).
    pub fn names_iter(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.steps.iter().filter_map(|s| s.test.name())
    }

    /// Iterates the interned symbols of the concrete names, in step order.
    pub fn syms(&self) -> impl Iterator<Item = Sym> + '_ {
        self.steps.iter().filter_map(|s| s.test.sym())
    }

    /// A 64-bit structural fingerprint of the path: a splitmix-style fold
    /// over each step's axis and name symbol. Equal paths always produce
    /// equal signatures; distinct paths collide with probability ~2⁻⁶⁴.
    /// One O(len) pass, no allocation — this is what [`LinearPath`]'s
    /// `Hash` feeds into hash-based dedup.
    pub fn signature(&self) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ (self.steps.len() as u64);
        for step in &self.steps {
            let code = match step.test {
                // Ids start at 0, so offset by 2 to keep the wildcard and
                // axis codes out of the symbol range.
                NameTest::Name(s) => u64::from(s.id()) + 2,
                NameTest::Wildcard => 1,
            };
            let axis = match step.axis {
                Axis::Child => 0u64,
                Axis::Descendant => 1u64,
            };
            let mut z = h ^ (code << 1 | axis).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h = z ^ (z >> 31);
        }
        h
    }

    /// Bloom-style mask of the concrete names mentioned by the pattern:
    /// bit `sym.id() % 64` set per name, wildcards contribute nothing.
    /// Used by the containment fast reject — if `general` sets a bit that
    /// `specific` does not, `general` mentions a name `specific` never
    /// matches, so containment is impossible (see `contain`).
    pub fn name_mask(&self) -> u64 {
        self.syms().fold(0u64, |m, s| m | (1u64 << (s.id() % 64)))
    }
}

impl fmt::Display for LinearPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return f.write_str("/");
        }
        for step in &self.steps {
            f.write_str(match step.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            })?;
            match &step.test {
                NameTest::Name(n) => f.write_str(n.as_str())?,
                NameTest::Wildcard => f.write_str("*")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_linear_path;

    fn lp(s: &str) -> LinearPath {
        parse_linear_path(s).expect("parse")
    }

    #[test]
    fn display_round_trips() {
        for s in ["/Security/Symbol", "/Security//*", "/a/*/b", "//Yield"] {
            assert_eq!(lp(s).to_string(), s);
        }
    }

    #[test]
    fn matches_child_axis_exactly() {
        let p = lp("/Security/Yield");
        assert!(p.matches_labels(&["Security", "Yield"]));
        assert!(!p.matches_labels(&["Security", "SecInfo", "Yield"]));
        assert!(!p.matches_labels(&["Security"]));
    }

    #[test]
    fn matches_descendant_axis_at_any_depth() {
        let p = lp("//Yield");
        assert!(p.matches_labels(&["Yield"]));
        assert!(p.matches_labels(&["Security", "Yield"]));
        assert!(p.matches_labels(&["a", "b", "c", "Yield"]));
        assert!(!p.matches_labels(&["Yield", "x"]));
    }

    #[test]
    fn matches_wildcards() {
        let p = lp("/Security/*/Sector");
        assert!(p.matches_labels(&["Security", "StockInfo", "Sector"]));
        assert!(!p.matches_labels(&["Security", "Sector"]));
        let u = LinearPath::universal();
        assert!(u.matches_labels(&["anything"]));
        assert!(u.matches_labels(&["a", "b", "c"]));
        assert!(!u.matches_labels(&[]));
    }

    #[test]
    fn matches_mixed_descendant_and_child() {
        let p = lp("/Security//Sector");
        assert!(p.matches_labels(&["Security", "Sector"]));
        assert!(p.matches_labels(&["Security", "SecInfo", "StockInfo", "Sector"]));
        assert!(!p.matches_labels(&["Order", "Sector"]));
    }

    #[test]
    fn rewrite_rule0_examples_from_paper() {
        // Table II Rule 0: /a/*/b -> /a//b and /a/*/*/b -> /a//b.
        assert_eq!(lp("/a/*/b").rewrite_rule0().to_string(), "/a//b");
        assert_eq!(lp("/a/*/*/b").rewrite_rule0().to_string(), "/a//b");
        // Trailing wildcard is the target and is preserved: /Security/*/* -> /Security//*.
        assert_eq!(
            lp("/Security/*/*").rewrite_rule0().to_string(),
            "/Security//*"
        );
        // No middle wildcard: unchanged.
        assert_eq!(lp("/a/b/c").rewrite_rule0().to_string(), "/a/b/c");
    }

    #[test]
    fn rewrite_rule0_preserves_language_on_samples() {
        let cases = [
            (
                "/a/*/b",
                vec![vec!["a", "x", "b"], vec!["a", "x", "y", "b"]],
            ),
            ("/a/*/*/b", vec![vec!["a", "x", "y", "b"]]),
        ];
        for (pat, samples) in cases {
            let orig = lp(pat);
            let rewritten = orig.rewrite_rule0();
            for s in samples {
                if orig.matches_labels(&s) {
                    assert!(rewritten.matches_labels(&s), "{pat} lost {s:?}");
                }
            }
        }
    }

    #[test]
    fn specific_vs_general() {
        assert!(lp("/Security/Symbol").is_specific());
        assert!(!lp("/Security//*").is_specific());
        assert!(!lp("/Security/*/Sector").is_specific());
        assert!(lp("/Security//*").is_general());
    }

    #[test]
    fn join_concatenates() {
        let base = lp("/Security");
        let joined = base.join(&[LinearStep::child("SecInfo"), LinearStep::child_wild()]);
        assert_eq!(joined.to_string(), "/Security/SecInfo/*");
    }

    #[test]
    fn names_iter_walks_concrete_names_in_step_order() {
        let names: Vec<&str> = lp("/b/a//b/*").names_iter().collect();
        assert_eq!(names, vec!["b", "a", "b"]);
        assert_eq!(lp("//*").names_iter().count(), 0);
    }

    #[test]
    fn ordering_matches_name_text_not_symbol_id() {
        // Intern in reverse-lexicographic order so symbol ids disagree
        // with text order; Ord must still sort by text.
        let z = lp("/zzz_ord_probe");
        let a = lp("/aaa_ord_probe");
        assert!(a < z, "paths must order by name text");
        assert!(NameTest::name_of("aaa_ord_probe") < NameTest::name_of("zzz_ord_probe"));
        assert!(NameTest::name_of("zzz_ord_probe") < NameTest::Wildcard);
    }

    #[test]
    fn signature_distinguishes_structure() {
        // Equal paths → equal signature (also via separate parses).
        assert_eq!(lp("/a/b/c").signature(), lp("/a/b/c").signature());
        // Axis, name, and length changes all perturb it.
        let sigs = [
            lp("/a/b").signature(),
            lp("/a//b").signature(),
            lp("/a/c").signature(),
            lp("/a/b/c").signature(),
            lp("/a/*").signature(),
            lp("//a/b").signature(),
        ];
        let mut dedup = sigs.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sigs.len(), "signature collision: {sigs:?}");
    }

    #[test]
    fn name_mask_covers_mentioned_names_only() {
        let p = lp("/a/b//c/*");
        let mask = p.name_mask();
        for s in p.syms() {
            assert_ne!(mask & (1 << (s.id() % 64)), 0);
        }
        assert_eq!(lp("//*").name_mask(), 0, "wildcards contribute no bits");
        // Subpath masks are subsets.
        assert_eq!(lp("/a/b").name_mask() & !mask, 0);
    }

    #[test]
    fn empty_path_matches_only_empty() {
        let p = LinearPath::default();
        assert!(p.matches_labels(&[]));
        assert!(!p.matches_labels(&["a"]));
    }
}
