//! Linear XPath path expressions — the paper's index patterns.
//!
//! A linear path is a sequence of steps, each with a child (`/`) or
//! descendant (`//`) axis and a name test that is either a concrete label or
//! the wildcard `*`. Examples from the paper's Table I:
//! `/Security/Symbol`, `/Security/SecInfo/*/Sector`, `/Security//*`.

use std::fmt;

/// Navigation axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// `/` — immediate child.
    Child,
    /// `//` — any descendant.
    Descendant,
}

/// Name test of a step.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NameTest {
    /// A concrete element/attribute name.
    Name(String),
    /// The wildcard `*`.
    Wildcard,
}

impl NameTest {
    /// Whether this test accepts the given label.
    pub fn accepts(&self, label: &str) -> bool {
        match self {
            NameTest::Name(n) => n == label,
            NameTest::Wildcard => true,
        }
    }

    /// The concrete name, if not a wildcard.
    pub fn name(&self) -> Option<&str> {
        match self {
            NameTest::Name(n) => Some(n),
            NameTest::Wildcard => None,
        }
    }
}

/// One step of a linear path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinearStep {
    /// `/` or `//`.
    pub axis: Axis,
    /// Label or `*`.
    pub test: NameTest,
}

impl LinearStep {
    /// Child-axis step with a concrete name.
    pub fn child(name: &str) -> Self {
        Self {
            axis: Axis::Child,
            test: NameTest::Name(name.to_string()),
        }
    }

    /// Descendant-axis step with a concrete name.
    pub fn descendant(name: &str) -> Self {
        Self {
            axis: Axis::Descendant,
            test: NameTest::Name(name.to_string()),
        }
    }

    /// Child-axis wildcard step (`/*`).
    pub fn child_wild() -> Self {
        Self {
            axis: Axis::Child,
            test: NameTest::Wildcard,
        }
    }

    /// Descendant-axis wildcard step (`//*`).
    pub fn descendant_wild() -> Self {
        Self {
            axis: Axis::Descendant,
            test: NameTest::Wildcard,
        }
    }
}

/// A linear XPath path expression without predicates: an index pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LinearPath {
    /// The steps, in order from the root.
    pub steps: Vec<LinearStep>,
}

impl LinearPath {
    /// Creates a path from steps.
    pub fn new(steps: Vec<LinearStep>) -> Self {
        Self { steps }
    }

    /// The universal index pattern `//*` that (virtually) indexes every
    /// element — the paper's Enumerate-Indexes virtual index.
    pub fn universal() -> Self {
        Self {
            steps: vec![LinearStep::descendant_wild()],
        }
    }

    /// Builds a child-axis-only path from concrete labels.
    pub fn from_labels<'a>(labels: impl IntoIterator<Item = &'a str>) -> Self {
        Self {
            steps: labels.into_iter().map(LinearStep::child).collect(),
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The final (target) step — the nodes this pattern indexes.
    pub fn last_step(&self) -> Option<&LinearStep> {
        self.steps.last()
    }

    /// Appends another relative linear path, returning the concatenation.
    pub fn join(&self, rel: &[LinearStep]) -> LinearPath {
        let mut steps = self.steps.clone();
        steps.extend(rel.iter().cloned());
        LinearPath { steps }
    }

    /// Whether the path uses only child axes and concrete names (a fully
    /// *specific* pattern that matches exactly one rooted label path).
    pub fn is_specific(&self) -> bool {
        self.steps
            .iter()
            .all(|s| s.axis == Axis::Child && s.test != NameTest::Wildcard)
    }

    /// Whether any step uses `//` or `*` (a *general* pattern).
    pub fn is_general(&self) -> bool {
        !self.is_specific()
    }

    /// Matches this pattern against a concrete rooted label sequence.
    ///
    /// Dynamic programming over (steps × labels); the pattern denotes the
    /// regular expression obtained by mapping `/l` to `l`, `//l` to `Σ* l`,
    /// `/*` to `Σ` and `//*` to `Σ* Σ`.
    pub fn matches_labels(&self, labels: &[&str]) -> bool {
        // cur[j] = the first j labels can be consumed by the steps so far.
        let n = labels.len();
        let mut cur = vec![false; n + 1];
        cur[0] = true;
        let mut next = vec![false; n + 1];
        for step in &self.steps {
            next.iter_mut().for_each(|b| *b = false);
            match step.axis {
                Axis::Child => {
                    for j in 1..=n {
                        next[j] = cur[j - 1] && step.test.accepts(labels[j - 1]);
                    }
                }
                Axis::Descendant => {
                    // prefix-OR of cur gives "reachable with Σ*".
                    let mut reach = false;
                    for j in 1..=n {
                        reach |= cur[j - 1];
                        next[j] = reach && step.test.accepts(labels[j - 1]);
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur[n]
    }

    /// Applies the paper's Rule 0 rewrite: any *middle* `/*` (or `//*`) step
    /// is removed and the following step's axis becomes `//`. E.g. both
    /// `/a/*/b` and `/a/*/*/b` rewrite to `/a//b`. The final step is never
    /// rewritten (it is the indexing target).
    pub fn rewrite_rule0(&self) -> LinearPath {
        let mut steps: Vec<LinearStep> = Vec::with_capacity(self.steps.len());
        let mut pending_descendant = false;
        for (i, step) in self.steps.iter().enumerate() {
            let is_last = i + 1 == self.steps.len();
            if !is_last && step.test == NameTest::Wildcard {
                // Drop the middle wildcard; the next kept step becomes `//`.
                pending_descendant = true;
                continue;
            }
            let mut s = step.clone();
            if pending_descendant || s.axis == Axis::Descendant {
                s.axis = Axis::Descendant;
            }
            steps.push(s);
            pending_descendant = false;
        }
        LinearPath { steps }
    }

    /// Collects the distinct concrete names used in the pattern.
    pub fn names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.steps.iter().filter_map(|s| s.test.name()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Display for LinearPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return f.write_str("/");
        }
        for step in &self.steps {
            f.write_str(match step.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            })?;
            match &step.test {
                NameTest::Name(n) => f.write_str(n)?,
                NameTest::Wildcard => f.write_str("*")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_linear_path;

    fn lp(s: &str) -> LinearPath {
        parse_linear_path(s).expect("parse")
    }

    #[test]
    fn display_round_trips() {
        for s in ["/Security/Symbol", "/Security//*", "/a/*/b", "//Yield"] {
            assert_eq!(lp(s).to_string(), s);
        }
    }

    #[test]
    fn matches_child_axis_exactly() {
        let p = lp("/Security/Yield");
        assert!(p.matches_labels(&["Security", "Yield"]));
        assert!(!p.matches_labels(&["Security", "SecInfo", "Yield"]));
        assert!(!p.matches_labels(&["Security"]));
    }

    #[test]
    fn matches_descendant_axis_at_any_depth() {
        let p = lp("//Yield");
        assert!(p.matches_labels(&["Yield"]));
        assert!(p.matches_labels(&["Security", "Yield"]));
        assert!(p.matches_labels(&["a", "b", "c", "Yield"]));
        assert!(!p.matches_labels(&["Yield", "x"]));
    }

    #[test]
    fn matches_wildcards() {
        let p = lp("/Security/*/Sector");
        assert!(p.matches_labels(&["Security", "StockInfo", "Sector"]));
        assert!(!p.matches_labels(&["Security", "Sector"]));
        let u = LinearPath::universal();
        assert!(u.matches_labels(&["anything"]));
        assert!(u.matches_labels(&["a", "b", "c"]));
        assert!(!u.matches_labels(&[]));
    }

    #[test]
    fn matches_mixed_descendant_and_child() {
        let p = lp("/Security//Sector");
        assert!(p.matches_labels(&["Security", "Sector"]));
        assert!(p.matches_labels(&["Security", "SecInfo", "StockInfo", "Sector"]));
        assert!(!p.matches_labels(&["Order", "Sector"]));
    }

    #[test]
    fn rewrite_rule0_examples_from_paper() {
        // Table II Rule 0: /a/*/b -> /a//b and /a/*/*/b -> /a//b.
        assert_eq!(lp("/a/*/b").rewrite_rule0().to_string(), "/a//b");
        assert_eq!(lp("/a/*/*/b").rewrite_rule0().to_string(), "/a//b");
        // Trailing wildcard is the target and is preserved: /Security/*/* -> /Security//*.
        assert_eq!(
            lp("/Security/*/*").rewrite_rule0().to_string(),
            "/Security//*"
        );
        // No middle wildcard: unchanged.
        assert_eq!(lp("/a/b/c").rewrite_rule0().to_string(), "/a/b/c");
    }

    #[test]
    fn rewrite_rule0_preserves_language_on_samples() {
        let cases = [
            (
                "/a/*/b",
                vec![vec!["a", "x", "b"], vec!["a", "x", "y", "b"]],
            ),
            ("/a/*/*/b", vec![vec!["a", "x", "y", "b"]]),
        ];
        for (pat, samples) in cases {
            let orig = lp(pat);
            let rewritten = orig.rewrite_rule0();
            for s in samples {
                if orig.matches_labels(&s) {
                    assert!(rewritten.matches_labels(&s), "{pat} lost {s:?}");
                }
            }
        }
    }

    #[test]
    fn specific_vs_general() {
        assert!(lp("/Security/Symbol").is_specific());
        assert!(!lp("/Security//*").is_specific());
        assert!(!lp("/Security/*/Sector").is_specific());
        assert!(lp("/Security//*").is_general());
    }

    #[test]
    fn join_concatenates() {
        let base = lp("/Security");
        let joined = base.join(&[LinearStep::child("SecInfo"), LinearStep::child_wild()]);
        assert_eq!(joined.to_string(), "/Security/SecInfo/*");
    }

    #[test]
    fn names_are_sorted_distinct() {
        assert_eq!(lp("/b/a//b/*").names(), vec!["a", "b"]);
    }

    #[test]
    fn empty_path_matches_only_empty() {
        let p = LinearPath::default();
        assert!(p.matches_labels(&[]));
        assert!(!p.matches_labels(&["a"]));
    }
}
