//! Containment and matching for linear path patterns.
//!
//! `covers(general, specific)` decides *language inclusion*: does every
//! rooted label path matched by `specific` also match `general`? This is the
//! data-independent relation the optimizer's index matching uses ("index
//! with pattern P can answer a query pattern Q iff P covers Q"), and the
//! coverage-bitmap heuristic of the greedy search relies on it too.
//!
//! Linear patterns denote regular word languages over the (unbounded)
//! alphabet of element labels. Inclusion is decided soundly and completely
//! by restricting to the finite alphabet of labels mentioned in either
//! pattern plus one fresh "other" letter: wildcard and `Σ*` transitions are
//! the only ones that accept unmentioned labels, and they treat all
//! unmentioned labels identically, so any counterexample word can be
//! relabeled onto the restricted alphabet.
//!
//! Two fast paths sit in front of the NFA product search, both exact:
//!
//! * **identity** — `L ⊆ L` always holds, so equal patterns (an integer
//!   compare over interned steps) accept immediately;
//! * **name-mask reject** — every concrete name test in `general` must be
//!   consumed by every word of `L(general)`, while `specific` always has a
//!   witness word avoiding any name it does not mention. So if `general`
//!   mentions a name `specific` does not, containment is impossible. The
//!   bloom-style [`LinearPath::name_mask`] over-approximates the mention
//!   sets: `general.mask & !specific.mask != 0` proves such a name exists
//!   (bit collisions can only *hide* a reject, never invent one).
//!
//! [`CoverCache`] memoizes verdicts by pattern identity so the relevance
//! matrix, top-down search, and greedy coverage bitmaps — which re-ask the
//! same `(candidate, candidate)` questions many times per advise run —
//! each pay for a verdict once.

use crate::intern::Sym;
use crate::linear::{Axis, LinearPath, NameTest};
use crate::statement::ValueKind;
use std::collections::HashMap;
use std::sync::Mutex;
use xia_xml::{PathId, Symbol, Vocabulary};

/// Letter of the restricted alphabet: index into the mentioned-names list,
/// or `Other` for any unmentioned label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Letter {
    Named(usize),
    Other,
}

/// NFA over the restricted alphabet. State `i` = "first `i` steps matched";
/// a descendant-axis step adds a self-loop (Σ*) on its source state.
struct Nfa {
    /// `step_tests[i]`: which letters step `i+1` accepts (bitmask over
    /// named letters; bool for Other).
    accepts: Vec<(u64, bool)>,
    /// Whether state `i` has a Σ* self-loop (step `i+1` is descendant-axis).
    self_loop: Vec<bool>,
    states: usize,
}

fn build_nfa(path: &LinearPath, names: &[Sym]) -> Nfa {
    assert!(
        names.len() <= 64,
        "containment alphabet limited to 64 names"
    );
    let mut accepts = Vec::with_capacity(path.len());
    let mut self_loop = Vec::with_capacity(path.len());
    for step in &path.steps {
        let (mask, other) = match step.test {
            NameTest::Wildcard => (u64::MAX >> (64 - names.len().max(1)), true),
            NameTest::Name(n) => {
                let mut mask = 0u64;
                if let Some(i) = names.iter().position(|x| *x == n) {
                    mask |= 1 << i;
                }
                (mask, false)
            }
        };
        accepts.push((mask, other));
        self_loop.push(step.axis == Axis::Descendant);
    }
    Nfa {
        accepts,
        self_loop,
        states: path.len() + 1,
    }
}

impl Nfa {
    /// Steps a state *set* (bitmask over states) on one letter.
    fn step_set(&self, set: u64, letter: Letter) -> u64 {
        let mut next = 0u64;
        for i in 0..self.states {
            if set & (1 << i) == 0 {
                continue;
            }
            // Σ* self-loops keep state i alive on any letter.
            if i < self.states - 1 && self.self_loop[i] {
                next |= 1 << i;
            }
            if i < self.states - 1 {
                let (mask, other) = self.accepts[i];
                let ok = match letter {
                    Letter::Named(n) => mask & (1 << n) != 0,
                    Letter::Other => other,
                };
                if ok {
                    next |= 1 << (i + 1);
                }
            }
        }
        next
    }

    fn start(&self) -> u64 {
        1
    }

    fn accepting(&self, set: u64) -> bool {
        set & (1 << (self.states - 1)) != 0
    }
}

/// Exact precheck: does the name-mask argument *prove* `general` cannot
/// cover `specific`? `general` mentioning a concrete name that `specific`
/// never matches forces a witness word in `L(specific) \ L(general)`.
/// Conservative under bloom collisions: `false` means "no proof", not
/// "covered".
fn mask_rejects(general: &LinearPath, specific: &LinearPath) -> bool {
    general.name_mask() & !specific.name_mask() != 0
}

/// Returns `true` iff every rooted label path matched by `specific` is also
/// matched by `general` (language inclusion `L(specific) ⊆ L(general)`).
pub fn covers(general: &LinearPath, specific: &LinearPath) -> bool {
    // Patterns longer than 63 steps never occur in practice; guard anyway.
    if general.len() >= 63 || specific.len() >= 63 {
        return general == specific;
    }
    if general == specific {
        return true; // identity: L ⊆ L
    }
    if mask_rejects(general, specific) {
        return false;
    }
    covers_full(general, specific)
}

/// The NFA product search, without the identity/mask fast paths. Kept
/// separate so property tests can pin `covers ≡ covers_full`.
fn covers_full(general: &LinearPath, specific: &LinearPath) -> bool {
    let mut names: Vec<Sym> = Vec::new();
    for n in general.syms().chain(specific.syms()) {
        if !names.contains(&n) {
            names.push(n);
        }
    }
    if names.len() > 64 {
        return general == specific;
    }
    let a = build_nfa(specific, &names); // must be ⊆
    let b = build_nfa(general, &names); // must be ⊇

    // Search the product of A's state-sets and B's state-sets for a word
    // accepted by A but not by B. Both sets are bitmasks; the pair space is
    // tiny for realistic pattern sizes.
    let mut letters: Vec<Letter> = (0..names.len()).map(Letter::Named).collect();
    letters.push(Letter::Other);

    let start = (a.start(), b.start());
    let mut seen = std::collections::HashSet::new();
    seen.insert(start);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some((sa, sb)) = queue.pop_front() {
        if a.accepting(sa) && !b.accepting(sb) {
            return false; // counterexample word exists
        }
        for &l in &letters {
            let na = a.step_set(sa, l);
            if na == 0 {
                continue; // word died in A; cannot be a counterexample
            }
            let nb = b.step_set(sb, l);
            if seen.insert((na, nb)) {
                queue.push_back((na, nb));
            }
        }
    }
    true
}

/// Whether two patterns match exactly the same label paths.
pub fn equivalent(a: &LinearPath, b: &LinearPath) -> bool {
    covers(a, b) && covers(b, a)
}

/// Dense identity of a pattern inside a [`CoverCache`]: assigned on first
/// sight, stable for the cache's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternId(u32);

/// Hit/reject statistics of a [`CoverCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverCacheStats {
    /// Verdicts answered from the memo table.
    pub hits: u64,
    /// Verdicts decided by the name-mask fast reject (on a memo miss).
    pub fast_rejects: u64,
    /// Distinct `(general, specific)` verdicts stored.
    pub entries: u64,
}

#[derive(Default)]
struct CoverCacheInner {
    ids: HashMap<LinearPath, PatternId>,
    /// Per pattern id: precomputed name mask (index = id).
    masks: Vec<u64>,
    verdicts: HashMap<(PatternId, PatternId), bool>,
    hits: u64,
    fast_rejects: u64,
}

/// Shared containment-verdict memo keyed by pattern identity.
///
/// One instance lives in the benefit evaluator per advise run and is
/// consulted by everything on the coordinator path that asks containment
/// questions about the (fixed) candidate set: relevance-matrix
/// construction, the top-down search's covered-check, and the greedy
/// search's coverage bitmaps. Verdicts are pure, so caching cannot change
/// results — only how often the NFA product search runs.
#[derive(Default)]
pub struct CoverCache {
    inner: Mutex<CoverCacheInner>,
}

impl CoverCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`covers`]: identical verdicts, computed at most once per
    /// `(general, specific)` pattern pair.
    pub fn covers(&self, general: &LinearPath, specific: &LinearPath) -> bool {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let g = Self::id_of(&mut inner, general);
        let s = Self::id_of(&mut inner, specific);
        if let Some(&v) = inner.verdicts.get(&(g, s)) {
            inner.hits += 1;
            return v;
        }
        let long = general.len() >= 63 || specific.len() >= 63;
        let verdict = if general == specific {
            true
        } else if long {
            false // length guard: covers() falls back to equality here
        } else if inner.masks[g.0 as usize] & !inner.masks[s.0 as usize] != 0 {
            inner.fast_rejects += 1;
            false
        } else {
            covers_full(general, specific)
        };
        inner.verdicts.insert((g, s), verdict);
        verdict
    }

    fn id_of(inner: &mut CoverCacheInner, pattern: &LinearPath) -> PatternId {
        if let Some(&id) = inner.ids.get(pattern) {
            return id;
        }
        let id = PatternId(inner.masks.len() as u32);
        inner.masks.push(pattern.name_mask());
        inner.ids.insert(pattern.clone(), id);
        id
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CoverCacheStats {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        CoverCacheStats {
            hits: inner.hits,
            fast_rejects: inner.fast_rejects,
            entries: inner.verdicts.len() as u64,
        }
    }
}

/// The access-pattern surface of one workload statement, as seen by index
/// matching: the collection it touches and the indexable linear patterns it
/// probes, each with the comparison's value kind (`None` for existence
/// probes, which any index kind can answer).
///
/// This is everything the optimizer's `index_matches` consults about a
/// statement, so a candidate index that matches *no* target here provably
/// cannot appear in any plan for the statement — the soundness basis of
/// relevance pruning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementSignature {
    /// Collection the statement runs against.
    pub collection: String,
    /// Indexable access patterns: `(linear pattern, comparison kind)`.
    /// Empty for statements whose plans never consult the catalog
    /// (inserts).
    pub targets: Vec<(LinearPath, Option<ValueKind>)>,
}

impl StatementSignature {
    /// Whether an index with this `(collection, pattern, kind)` could match
    /// any access pattern of the statement (mirrors the optimizer's
    /// `index_matches`: kind compatibility plus pattern containment).
    pub fn admits(&self, collection: &str, pattern: &LinearPath, kind: ValueKind) -> bool {
        self.collection == collection
            && self
                .targets
                .iter()
                .any(|(q, kq)| kq.is_none_or(|k| k == kind) && covers(pattern, q))
    }

    /// Canonicalizes the signature in place: targets sorted by
    /// (pattern text, value kind) and deduplicated. `admits` is a
    /// disjunction over targets, so order and multiplicity never change a
    /// verdict — two statements with equal canonical signatures admit
    /// exactly the same candidate indexes. The workload compressor uses
    /// this as its coarse clustering key before cost-identity refinement.
    pub fn canonicalize(&mut self) {
        self.targets
            .sort_by(|(pa, ka), (pb, kb)| pa.to_string().cmp(&pb.to_string()).then(ka.cmp(kb)));
        self.targets.dedup();
    }

    /// [`Self::admits`] with containment verdicts routed through a shared
    /// [`CoverCache`]. Same result; repeated pattern pairs cost one lookup.
    pub fn admits_with(
        &self,
        collection: &str,
        pattern: &LinearPath,
        kind: ValueKind,
        cache: &CoverCache,
    ) -> bool {
        self.collection == collection
            && self
                .targets
                .iter()
                .any(|(q, kq)| kq.is_none_or(|k| k == kind) && cache.covers(pattern, q))
    }
}

/// Precomputed statement-relevance matrix: for each candidate index
/// pattern, the set of workload statements whose plans could possibly use
/// it. Built once per advise run from the statements' signatures — deriving
/// a candidate's row costs only containment checks, never optimizer calls.
#[derive(Debug, Default)]
pub struct RelevanceMatrix {
    signatures: Vec<StatementSignature>,
}

impl RelevanceMatrix {
    /// Builds a matrix over a workload's statement signatures (one entry
    /// per statement, in workload order).
    pub fn new(signatures: Vec<StatementSignature>) -> Self {
        Self { signatures }
    }

    /// Number of statements covered.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Whether the matrix covers no statements.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// The statements (ascending indexes) a candidate index with this
    /// `(collection, pattern, kind)` is relevant to.
    pub fn relevant_statements(
        &self,
        collection: &str,
        pattern: &LinearPath,
        kind: ValueKind,
    ) -> Vec<usize> {
        self.signatures
            .iter()
            .enumerate()
            .filter(|(_, sig)| sig.admits(collection, pattern, kind))
            .map(|(si, _)| si)
            .collect()
    }

    /// [`Self::relevant_statements`] through a shared [`CoverCache`] —
    /// candidates generalize each other heavily, so the same
    /// `(pattern, target)` containment questions recur across rows.
    pub fn relevant_statements_cached(
        &self,
        collection: &str,
        pattern: &LinearPath,
        kind: ValueKind,
        cache: &CoverCache,
    ) -> Vec<usize> {
        self.signatures
            .iter()
            .enumerate()
            .filter(|(_, sig)| sig.admits_with(collection, pattern, kind, cache))
            .map(|(si, _)| si)
            .collect()
    }
}

/// A pattern compiled against a concrete [`Vocabulary`] for fast matching of
/// interned rooted paths. Used by partial-index builds, RUNSTATS, and the
/// executor.
pub struct PathMatcher {
    /// Per step: resolved symbol (None = wildcard or unknown name), axis,
    /// and whether an unknown name makes the step unsatisfiable.
    steps: Vec<CompiledStep>,
}

struct CompiledStep {
    axis: Axis,
    /// `Ok(sym)` concrete resolved name; `Err(true)` wildcard; `Err(false)`
    /// name not present in the vocabulary (never matches).
    test: Result<Symbol, bool>,
}

impl PathMatcher {
    /// Compiles `pattern` against `vocab`.
    pub fn new(pattern: &LinearPath, vocab: &Vocabulary) -> Self {
        let steps = pattern
            .steps
            .iter()
            .map(|s| CompiledStep {
                axis: s.axis,
                test: match s.test {
                    NameTest::Wildcard => Err(true),
                    NameTest::Name(n) => match vocab.lookup_name(n.as_str()) {
                        Some(sym) => Ok(sym),
                        None => Err(false),
                    },
                },
            })
            .collect();
        Self { steps }
    }

    fn step_accepts(step: &CompiledStep, label: Symbol) -> bool {
        match step.test {
            Ok(sym) => sym == label,
            Err(wild) => wild,
        }
    }

    /// Matches an interned label sequence (same DP as
    /// [`LinearPath::matches_labels`], over symbols).
    pub fn matches(&self, labels: &[Symbol]) -> bool {
        let n = labels.len();
        let mut cur = vec![false; n + 1];
        cur[0] = true;
        let mut next = vec![false; n + 1];
        for step in &self.steps {
            next.iter_mut().for_each(|b| *b = false);
            match step.axis {
                Axis::Child => {
                    for j in 1..=n {
                        next[j] = cur[j - 1] && Self::step_accepts(step, labels[j - 1]);
                    }
                }
                Axis::Descendant => {
                    let mut reach = false;
                    for j in 1..=n {
                        reach |= cur[j - 1];
                        next[j] = reach && Self::step_accepts(step, labels[j - 1]);
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur[n]
    }

    /// Scans the vocabulary's path dictionary and returns all matching path
    /// ids, in id order.
    pub fn matching_path_ids(&self, vocab: &Vocabulary) -> Vec<PathId> {
        vocab
            .paths
            .iter()
            .filter(|(_, labels)| self.matches(labels))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_linear_path;
    use xia_xml::DocBuilder;

    fn lp(s: &str) -> LinearPath {
        parse_linear_path(s).expect("parse")
    }

    #[test]
    fn universal_covers_everything() {
        let u = LinearPath::universal();
        for s in [
            "/Security/Symbol",
            "/Security/SecInfo/*/Sector",
            "//Yield",
            "/a//b/*",
        ] {
            assert!(covers(&u, &lp(s)), "//* should cover {s}");
            assert!(!covers(&lp(s), &u), "{s} should not cover //*");
        }
    }

    #[test]
    fn paper_table1_coverage() {
        // C4 = /Security//* covers C1 and C2 but also C3.
        let c4 = lp("/Security//*");
        assert!(covers(&c4, &lp("/Security/Symbol")));
        assert!(covers(&c4, &lp("/Security/SecInfo/*/Sector")));
        assert!(covers(&c4, &lp("/Security/Yield")));
        assert!(!covers(&c4, &lp("/Order/Price")));
    }

    #[test]
    fn self_coverage_is_reflexive() {
        for s in ["/a/b", "/a//b", "/a/*/b", "//*"] {
            let p = lp(s);
            assert!(covers(&p, &p), "{s} must cover itself");
        }
    }

    #[test]
    fn wildcard_vs_descendant_distinction() {
        // /a/* matches exactly depth-2 paths under a; /a//* matches any depth.
        assert!(covers(&lp("/a//*"), &lp("/a/*")));
        assert!(!covers(&lp("/a/*"), &lp("/a//*")));
        assert!(!covers(&lp("/a/*"), &lp("/a/b/c")));
        assert!(covers(&lp("/a//*"), &lp("/a/b/c")));
    }

    #[test]
    fn descendant_name_coverage() {
        assert!(covers(&lp("//Sector"), &lp("/Security/SecInfo/*/Sector")));
        assert!(!covers(&lp("/Security/Sector"), &lp("//Sector")));
        // /a//d covers /a/b/d and /a/d
        assert!(covers(&lp("/a//d"), &lp("/a/b/d")));
        assert!(covers(&lp("/a//d"), &lp("/a/d")));
        assert!(!covers(&lp("/a//d"), &lp("/b/d")));
    }

    #[test]
    fn equivalence_of_rule0_rewrites() {
        // /a/*/b is strictly contained in /a//b (not equivalent).
        assert!(covers(&lp("/a//b"), &lp("/a/*/b")));
        assert!(!covers(&lp("/a/*/b"), &lp("/a//b")));
        assert!(equivalent(&lp("/a//b"), &lp("/a//b")));
    }

    #[test]
    fn incomparable_patterns() {
        assert!(!covers(&lp("/a/b"), &lp("/a/c")));
        assert!(!covers(&lp("/a/c"), &lp("/a/b")));
        // /a/*/c vs /a/b//c overlap but neither contains the other.
        assert!(!covers(&lp("/a/*/c"), &lp("/a/b//c")));
        assert!(!covers(&lp("/a/b//c"), &lp("/a/*/c")));
    }

    #[test]
    fn fresh_label_soundness() {
        // //x ⊆ //* even though * mentions no names.
        assert!(covers(&lp("//*"), &lp("//x")));
        // /a/* does NOT cover /a/b/c (length mismatch via fresh letters).
        assert!(!covers(&lp("/a/*"), &lp("/a//c")));
    }

    /// The pattern pool the fast-path property tests range over: mixes
    /// child/descendant axes, wildcards, shared and disjoint names.
    const POOL: [&str; 14] = [
        "/a/b/d", "/a//d", "/a/*", "/a//*", "//d", "/a/d", "/a/b//c", "/a/*/c", "//*", "/a/b",
        "//c", "/x/y", "/a/b/c/d", "//a//b",
    ];

    /// Property (tentpole fast path): the mask-based reject is sound — it
    /// never fires on a pair the full NFA search would accept. Together
    /// with the identity fast path (reflexivity, pinned above) this gives
    /// `covers ≡ covers_full` on every pair in the pool.
    #[test]
    fn mask_reject_never_rejects_true_containment() {
        for g in &POOL {
            for s in &POOL {
                let (gp, sp) = (lp(g), lp(s));
                let full = covers_full(&gp, &sp);
                if mask_rejects(&gp, &sp) {
                    assert!(!full, "mask rejected {g} ⊇ {s}, but containment holds");
                }
                assert_eq!(
                    covers(&gp, &sp),
                    full,
                    "fast covers diverged from covers_full on ({g}, {s})"
                );
            }
        }
    }

    /// The cache returns exactly what plain `covers` returns, answers
    /// repeats from the memo table, and counts fast rejects.
    #[test]
    fn cover_cache_matches_plain_covers_and_counts() {
        let cache = CoverCache::new();
        for g in &POOL {
            for s in &POOL {
                let (gp, sp) = (lp(g), lp(s));
                assert_eq!(
                    cache.covers(&gp, &sp),
                    covers(&gp, &sp),
                    "cache verdict diverged on ({g}, {s})"
                );
            }
        }
        let first = cache.stats();
        assert_eq!(first.entries, (POOL.len() * POOL.len()) as u64);
        assert_eq!(first.hits, 0, "first pass has no repeats");
        assert!(first.fast_rejects > 0, "pool contains disjoint-name pairs");
        // Second pass: all hits, no new entries, no new fast rejects.
        for g in &POOL {
            for s in &POOL {
                let (gp, sp) = (lp(g), lp(s));
                assert_eq!(cache.covers(&gp, &sp), covers(&gp, &sp));
            }
        }
        let second = cache.stats();
        assert_eq!(second.entries, first.entries);
        assert_eq!(second.fast_rejects, first.fast_rejects);
        assert_eq!(second.hits, (POOL.len() * POOL.len()) as u64);
    }

    #[test]
    fn cover_cache_handles_long_path_guard() {
        // Paths at/above the 63-step guard take the equality fallback in
        // both the plain and cached functions.
        let long = LinearPath::from_labels((0..70).map(|_| "n").collect::<Vec<_>>());
        let short = lp("/n");
        let cache = CoverCache::new();
        assert!(cache.covers(&long, &long));
        assert!(!cache.covers(&long, &short));
        assert!(!cache.covers(&short, &long));
        assert_eq!(cache.covers(&long, &long), covers(&long, &long));
        assert_eq!(cache.covers(&long, &short), covers(&long, &short));
        assert_eq!(cache.covers(&short, &long), covers(&short, &long));
    }

    #[test]
    fn matcher_agrees_with_pattern_on_document_paths() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "Security");
        b.leaf("Symbol", "IBM");
        b.begin("SecInfo");
        b.begin("StockInfo");
        b.leaf("Sector", "Tech");
        b.end();
        b.end();
        b.leaf("Yield", "4.5");
        let _doc = b.finish();

        let pattern = lp("/Security/SecInfo/*/Sector");
        let m = PathMatcher::new(&pattern, &vocab);
        let ids = m.matching_path_ids(&vocab);
        assert_eq!(ids.len(), 1);
        assert_eq!(
            vocab.path_string(ids[0]),
            "/Security/SecInfo/StockInfo/Sector"
        );

        let all = PathMatcher::new(&LinearPath::universal(), &vocab).matching_path_ids(&vocab);
        assert_eq!(all.len(), vocab.paths.len());
    }

    /// Property (soundness of relevance pruning at the containment layer):
    /// over a generated workload, `covers(g, s)` implies the relevance
    /// bitset of `g` is a superset of `s`'s — anything a specific pattern
    /// can serve, its generalization can serve too. Follows from
    /// transitivity of language inclusion; this pins it end-to-end through
    /// [`RelevanceMatrix`].
    #[test]
    fn relevance_of_general_pattern_is_superset_of_specific() {
        // Deterministic splitmix64 so the "generated workload" is stable.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as usize
        };
        let pool = [
            "/a/b/d", "/a//d", "/a/*", "/a//*", "//d", "/a/d", "/a/b//c", "/a/*/c", "//*", "/a/b",
            "//c", "/x/y",
        ];
        let kinds = [Some(ValueKind::Str), Some(ValueKind::Num), None];
        let colls = ["C1", "C2"];
        // 40 random statements, 1–3 targets each.
        let mut sigs = Vec::new();
        for _ in 0..40 {
            let collection = colls[next() % colls.len()].to_string();
            let n = 1 + next() % 3;
            let targets = (0..n)
                .map(|_| (lp(pool[next() % pool.len()]), kinds[next() % kinds.len()]))
                .collect();
            sigs.push(StatementSignature {
                collection,
                targets,
            });
        }
        let m = RelevanceMatrix::new(sigs);
        assert_eq!(m.len(), 40);
        for g in &pool {
            for s in &pool {
                let (gp, sp) = (lp(g), lp(s));
                if !covers(&gp, &sp) {
                    continue;
                }
                for coll in &colls {
                    for kind in [ValueKind::Str, ValueKind::Num] {
                        let rg: std::collections::HashSet<usize> =
                            m.relevant_statements(coll, &gp, kind).into_iter().collect();
                        for si in m.relevant_statements(coll, &sp, kind) {
                            assert!(
                                rg.contains(&si),
                                "{g} covers {s} but relevance({g}) misses statement {si}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The cached relevance rows are identical to the uncached ones for
    /// every (collection, pattern, kind) probe over a generated workload.
    #[test]
    fn cached_relevance_rows_match_uncached() {
        let mut state = 0xD37Eu64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as usize
        };
        let kinds = [Some(ValueKind::Str), Some(ValueKind::Num), None];
        let colls = ["C1", "C2"];
        let mut sigs = Vec::new();
        for _ in 0..30 {
            let collection = colls[next() % colls.len()].to_string();
            let n = 1 + next() % 3;
            let targets = (0..n)
                .map(|_| (lp(POOL[next() % POOL.len()]), kinds[next() % kinds.len()]))
                .collect();
            sigs.push(StatementSignature {
                collection,
                targets,
            });
        }
        let m = RelevanceMatrix::new(sigs);
        let cache = CoverCache::new();
        for p in &POOL {
            let pat = lp(p);
            for coll in &colls {
                for kind in [ValueKind::Str, ValueKind::Num] {
                    assert_eq!(
                        m.relevant_statements_cached(coll, &pat, kind, &cache),
                        m.relevant_statements(coll, &pat, kind),
                        "cached relevance diverged for {p} on {coll}/{kind:?}"
                    );
                }
            }
        }
        assert!(cache.stats().hits > 0, "repeat probes should hit the memo");
    }

    #[test]
    fn signature_admits_respects_kind_and_collection() {
        let sig = StatementSignature {
            collection: "SDOC".to_string(),
            targets: vec![
                (lp("/Security/Symbol"), Some(ValueKind::Str)),
                (lp("/Security/Names"), None), // existence probe: any kind
            ],
        };
        // Kind must match for comparison targets.
        assert!(sig.admits("SDOC", &lp("/Security/Symbol"), ValueKind::Str));
        assert!(!sig.admits("SDOC", &lp("/Security/Symbol"), ValueKind::Num));
        // Existence targets admit both kinds.
        assert!(sig.admits("SDOC", &lp("/Security/Names"), ValueKind::Str));
        assert!(sig.admits("SDOC", &lp("/Security/Names"), ValueKind::Num));
        // A general pattern covering a target is relevant.
        assert!(sig.admits("SDOC", &lp("/Security//*"), ValueKind::Str));
        // Wrong collection or unrelated pattern is not.
        assert!(!sig.admits("ODOC", &lp("/Security/Symbol"), ValueKind::Str));
        assert!(!sig.admits("SDOC", &lp("/Order/Price"), ValueKind::Str));
        // Insert-style empty signature admits nothing.
        let insert = StatementSignature {
            collection: "SDOC".to_string(),
            targets: Vec::new(),
        };
        assert!(!insert.admits("SDOC", &lp("//*"), ValueKind::Str));
    }

    #[test]
    fn matcher_with_unknown_name_matches_nothing() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "a");
        b.leaf("b", "1");
        let _ = b.finish();
        let m = PathMatcher::new(&lp("/a/zzz"), &vocab);
        assert!(m.matching_path_ids(&vocab).is_empty());
    }

    #[test]
    fn coverage_implies_matching_superset_on_vocab() {
        // Semantic check: if covers(g, s) then every path id matched by s is
        // matched by g in a concrete vocabulary.
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "a");
        b.begin("b");
        b.leaf("d", "1");
        b.end();
        b.begin("d");
        b.leaf("b", "2");
        b.end();
        b.leaf("d", "3");
        let _ = b.finish();
        let pats = ["/a/b/d", "/a//d", "/a/*", "/a//*", "//d", "/a/d"];
        for g in &pats {
            for s in &pats {
                let (gp, sp) = (lp(g), lp(s));
                if covers(&gp, &sp) {
                    let gm: std::collections::HashSet<_> = PathMatcher::new(&gp, &vocab)
                        .matching_path_ids(&vocab)
                        .into_iter()
                        .collect();
                    for id in PathMatcher::new(&sp, &vocab).matching_path_ids(&vocab) {
                        assert!(
                            gm.contains(&id),
                            "{g} covers {s} but misses {:?}",
                            vocab.path_string(id)
                        );
                    }
                }
            }
        }
    }
}
