//! SQL/XML-lite: the second surface language.
//!
//! The paper stresses that its advisor "supports both XQuery and SQL/XML
//! simply by virtue of the fact that the DB2 query optimizer supports both
//! of these languages" — queries in either language normalize to the same
//! access patterns and therefore yield the same candidates. This module
//! reproduces that: an SQL/XML-lite parser whose output feeds the same
//! [`crate::normalize`] pipeline as FLWOR queries.
//!
//! Grammar:
//!
//! ```text
//! select    := 'SELECT' select-list 'FROM' NAME ('WHERE' cond ('AND' cond)*)?
//! select-list := '*' | xmlquery (',' xmlquery)*
//! xmlquery  := 'XMLQUERY' '(' STR ')'      -- '$DOC/path' projection
//! cond      := 'XMLEXISTS' '(' STR ')'     -- '$DOC/path[pred]' predicate
//! ```
//!
//! The embedded XPath strings use the conventional `$DOC` (any name)
//! passing variable. All embedded paths must share their first step (the
//! document root element of the table's XML column), which is how
//! single-document-type tables are queried in practice.

use crate::ast::{PathExpr, Predicate};
use crate::lexer::Token;
use crate::linear::LinearStep;
use crate::parser::{parse_path_expr_steps, ParseError, TokenCursor};
use crate::xquery::{FlworQuery, ReturnExpr};

/// Parses an SQL/XML-lite statement into the same query representation as
/// FLWOR (so normalization, candidate enumeration, and costing are shared
/// — the paper's dual-language claim).
pub fn parse_sqlxml(input: &str) -> Result<FlworQuery, ParseError> {
    let mut cur = TokenCursor::new(input)?;
    expect_kw(&mut cur, "select")?;

    // Projections.
    let mut projections: Vec<PathExpr> = Vec::new();
    let mut select_star = false;
    if cur.peek() == Some(&Token::Star) {
        cur.next();
        select_star = true;
    } else {
        loop {
            expect_kw(&mut cur, "xmlquery")?;
            cur.expect(&Token::LParen)?;
            let path = embedded_path(&mut cur)?;
            cur.expect(&Token::RParen)?;
            projections.push(path);
            if cur.peek() == Some(&Token::Comma) {
                cur.next();
            } else {
                break;
            }
        }
    }

    expect_kw(&mut cur, "from")?;
    let collection = cur.expect_name()?;

    // Conditions.
    let mut exists_paths: Vec<PathExpr> = Vec::new();
    if peek_kw(&cur, "where") {
        cur.next();
        loop {
            expect_kw(&mut cur, "xmlexists")?;
            cur.expect(&Token::LParen)?;
            exists_paths.push(embedded_path(&mut cur)?);
            cur.expect(&Token::RParen)?;
            if peek_kw(&cur, "and") {
                cur.next();
            } else {
                break;
            }
        }
    }
    if !cur.at_end() {
        return Err(cur.err("trailing tokens after SQL/XML statement"));
    }
    if exists_paths.is_empty() && projections.is_empty() {
        return Err(cur.err("SQL/XML statement needs XMLEXISTS or XMLQUERY"));
    }

    // Determine the document root element: first step of the first
    // embedded path.
    let first = exists_paths
        .first()
        .or(projections.first())
        .expect("checked non-empty above");
    let root_step = first.steps[0].clone();
    let root_test = root_step.test;

    // Fold every XMLEXISTS path into one source PathExpr rooted at the
    // shared root element: predicates keep their anchoring by extending
    // their relative paths with the steps between the root and their step;
    // the navigation itself becomes an existence predicate.
    let mut source = PathExpr {
        steps: vec![crate::ast::Step {
            axis: root_step.axis,
            test: root_step.test,
            predicates: root_step.predicates,
        }],
    };
    for path in &exists_paths {
        if path.steps[0].test != root_test {
            return Err(cur.err(format!(
                "all embedded paths must share the document root element (found `{}` vs `{}`)",
                display_test(&path.steps[0].test),
                display_test(&root_test),
            )));
        }
        fold_into_root(&mut source, path);
    }

    // Projections become return paths relative to the root.
    let returns: Vec<ReturnExpr> = if select_star || projections.is_empty() {
        vec![ReturnExpr::Var]
    } else {
        projections
            .iter()
            .map(|p| {
                if p.steps[0].test != root_test {
                    return Err(
                        cur.err("XMLQUERY path must share the document root element".to_string())
                    );
                }
                let rel: Vec<LinearStep> = p.steps[1..]
                    .iter()
                    .map(|s| LinearStep {
                        axis: s.axis,
                        test: s.test,
                    })
                    .collect();
                Ok(if rel.is_empty() {
                    ReturnExpr::Var
                } else {
                    ReturnExpr::Path(rel)
                })
            })
            .collect::<Result<_, _>>()?
    };

    Ok(FlworQuery {
        collection,
        var: None,
        source,
        lets: Vec::new(),
        conditions: Vec::new(),
        order_by: None,
        returns,
    })
}

/// Folds an XMLEXISTS path into the root step of `source` as predicates.
fn fold_into_root(source: &mut PathExpr, path: &PathExpr) {
    let root = &mut source.steps[0];
    // Predicates on the path's root step merge directly.
    for p in &path.steps[0].predicates {
        if !root.predicates.contains(p) {
            root.predicates.push(p.clone());
        }
    }
    // Deeper steps: re-anchor their predicates at the root, and record the
    // navigation itself as an existence test.
    let mut prefix: Vec<LinearStep> = Vec::new();
    fn re_anchor(prefix: &[LinearStep], pred: &Predicate) -> Predicate {
        match pred {
            Predicate::Compare { rel, op, value } => Predicate::Compare {
                rel: prefix.iter().cloned().chain(rel.iter().cloned()).collect(),
                op: *op,
                value: value.clone(),
            },
            Predicate::Exists { rel } => Predicate::Exists {
                rel: prefix.iter().cloned().chain(rel.iter().cloned()).collect(),
            },
            Predicate::Or(branches) => {
                Predicate::Or(branches.iter().map(|b| re_anchor(prefix, b)).collect())
            }
        }
    }
    for step in &path.steps[1..] {
        prefix.push(LinearStep {
            axis: step.axis,
            test: step.test,
        });
        for pred in &step.predicates {
            let re_anchored = re_anchor(&prefix, pred);
            if !root.predicates.contains(&re_anchored) {
                root.predicates.push(re_anchored);
            }
        }
    }
    if !prefix.is_empty() {
        let nav = Predicate::Exists { rel: prefix };
        if !root.predicates.contains(&nav) {
            root.predicates.push(nav);
        }
    }
}

fn display_test(t: &crate::linear::NameTest) -> String {
    match t {
        crate::linear::NameTest::Name(n) => n.as_str().to_string(),
        crate::linear::NameTest::Wildcard => "*".to_string(),
    }
}

fn expect_kw(cur: &mut TokenCursor, kw: &str) -> Result<(), ParseError> {
    match cur.next() {
        Some(Token::Name(n)) if n.eq_ignore_ascii_case(kw) => Ok(()),
        Some(t) => Err(cur.err(format!("expected `{kw}`, found `{t}`"))),
        None => Err(cur.err(format!("expected `{kw}`, found end of input"))),
    }
}

fn peek_kw(cur: &TokenCursor, kw: &str) -> bool {
    matches!(cur.peek(), Some(Token::Name(n)) if n.eq_ignore_ascii_case(kw))
}

/// Parses the quoted `'$var/path'` argument of XMLQUERY/XMLEXISTS.
fn embedded_path(cur: &mut TokenCursor) -> Result<PathExpr, ParseError> {
    let text = match cur.next() {
        Some(Token::Str(s)) => s,
        Some(t) => return Err(cur.err(format!("expected a quoted XPath string, found `{t}`"))),
        None => return Err(cur.err("expected a quoted XPath string")),
    };
    let trimmed = text.trim();
    // Strip the passing variable: `$DOC/...` → `/...`.
    let rest = match trimmed.strip_prefix('$') {
        Some(r) => {
            let slash = r
                .find('/')
                .ok_or_else(|| cur.err("embedded XPath needs a path after the variable"))?;
            &r[slash..]
        }
        None => trimmed,
    };
    let mut inner = TokenCursor::new(rest)?;
    let expr = parse_path_expr_steps(&mut inner, true)?;
    if expr.steps.is_empty() {
        return Err(cur.err("empty embedded XPath"));
    }
    if !inner.at_end() {
        return Err(cur.err("trailing tokens in embedded XPath"));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::statement::Statement;
    use crate::xquery::parse_statement;

    #[test]
    fn parses_select_star_with_xmlexists() {
        let q = parse_sqlxml(
            r#"SELECT * FROM SDOC WHERE XMLEXISTS('$doc/Security[Symbol = "BCIIPRC"]')"#,
        )
        .unwrap();
        assert_eq!(q.collection, "SDOC");
        assert_eq!(q.source.steps.len(), 1);
        assert_eq!(q.source.predicate_count(), 1);
    }

    #[test]
    fn sqlxml_and_xquery_normalize_identically() {
        // The paper's dual-language claim: Q1 in both languages yields the
        // same access patterns (hence the same candidates).
        let xquery = parse_statement(
            r#"for $sec in SECURITY('SDOC')/Security
               where $sec/Symbol = "BCIIPRC"
               return $sec"#,
        )
        .unwrap();
        let sqlxml = parse_statement(
            r#"SELECT * FROM SDOC WHERE XMLEXISTS('$d/Security[Symbol = "BCIIPRC"]')"#,
        )
        .unwrap();
        let nx = normalize(&xquery).unwrap();
        let ns = normalize(&sqlxml).unwrap();
        assert_eq!(nx.collection, ns.collection);
        assert_eq!(nx.root, ns.root);
        // The same compare pattern is exposed.
        let px: Vec<String> = nx.patterns.iter().map(|p| p.linear.to_string()).collect();
        let ps: Vec<String> = ns.patterns.iter().map(|p| p.linear.to_string()).collect();
        assert_eq!(px, ps);
    }

    #[test]
    fn multiple_xmlexists_conditions_conjoin() {
        let q = parse_sqlxml(
            r#"SELECT * FROM SDOC
               WHERE XMLEXISTS('$d/Security[Yield > 4.5]')
                 AND XMLEXISTS('$d/Security/SecInfo[Sector = "Energy"]')"#,
        )
        .unwrap();
        let n = normalize(&Statement::Query(q)).unwrap();
        let pats: Vec<String> = n.patterns.iter().map(|p| p.linear.to_string()).collect();
        assert!(pats.contains(&"/Security/Yield".to_string()), "{pats:?}");
        assert!(
            pats.contains(&"/Security/SecInfo/Sector".to_string()),
            "{pats:?}"
        );
        // Plus the navigation existence for the nested path.
        assert!(pats.contains(&"/Security/SecInfo".to_string()), "{pats:?}");
    }

    #[test]
    fn xmlquery_projections_become_returns() {
        let q = parse_sqlxml(
            r#"SELECT XMLQUERY('$d/Security/Name'), XMLQUERY('$d/Security/Price/LastTrade')
               FROM SDOC
               WHERE XMLEXISTS('$d/Security[Symbol = "X"]')"#,
        )
        .unwrap();
        assert_eq!(q.returns.len(), 2);
        let n = normalize(&Statement::Query(q)).unwrap();
        let rets: Vec<String> = n.returns.iter().map(|r| r.to_string()).collect();
        assert_eq!(rets, vec!["/Security/Name", "/Security/Price/LastTrade"]);
    }

    #[test]
    fn mismatched_roots_are_rejected() {
        let err = parse_sqlxml(
            r#"SELECT * FROM SDOC
               WHERE XMLEXISTS('$d/Security[Yield > 1]') AND XMLEXISTS('$d/Order[id = 1]')"#,
        )
        .unwrap_err();
        assert!(err.message.contains("root element"), "{err}");
    }

    #[test]
    fn parse_statement_dispatches_select() {
        let stmt =
            parse_statement(r#"select * from SDOC where xmlexists('$d/Security[PE >= 10]')"#)
                .unwrap();
        assert_eq!(stmt.collection(), "SDOC");
        assert!(!stmt.is_modification());
    }

    #[test]
    fn deep_predicates_keep_anchoring() {
        let q = parse_sqlxml(
            r#"SELECT * FROM CDOC
               WHERE XMLEXISTS('$d/Customer/Accounts/Account[Balance > 150000]')"#,
        )
        .unwrap();
        let n = normalize(&Statement::Query(q)).unwrap();
        let pats: Vec<String> = n.patterns.iter().map(|p| p.linear.to_string()).collect();
        assert!(
            pats.contains(&"/Customer/Accounts/Account/Balance".to_string()),
            "{pats:?}"
        );
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_sqlxml("SELECT").is_err());
        assert!(parse_sqlxml("SELECT * FROM").is_err());
        assert!(parse_sqlxml("SELECT * FROM T WHERE XMLEXISTS(42)").is_err());
        assert!(parse_sqlxml("SELECT * FROM T WHERE XMLEXISTS('$d')").is_err());
        assert!(parse_sqlxml("SELECT * FROM T").is_err()); // no patterns at all
    }
}
