//! Global string interner for step names.
//!
//! Every concrete name test in a [`crate::LinearPath`] carries a [`Sym`]
//! instead of an owned `String`: a `Copy` handle pairing a dense `u32` id
//! with a `&'static str` borrowed from the process-wide registry. Equality
//! and hashing compare the id (one integer), resolution to text is a field
//! read (no lock), and steps become `Copy` — which is what lets the hot
//! consumers (containment, generalization, candidate dedup) stop being
//! string-shaped.
//!
//! The registry leaks each distinct name once (`Box::leak`), so its
//! footprint is bounded by the vocabulary of distinct element/attribute
//! names ever parsed — small and workload-shaped, the same trade the
//! document-side `xia_xml::Interner` makes with its arena.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// Interned step name: a `Copy` symbol with O(1) equality, hashing, and
/// lock-free resolution to `&'static str`.
#[derive(Clone, Copy)]
pub struct Sym {
    id: u32,
    name: &'static str,
}

impl Sym {
    /// The interned text.
    #[inline]
    pub fn as_str(self) -> &'static str {
        self.name
    }

    /// Dense registry id (allocation order). Stable within a process;
    /// never persisted.
    #[inline]
    pub fn id(self) -> u32 {
        self.id
    }
}

impl PartialEq for Sym {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Sym {}

impl std::hash::Hash for Sym {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print as the quoted text so debug output of name tests reads
        // like the pre-interning representation.
        write!(f, "{:?}", self.name)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

struct Registry {
    map: HashMap<&'static str, Sym>,
}

fn registry() -> &'static RwLock<Registry> {
    static REGISTRY: OnceLock<RwLock<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        RwLock::new(Registry {
            map: HashMap::new(),
        })
    })
}

/// Interns a name, returning its symbol. Idempotent: the same text always
/// yields the same symbol, so `intern(a) == intern(b) ⟺ a == b`.
pub fn intern(name: &str) -> Sym {
    let reg = registry();
    // Fast path: shared read lock for the (overwhelmingly common) case of
    // an already-interned name.
    {
        let guard = reg.read().unwrap_or_else(|e| e.into_inner());
        if let Some(&sym) = guard.map.get(name) {
            return sym;
        }
    }
    let mut guard = reg.write().unwrap_or_else(|e| e.into_inner());
    // Double-check under the write lock: another thread may have interned
    // the name between our read and write acquisitions.
    if let Some(&sym) = guard.map.get(name) {
        return sym;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    let sym = Sym {
        id: guard.map.len() as u32,
        name: leaked,
    };
    guard.map.insert(leaked, sym);
    sym
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips_and_is_idempotent() {
        let a = intern("Security");
        let b = intern("Security");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "Security");
        let c = intern("Symbol-test-distinct");
        assert_ne!(a, c);
        assert_eq!(c.as_str(), "Symbol-test-distinct");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let syms: Vec<Sym> = (0..200).map(|i| intern(&format!("intern_t_{i}"))).collect();
        let mut ids: Vec<u32> = syms.iter().map(|s| s.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200, "symbol ids must be unique per name");
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("intern_t_{i}"));
        }
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64)
                        .map(|i| intern(&format!("race_{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles
            .into_iter()
            .map(|h| h.join().expect("interner thread"))
            .collect();
        for row in &results[1..] {
            assert_eq!(row, &results[0], "same text must intern identically");
        }
    }
}
