//! XPath AST with predicates.
//!
//! Workload queries may place predicates at arbitrary steps
//! (`/Security[Yield>4.5]/SecInfo`), while index *patterns* are predicate-
//! free [`crate::LinearPath`]s — exactly the paper's setup (Section III).

use crate::linear::{Axis, LinearPath, LinearStep, NameTest};
use std::fmt;

/// Comparison operator in a value predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Whether the operator is an equality (as opposed to a range) test.
    pub fn is_equality(self) -> bool {
        matches!(self, CmpOp::Eq)
    }

    /// Evaluates the comparison over f64 keys.
    pub fn eval_num(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// Evaluates the comparison over string keys.
    pub fn eval_str(self, lhs: &str, rhs: &str) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A literal value in a predicate. Its type determines the candidate index
/// type (string vs numerical, as in Table I).
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A string literal.
    Str(String),
    /// A numeric literal.
    Num(f64),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "\"{s}\""),
            Literal::Num(n) => write!(f, "{n}"),
        }
    }
}

/// A predicate attached to a path step.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `[rel op literal]` — value comparison on a relative path (empty
    /// relative path means the context node itself, i.e. `[. = "x"]`).
    Compare {
        /// Relative linear path from the step's node to the tested leaf.
        rel: Vec<LinearStep>,
        /// Comparison operator.
        op: CmpOp,
        /// Compared literal.
        value: Literal,
    },
    /// `[rel]` — structural existence test.
    Exists {
        /// Relative linear path that must have at least one match.
        rel: Vec<LinearStep>,
    },
    /// `[p1 or p2 ...]` — disjunction of comparison/existence tests. The
    /// optimizer can answer a disjunction with index-ORing when every
    /// branch is indexable.
    Or(Vec<Predicate>),
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_rel(f: &mut fmt::Formatter<'_>, rel: &[LinearStep]) -> fmt::Result {
            if rel.is_empty() {
                return f.write_str(".");
            }
            for (i, s) in rel.iter().enumerate() {
                // The leading axis separator is implicit for the first step
                // of a relative path unless it is a descendant axis.
                let sep = match (i, s.axis) {
                    (0, Axis::Child) => "",
                    (0, Axis::Descendant) => ".//",
                    (_, Axis::Child) => "/",
                    (_, Axis::Descendant) => "//",
                };
                f.write_str(sep)?;
                match s.test {
                    NameTest::Name(n) => f.write_str(n.as_str())?,
                    NameTest::Wildcard => f.write_str("*")?,
                }
            }
            Ok(())
        }
        match self {
            Predicate::Compare { rel, op, value } => {
                f.write_str("[")?;
                write_rel(f, rel)?;
                write!(f, " {op} {value}]")
            }
            Predicate::Exists { rel } => {
                f.write_str("[")?;
                write_rel(f, rel)?;
                f.write_str("]")
            }
            Predicate::Or(branches) => {
                f.write_str("[")?;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" or ")?;
                    }
                    // Render the branch without its own brackets.
                    let inner = b.to_string();
                    f.write_str(inner.trim_start_matches('[').trim_end_matches(']'))?;
                }
                f.write_str("]")
            }
        }
    }
}

/// One step of a path expression, with predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// `/` or `//`.
    pub axis: Axis,
    /// Label or `*`.
    pub test: NameTest,
    /// Predicates applied at this step.
    pub predicates: Vec<Predicate>,
}

/// An absolute XPath path expression with predicates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PathExpr {
    /// The steps, from the root.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// Strips all predicates, yielding the linear skeleton.
    pub fn strip_predicates(&self) -> LinearPath {
        LinearPath::new(
            self.steps
                .iter()
                .map(|s| LinearStep {
                    axis: s.axis,
                    test: s.test,
                })
                .collect(),
        )
    }

    /// Total number of predicates across all steps.
    pub fn predicate_count(&self) -> usize {
        self.steps.iter().map(|s| s.predicates.len()).sum()
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            f.write_str(match step.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            })?;
            match step.test {
                NameTest::Name(n) => f.write_str(n.as_str())?,
                NameTest::Wildcard => f.write_str("*")?,
            }
            for p in &step.predicates {
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path_expr;

    #[test]
    fn strip_predicates_keeps_skeleton() {
        let e = parse_path_expr("/Security[Yield>4.5]/SecInfo/*/Sector").unwrap();
        assert_eq!(
            e.strip_predicates().to_string(),
            "/Security/SecInfo/*/Sector"
        );
        assert_eq!(e.predicate_count(), 1);
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "/Security[Yield > 4.5]",
            "/Security[Symbol = \"IBM\"]/Name",
            "/a//b[c/d = 3]",
            "/a[b]",
        ] {
            let e = parse_path_expr(s).unwrap();
            let printed = e.to_string();
            let again = parse_path_expr(&printed).unwrap();
            assert_eq!(e, again, "{s} → {printed}");
        }
    }

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Gt.eval_num(5.0, 4.5));
        assert!(!CmpOp::Gt.eval_num(4.0, 4.5));
        assert!(CmpOp::Eq.eval_str("a", "a"));
        assert!(CmpOp::Le.eval_num(4.5, 4.5));
        assert!(CmpOp::Ne.eval_str("a", "b"));
        assert!(CmpOp::Lt.eval_str("a", "b"));
        assert!(CmpOp::Ge.eval_num(5.0, 5.0));
    }
}
