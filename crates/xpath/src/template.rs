//! Workload-template keys: the canonical cost identity of a statement.
//!
//! Two statements with the same template key are indistinguishable to the
//! cost model — same baseline cost, same what-if cost under every candidate
//! configuration, same maintenance charge — so the advisor may cost one
//! representative and multiply by the group's accumulated frequency
//! (CoPhy-style workload compression).
//!
//! The key deliberately collapses everything the cost model ignores and
//! keeps everything it consults:
//!
//! * Queries reduce to their [`normalize`]d access structure: collection,
//!   iteration root, conjunctive patterns, disjunctive groups, and return
//!   paths. Comparison literals are collapsed to their [`ValueKind`] —
//!   equality selectivity comes from aggregate distinct counts and string
//!   ranges use a constant heuristic, so the concrete value cannot change a
//!   cost — **except** numeric range comparisons (`<`, `<=`, `>`, `>=` on a
//!   number), whose selectivity is read from a per-path histogram at the
//!   literal's position; those keep the exact bit pattern of the value.
//! * Modifications keep their full surface structure (via `Debug`):
//!   maintenance cost depends on the inserted payload, the set of matched
//!   target documents, and the updated path, so nothing is safe to
//!   collapse.
//!
//! [`template_fingerprint`] hashes the key to a stable `u64` used to derive
//! content-addressed fault salts, making injected fault verdicts a function
//! of *what* a statement is rather than *where* it sits in the workload —
//! the property that keeps compression lossless under fault injection.

use crate::ast::{CmpOp, Literal};
use crate::normalize::{normalize, AccessPattern, PatternPred};
use crate::statement::Statement;
use std::fmt::Write as _;

/// Appends the canonical form of one access pattern to `out`.
fn push_pattern(out: &mut String, p: &AccessPattern) {
    let _ = write!(out, "{}", p.linear);
    match &p.pred {
        PatternPred::Exists => out.push_str("?ex"),
        PatternPred::Compare(op, lit) => {
            let _ = write!(out, "?{op:?}");
            match (op, lit) {
                // Numeric range selectivity is histogram-driven at the
                // literal's value: the exact bits are part of the identity.
                (CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge, Literal::Num(v)) => {
                    let _ = write!(out, ":n{:016x}", v.to_bits());
                }
                (_, Literal::Num(_)) => out.push_str(":n"),
                (_, Literal::Str(_)) => out.push_str(":s"),
            }
        }
    }
}

/// The canonical template key of a statement: equal keys ⇒ equal costs
/// under every configuration the advisor can propose.
pub fn template_key(stmt: &Statement) -> String {
    if stmt.is_modification() {
        // Maintenance cost is content-dependent (inserted payload, matched
        // target documents, updated path): keep the whole statement.
        return format!("m|{stmt:?}");
    }
    let mut out = String::from("q|");
    match normalize(stmt) {
        Some(n) => {
            let _ = write!(out, "{}|{}", n.collection, n.root);
            for p in &n.patterns {
                out.push('|');
                push_pattern(&mut out, p);
            }
            for g in &n.or_groups {
                out.push_str("|or(");
                for (i, p) in g.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_pattern(&mut out, p);
                }
                out.push(')');
            }
            for r in &n.returns {
                let _ = write!(out, "|ret:{r}");
            }
        }
        // Unreachable for queries today (only inserts normalize to None),
        // but stay total: fall back to the exact statement.
        None => {
            let _ = write!(out, "{stmt:?}");
        }
    }
    out
}

/// FNV-1a fingerprint of [`template_key`]: a stable content hash usable as
/// a fault-stream salt or compact template identity.
pub fn template_fingerprint(stmt: &Statement) -> u64 {
    fnv1a(template_key(stmt).as_bytes())
}

/// FNV-1a 64-bit hash (std-only, stable across platforms and runs).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xquery::parse_statement;

    fn key(s: &str) -> String {
        template_key(&parse_statement(s).unwrap())
    }

    #[test]
    fn equality_literals_collapse() {
        let a = key(r#"for $s in S('C')/a where $s/b = "x" return $s"#);
        let b = key(r#"for $s in S('C')/a where $s/b = "y" return $s"#);
        assert_eq!(a, b);
        // ...but a different value *kind* does not collapse.
        let c = key(r#"for $s in S('C')/a where $s/b = 3 return $s"#);
        assert_ne!(a, c);
    }

    #[test]
    fn numeric_range_literals_are_kept() {
        let a = key("for $s in S('C')/a where $s/b > 1 return $s");
        let b = key("for $s in S('C')/a where $s/b > 2 return $s");
        assert_ne!(a, b);
        let a2 = key("for $s in S('C')/a where $s/b > 1 return $s");
        assert_eq!(a, a2);
    }

    #[test]
    fn numeric_equality_collapses_but_op_distinguishes() {
        let eq1 = key("for $s in S('C')/a where $s/b = 1 return $s");
        let eq2 = key("for $s in S('C')/a where $s/b = 2 return $s");
        assert_eq!(eq1, eq2);
        let ge1 = key("for $s in S('C')/a where $s/b >= 1 return $s");
        assert_ne!(eq1, ge1);
    }

    #[test]
    fn structure_distinguishes() {
        let a = key("for $s in S('C')/a return $s");
        let b = key("for $s in S('C')/a/b return $s");
        let c = key("for $s in S('D')/a return $s");
        assert_ne!(a, b);
        assert_ne!(a, c);
        let ex = key("for $s in S('C')/a where $s/b return $s");
        assert_ne!(a, ex);
    }

    #[test]
    fn returns_and_or_groups_matter() {
        let a = key("for $s in S('C')/a return $s");
        let b = key("for $s in S('C')/a return $s/b");
        assert_ne!(a, b);
        let o1 = key(r#"collection('C')/a[b = 1 or c = 2]"#);
        let o2 = key(r#"collection('C')/a[b = 1]"#);
        assert_ne!(o1, o2);
    }

    #[test]
    fn modifications_never_collapse_content() {
        let i1 = key("insert into C <a><b>1</b></a>");
        let i2 = key("insert into C <a><b>2</b></a>");
        assert_ne!(i1, i2);
        // Update values feed maintenance cost; keep them distinct.
        let u1 = key("update C set /a/x = 1 where /a");
        let u2 = key("update C set /a/x = 2 where /a");
        assert_ne!(u1, u2);
        let d1 = key("delete from C where /a[b = 1]");
        let d2 = key("delete from C where /a[b = 2]");
        assert_ne!(d1, d2);
        assert!(i1.starts_with("m|"));
    }

    #[test]
    fn identical_statements_share_fingerprint() {
        let s1 = parse_statement(r#"for $s in S('C')/a where $s/b = "x" return $s"#).unwrap();
        let s2 = parse_statement(r#"for $s in S('C')/a where $s/b = "z" return $s"#).unwrap();
        assert_eq!(template_fingerprint(&s1), template_fingerprint(&s2));
    }

    #[test]
    fn fnv1a_is_stable() {
        // Known FNV-1a vectors: the empty string and "a".
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
