//! Arena-based XML document model.

use crate::interner::Symbol;
use crate::paths::PathId;
// (Symbol is used in public fields and method signatures below.)
use crate::value::Value;
use crate::Vocabulary;

/// Index of a node within its [`Document`] arena. Node ids are assigned in
/// document (pre-) order, so comparing ids compares document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index of this node id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Kind of a node. Attributes are modeled as leaf children of their owner
/// element (with their name participating in the rooted path), which is how
/// the index patterns of the paper address them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node.
    Element,
    /// An attribute node (always a leaf with a value).
    Attribute,
}

/// A single XML node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Interned element/attribute name.
    pub name: Symbol,
    /// Parent node, `None` for the document root.
    pub parent: Option<NodeId>,
    /// Children in document order (attributes first).
    pub children: Vec<NodeId>,
    /// Interned rooted label path of this node.
    pub path: PathId,
    /// Text content for leaf nodes, `None` for interior elements.
    pub value: Option<Value>,
    /// Element or attribute.
    pub kind: NodeKind,
}

/// An XML document: an arena of nodes with a single root element.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Creates a document from a pre-built arena. The first node must be the
    /// root.
    pub(crate) fn from_arena(nodes: Vec<Node>) -> Self {
        debug_assert!(!nodes.is_empty(), "document must have a root");
        debug_assert!(nodes[0].parent.is_none(), "node 0 must be the root");
        Self { nodes }
    }

    /// The root element of the document.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Borrow a node.
    ///
    /// # Panics
    /// Panics if `id` is out of range for this document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes in the document.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document has no nodes (never true for parsed documents).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all node ids in document order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over `(NodeId, &Node)` in document order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Returns the first child of `id` with the given name, if any.
    pub fn child_named(&self, id: NodeId, name: Symbol) -> Option<NodeId> {
        self.node(id)
            .children
            .iter()
            .copied()
            .find(|&c| self.node(c).name == name)
    }

    /// Collects the text value of the first descendant reachable via the
    /// given child-axis label sequence.
    pub fn value_at(&self, labels: &[Symbol]) -> Option<&Value> {
        let mut cur = self.root();
        for &label in labels {
            cur = self.child_named(cur, label)?;
        }
        self.node(cur).value.as_ref()
    }

    /// Renders the rooted path of a node for debugging.
    pub fn path_of(&self, id: NodeId, vocab: &Vocabulary) -> String {
        vocab.path_string(self.node(id).path)
    }

    /// Replaces the value of a node (used by update execution).
    ///
    /// # Panics
    /// Panics if `id` is out of range for this document.
    pub fn set_value(&mut self, id: NodeId, value: Option<Value>) {
        self.nodes[id.index()].value = value;
    }

    /// Re-expresses this document against another vocabulary: every name is
    /// re-interned and every rooted path re-derived in node (pre-)order.
    ///
    /// This is the merge step of parallel ingestion: worker threads parse
    /// documents against private vocabularies, and the coordinator remaps
    /// them into the collection's shared vocabulary in input order. Because
    /// nodes are visited in preorder and each node interns its name and
    /// then its path — the exact sequence a direct parse performs — the
    /// shared vocabulary ends up byte-identical to a sequential parse.
    ///
    /// # Panics
    /// Panics if a symbol or path id in the document did not come from
    /// `from`.
    pub fn remap(&self, from: &Vocabulary, into: &mut Vocabulary) -> Document {
        let mut nodes: Vec<Node> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let name = into.names.intern(from.names.resolve(n.name));
            // Preorder guarantees the parent was remapped already.
            let parent_path = n.parent.map(|p| nodes[p.index()].path);
            let path = into.paths.extend(parent_path, name);
            nodes.push(Node {
                name,
                parent: n.parent,
                children: n.children.clone(),
                path,
                value: n.value.clone(),
                kind: n.kind,
            });
        }
        Document::from_arena(nodes)
    }

    /// Total bytes of value text stored in the document (used by the size
    /// model in the storage layer).
    pub fn value_bytes(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| n.value.as_ref())
            .map(|v| v.as_str().len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::DocBuilder;
    use crate::Vocabulary;

    #[test]
    fn document_order_ids() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "Security");
        b.leaf("Symbol", "IBM");
        b.begin("SecInfo");
        b.leaf("Sector", "Tech");
        b.end();
        let doc = b.finish();
        // root, Symbol, SecInfo, Sector
        assert_eq!(doc.len(), 4);
        let ids: Vec<u32> = doc.node_ids().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn value_at_navigates_child_axis() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "Security");
        b.begin("SecInfo");
        b.leaf("Sector", "Energy");
        b.end();
        let doc = b.finish();
        let secinfo = vocab.lookup_name("SecInfo").unwrap();
        let sector = vocab.lookup_name("Sector").unwrap();
        assert_eq!(
            doc.value_at(&[secinfo, sector]).map(|v| v.as_str()),
            Some("Energy")
        );
        assert!(doc.value_at(&[sector]).is_none());
    }

    #[test]
    fn paths_are_rooted() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "a");
        b.begin("b");
        b.leaf("c", "1");
        b.end();
        let doc = b.finish();
        let last = doc.nodes().last().unwrap();
        assert_eq!(doc.path_of(last.0, &vocab), "/a/b/c");
    }
}
