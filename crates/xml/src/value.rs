//! Typed leaf values.

use std::fmt;

/// The text content of a leaf element or attribute, with its numeric
/// interpretation (if any) computed once at ingestion time.
///
/// The paper's candidate indexes are typed (`string` vs `numerical`, Table
/// I); the storage layer keeps both views so either index kind can be built
/// over the same nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    raw: Box<str>,
    num: Option<f64>,
}

impl Value {
    /// Creates a value from raw text, deriving the numeric view.
    pub fn new(raw: &str) -> Self {
        let trimmed = raw.trim();
        let num = if trimmed.is_empty() {
            None
        } else {
            trimmed.parse::<f64>().ok().filter(|n| n.is_finite())
        };
        Self {
            raw: raw.into(),
            num,
        }
    }

    /// The raw text of the value.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// The numeric interpretation, if the text parses as a finite number.
    pub fn as_num(&self) -> Option<f64> {
        self.num
    }

    /// Whether the value has a numeric interpretation.
    pub fn is_numeric(&self) -> bool {
        self.num.is_some()
    }

    /// Approximate width in bytes of the value when stored as an index key.
    pub fn key_width(&self) -> usize {
        match self.num {
            Some(_) => 8,
            None => self.raw.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::new(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::new(&format_num(n))
    }
}

/// Formats a float without a trailing `.0` for integral values, matching how
/// the workload generators render numbers into XML text.
pub fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_text_gets_numeric_view() {
        let v = Value::new("4.5");
        assert_eq!(v.as_num(), Some(4.5));
        assert_eq!(v.as_str(), "4.5");
    }

    #[test]
    fn non_numeric_text_has_no_numeric_view() {
        let v = Value::new("BCIIPRC");
        assert_eq!(v.as_num(), None);
        assert!(!v.is_numeric());
    }

    #[test]
    fn whitespace_padded_numbers_parse() {
        assert_eq!(Value::new("  42 ").as_num(), Some(42.0));
    }

    #[test]
    fn infinities_and_nan_are_rejected() {
        assert_eq!(Value::new("inf").as_num(), None);
        assert_eq!(Value::new("NaN").as_num(), None);
    }

    #[test]
    fn from_f64_round_trips() {
        let v = Value::from(12.0);
        assert_eq!(v.as_str(), "12");
        assert_eq!(v.as_num(), Some(12.0));
        let v = Value::from(4.25);
        assert_eq!(v.as_str(), "4.25");
    }

    #[test]
    fn key_width_reflects_kind() {
        assert_eq!(Value::new("3.5").key_width(), 8);
        assert_eq!(Value::new("Energy").key_width(), 6);
    }
}
