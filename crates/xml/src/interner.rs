//! String interning for element and attribute names.

use std::collections::HashMap;
use std::fmt;

/// An interned name. Cheap to copy and compare; resolved back to a string
/// through the [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Returns the raw index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A simple append-only string interner.
///
/// Symbols are dense indices, so per-symbol side tables can be plain
/// vectors.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Interner {
    strings: Vec<Box<str>>,
    map: HashMap<Box<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a previously interned string without interning it.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over all interned symbols with their strings.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Security");
        let b = i.intern("Security");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "a");
        assert_eq!(i.resolve(b), "b");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.lookup("x"), None);
        let s = i.intern("x");
        assert_eq!(i.lookup("x"), Some(s));
    }

    #[test]
    fn symbols_are_dense() {
        let mut i = Interner::new();
        for (n, name) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(i.intern(name).index(), n);
        }
    }

    #[test]
    fn iter_yields_all_pairs() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let pairs: Vec<_> = i.iter().map(|(s, t)| (s.index(), t.to_string())).collect();
        assert_eq!(pairs, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }
}
