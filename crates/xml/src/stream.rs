//! Streaming (SAX-style) XML parse path.
//!
//! [`parse_document`](crate::parse_document) materializes a DOM arena and
//! is what the original prototype used everywhere. At scale, consumers that
//! only need per-path events — the interned-path arena, per-path statistics,
//! columnar leaf storage — should not pay for tree bookkeeping they ignore.
//! [`stream_document`] scans the input once and pushes semantic events into
//! a [`StreamSink`]:
//!
//! * `start_element(name, path)` — in document order, after the rooted path
//!   has been interned;
//! * `attribute(name, path, value)` — attributes of the just-opened
//!   element, in source order (attributes are leaf children in the model);
//! * `end_element(name, path, value)` — with the leaf value the element
//!   carries under the DOM parser's rules (text trimmed at close, values
//!   only on elements without element children).
//!
//! The event rules mirror `parser.rs` frame-for-frame — CDATA passes
//! verbatim, text is entity-decoded, mixed content drops stray text — so a
//! [`DocumentSink`] driven by this scanner reproduces the DOM parser's
//! output **byte-identically**: same arena order, same paths, same values,
//! same errors for malformed input. The property suite and the
//! `datapath_overhead_gate` bench hold the two paths equal.

use crate::interner::Symbol;
use crate::model::{Document, Node, NodeId, NodeKind};
use crate::parser::{decode_entities, find_sub, XmlError, MAX_XML_DEPTH};
use crate::paths::PathId;
use crate::value::Value;
use crate::Vocabulary;

/// Receiver of streaming parse events. Event order is document order; every
/// `start_element` is matched by exactly one `end_element`, and `attribute`
/// events arrive between an element's start and any of its content.
pub trait StreamSink {
    /// An element opened; `path` is its interned rooted label path.
    fn start_element(&mut self, name: Symbol, path: PathId);
    /// An attribute of the most recently started element.
    fn attribute(&mut self, name: Symbol, path: PathId, value: Value);
    /// An element closed. `value` is its leaf value: present only when the
    /// element had no element children and non-whitespace text content.
    fn end_element(&mut self, name: Symbol, path: PathId, value: Option<Value>);
}

/// Parses `input`, streaming events into `sink` while interning names and
/// rooted paths in `vocab`. Accepts exactly the inputs
/// [`crate::parse_document`] accepts.
pub fn stream_document(
    input: &str,
    vocab: &mut Vocabulary,
    sink: &mut impl StreamSink,
) -> Result<(), XmlError> {
    Streamer {
        bytes: input.as_bytes(),
        pos: 0,
        vocab,
    }
    .parse(sink)
}

/// Streaming drop-in for [`crate::parse_document`]: same `Document`, same
/// vocabulary effects, same errors, but built through the event path.
pub fn parse_document_streaming(input: &str, vocab: &mut Vocabulary) -> Result<Document, XmlError> {
    let mut sink = DocumentSink::new();
    stream_document(input, vocab, &mut sink)?;
    sink.into_document()
        .map_err(|message| XmlError { offset: 0, message })
}

/// Per-open-element scan state: mirrors the DOM parser's `Frame`.
struct OpenElement {
    name: Symbol,
    path: PathId,
    text: String,
    element_children: usize,
}

struct Streamer<'a, 'v> {
    bytes: &'a [u8],
    pos: usize,
    vocab: &'v mut Vocabulary,
}

impl Streamer<'_, '_> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        match find_sub(&self.bytes[self.pos..], end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct, expected `{end}`"))),
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.pos += 2;
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.pos += 9;
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn parse(mut self, sink: &mut impl StreamSink) -> Result<(), XmlError> {
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        let mut stack: Vec<OpenElement> = Vec::new();
        let mut root_seen = false;

        self.parse_open_tag(&mut stack, &mut root_seen, sink)?;
        while !stack.is_empty() {
            match self.peek() {
                None => return Err(self.err("unexpected end of input inside element")),
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.pos += 4;
                        self.skip_until("-->")?;
                    } else if self.starts_with("<![CDATA[") {
                        self.pos += 9;
                        let start = self.pos;
                        self.skip_until("]]>")?;
                        // CDATA is character data: appended verbatim, never
                        // entity-decoded.
                        let text = std::str::from_utf8(&self.bytes[start..self.pos - 3])
                            .map_err(|_| self.err("invalid UTF-8 in CDATA"))?;
                        stack
                            .last_mut()
                            .expect("stack non-empty in loop")
                            .text
                            .push_str(text);
                    } else if self.starts_with("</") {
                        self.parse_close_tag(&mut stack, sink)?;
                    } else if self.starts_with("<?") {
                        self.pos += 2;
                        self.skip_until("?>")?;
                    } else {
                        self.parse_open_tag(&mut stack, &mut root_seen, sink)?;
                    }
                }
                Some(_) => {
                    let text = self.parse_text()?;
                    stack
                        .last_mut()
                        .expect("stack non-empty in loop")
                        .text
                        .push_str(&text);
                }
            }
        }
        self.skip_misc()?;
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing content after root element"));
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<Symbol, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let name = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))?;
        Ok(self.vocab.names.intern(name))
    }

    fn parse_open_tag(
        &mut self,
        stack: &mut Vec<OpenElement>,
        root_seen: &mut bool,
        sink: &mut impl StreamSink,
    ) -> Result<(), XmlError> {
        self.expect("<")?;
        if stack.len() >= MAX_XML_DEPTH {
            return Err(self.err(format!(
                "element nesting deeper than {MAX_XML_DEPTH} levels"
            )));
        }
        let name = self.parse_name()?;
        if let Some(parent) = stack.last_mut() {
            parent.element_children += 1;
        } else if *root_seen {
            return Err(self.err("multiple root elements"));
        } else {
            *root_seen = true;
        }
        let parent_path = stack.last().map(|f| f.path);
        let path = self.vocab.paths.extend(parent_path, name);
        sink.start_element(name, path);
        stack.push(OpenElement {
            name,
            path,
            text: String::new(),
            element_children: 0,
        });

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'/') => {
                    self.expect("/>").map_err(|_| self.err("expected `/>`"))?;
                    let frame = stack.pop().expect("frame just pushed");
                    // A self-closed element has no text and no children.
                    sink.end_element(frame.name, frame.path, None);
                    return Ok(());
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in attribute"))?;
                    let decoded = decode_entities(raw).map_err(|m| self.err(m))?;
                    self.pos += 1;
                    let owner_path = stack.last().map(|f| f.path);
                    let attr_path = self.vocab.paths.extend(owner_path, attr_name);
                    sink.attribute(attr_name, attr_path, Value::new(&decoded));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
    }

    fn parse_close_tag(
        &mut self,
        stack: &mut Vec<OpenElement>,
        sink: &mut impl StreamSink,
    ) -> Result<(), XmlError> {
        self.expect("</")?;
        let name = self.parse_name()?;
        self.skip_ws();
        self.expect(">")?;
        let frame = stack.pop().expect("close tag with empty stack");
        if frame.name != name {
            return Err(self.err(format!(
                "mismatched close tag `{}`",
                self.vocab.names.resolve(name)
            )));
        }
        let text = frame.text.trim();
        let value = if frame.element_children == 0 && !text.is_empty() {
            Some(Value::new(text))
        } else {
            None
        };
        sink.end_element(frame.name, frame.path, value);
        Ok(())
    }

    fn parse_text(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c != b'<') {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in text"))?;
        decode_entities(raw).map_err(|m| self.err(m))
    }
}

/// A [`StreamSink`] that rebuilds the DOM arena, assigning node ids in
/// exactly the order the DOM parser does (elements at open, attributes in
/// source order). Composable: wrappers can forward events while observing
/// [`DocumentSink::next_id`] to learn the id each event will receive.
#[derive(Debug, Default)]
pub struct DocumentSink {
    nodes: Vec<Node>,
    stack: Vec<NodeId>,
}

impl DocumentSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The node id the next `start_element`/`attribute` event will be
    /// assigned (ids are dense preorder, as in the DOM parser).
    pub fn next_id(&self) -> NodeId {
        NodeId(self.nodes.len() as u32)
    }

    /// The id of the innermost open element (the one an `end_element`
    /// event will close), if any.
    pub fn open_element(&self) -> Option<NodeId> {
        self.stack.last().copied()
    }

    fn push_node(&mut self, name: Symbol, path: PathId, value: Option<Value>, kind: NodeKind) {
        let parent = self.stack.last().copied();
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name,
            parent,
            children: Vec::new(),
            path,
            value,
            kind,
        });
        if let Some(p) = parent {
            self.nodes[p.index()].children.push(id);
        }
        if kind == NodeKind::Element {
            self.stack.push(id);
        }
    }

    /// Finishes the build. Errors if no root element was streamed (cannot
    /// happen when driven by [`stream_document`], which rejects such input).
    pub fn into_document(self) -> Result<Document, String> {
        if self.nodes.is_empty() {
            return Err("streamed document had no root element".to_string());
        }
        Ok(Document::from_arena(self.nodes))
    }
}

impl StreamSink for DocumentSink {
    fn start_element(&mut self, name: Symbol, path: PathId) {
        self.push_node(name, path, None, NodeKind::Element);
    }

    fn attribute(&mut self, name: Symbol, path: PathId, value: Value) {
        self.push_node(name, path, Some(value), NodeKind::Attribute);
    }

    fn end_element(&mut self, _name: Symbol, _path: PathId, value: Option<Value>) {
        let id = self.stack.pop().expect("end_element without start_element");
        if value.is_some() {
            self.nodes[id.index()].value = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    fn both(s: &str) -> (Document, Vocabulary, Document, Vocabulary) {
        let mut v1 = Vocabulary::new();
        let d1 = parse_document(s, &mut v1).expect("dom parse");
        let mut v2 = Vocabulary::new();
        let d2 = parse_document_streaming(s, &mut v2).expect("stream parse");
        (d1, v1, d2, v2)
    }

    fn assert_identical(s: &str) {
        let (d1, v1, d2, v2) = both(s);
        assert_eq!(d1, d2, "documents differ for {s:?}");
        assert_eq!(v1, v2, "vocabularies differ for {s:?}");
    }

    #[test]
    fn streaming_matches_dom_on_representative_inputs() {
        for s in [
            "<a/>",
            "<Security><Symbol>IBM</Symbol><Yield>4.5</Yield></Security>",
            r#"<Order id="7" note="a&amp;b"><Total>10</Total></Order>"#,
            "<a><b/><c/><b><d>x</d></b></a>",
            "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b><![CDATA[x<y]]></b></a>",
            "<a><b>&lt;tag&gt; &amp; &#65;&#x42;</b></a>",
            "<a>\n  <b>1</b>\n</a>",
            "<a>hello <b>1</b> world</a>",
            "<!DOCTYPE a><a><b>1</b></a>",
            "<a><b><![CDATA[x & y &foo]]></b></a>",
            "<a x='1' y=\"two\"><z/></a>",
        ] {
            assert_identical(s);
        }
    }

    #[test]
    fn streaming_rejects_what_dom_rejects() {
        for s in [
            "<a><b></a></b>",
            "<a/>junk",
            "<a/><b/>",
            "<a><b>",
            "<a attr=\"x>",
            "<a>&#0;</a>",
            "<a>&nope;</a>",
            "",
        ] {
            let mut v1 = Vocabulary::new();
            let dom = parse_document(s, &mut v1);
            let mut v2 = Vocabulary::new();
            let stream = parse_document_streaming(s, &mut v2);
            assert!(dom.is_err() && stream.is_err(), "{s:?}");
        }
    }

    #[test]
    fn cdata_is_verbatim_through_the_streaming_path() {
        let mut vocab = Vocabulary::new();
        let doc = parse_document_streaming("<a><b><![CDATA[x & y &# &foo]]></b></a>", &mut vocab)
            .unwrap();
        let b = vocab.lookup_name("b").unwrap();
        assert_eq!(doc.value_at(&[b]).unwrap().as_str(), "x & y &# &foo");
    }

    #[test]
    fn depth_cap_matches_dom() {
        let nested = |depth: usize| {
            let mut s = String::new();
            for _ in 0..depth {
                s.push_str("<a>");
            }
            s.push('1');
            for _ in 0..depth {
                s.push_str("</a>");
            }
            s
        };
        assert_identical(&nested(MAX_XML_DEPTH - 1));
        let mut vocab = Vocabulary::new();
        assert!(parse_document_streaming(&nested(MAX_XML_DEPTH + 1), &mut vocab).is_err());
    }

    #[test]
    fn document_sink_exposes_preorder_ids() {
        let mut vocab = Vocabulary::new();
        let mut sink = DocumentSink::new();
        assert_eq!(sink.next_id(), NodeId(0));
        stream_document(r#"<a x="1"><b>2</b></a>"#, &mut vocab, &mut sink).unwrap();
        assert_eq!(sink.next_id(), NodeId(3));
        let doc = sink.into_document().unwrap();
        assert_eq!(doc.len(), 3);
    }
}
