//! Rooted label-path dictionary.
//!
//! Native XML stores keep a *path table*: every distinct rooted label path
//! (`/Security/SecInfo/StockInfo/Sector`) gets a small integer id, and every
//! node records the id of its path. The XML Index Advisor substrate relies on
//! this heavily: an index pattern denotes a set of [`PathId`]s, statistics
//! are kept per path, and partial-index builds select nodes by path id.

use crate::interner::Symbol;
use std::collections::HashMap;

/// Identifier of an interned rooted label path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

impl PathId {
    /// Returns the raw index of this path id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only dictionary of rooted label paths.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PathDictionary {
    paths: Vec<Box<[Symbol]>>,
    map: HashMap<Box<[Symbol]>, PathId>,
}

impl PathDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a rooted label path (sequence of element names from the
    /// document root down to the node).
    pub fn intern(&mut self, labels: &[Symbol]) -> PathId {
        if let Some(&id) = self.map.get(labels) {
            return id;
        }
        let id = PathId(self.paths.len() as u32);
        let boxed: Box<[Symbol]> = labels.into();
        self.paths.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Extends an existing path by one label, interning the result.
    ///
    /// `parent = None` means the new path is a root path of length one.
    pub fn extend(&mut self, parent: Option<PathId>, label: Symbol) -> PathId {
        let mut labels: Vec<Symbol> = match parent {
            Some(p) => self.labels(p).to_vec(),
            None => Vec::new(),
        };
        labels.push(label);
        self.intern(&labels)
    }

    /// Looks up a path without interning it.
    pub fn lookup(&self, labels: &[Symbol]) -> Option<PathId> {
        self.map.get(labels).copied()
    }

    /// Resolves a path id to its label sequence.
    ///
    /// # Panics
    /// Panics if `id` did not come from this dictionary.
    pub fn labels(&self, id: PathId) -> &[Symbol] {
        &self.paths[id.index()]
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterates over all `(PathId, labels)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &[Symbol])> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (PathId(i as u32), p.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(ids: &[u32]) -> Vec<Symbol> {
        ids.iter().map(|&i| Symbol(i)).collect()
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = PathDictionary::new();
        let a = d.intern(&syms(&[0, 1]));
        let b = d.intern(&syms(&[0, 1]));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn extend_builds_child_paths() {
        let mut d = PathDictionary::new();
        let root = d.extend(None, Symbol(7));
        let child = d.extend(Some(root), Symbol(8));
        assert_eq!(d.labels(root), &[Symbol(7)][..]);
        assert_eq!(d.labels(child), &[Symbol(7), Symbol(8)][..]);
    }

    #[test]
    fn different_prefixes_are_distinct_paths() {
        let mut d = PathDictionary::new();
        let a = d.intern(&syms(&[0, 2]));
        let b = d.intern(&syms(&[1, 2]));
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = PathDictionary::new();
        assert!(d.lookup(&syms(&[3])).is_none());
        let id = d.intern(&syms(&[3]));
        assert_eq!(d.lookup(&syms(&[3])), Some(id));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn iter_is_dense_and_ordered() {
        let mut d = PathDictionary::new();
        d.intern(&syms(&[0]));
        d.intern(&syms(&[0, 1]));
        let collected: Vec<usize> = d.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(collected, vec![0, 1]);
    }
}
