//! # xia-xml
//!
//! XML document model and parser used as the storage-side data model of the
//! XML Index Advisor reproduction.
//!
//! The crate provides:
//!
//! * [`Vocabulary`] — a shared dictionary that interns element/attribute
//!   names ([`Symbol`]) and *rooted label paths* ([`PathId`]). Rooted-path
//!   interning mirrors the path table used by native XML stores (e.g. DB2
//!   pureXML): every node knows the id of its `/a/b/c` label path, which
//!   makes partial-index construction, statistics collection, and index
//!   matching exact and cheap.
//! * [`Document`] — an arena-allocated XML tree with typed leaf values.
//! * [`parse_document`] — a small, dependency-free XML parser (elements,
//!   attributes, text, comments, CDATA, the five predefined entities).
//! * [`DocBuilder`] — a programmatic construction API used by the workload
//!   generators.
//! * [`write_document`] — serializer (round-trips through the parser).

pub mod builder;
pub mod interner;
pub mod model;
pub mod parser;
pub mod paths;
pub mod stream;
pub mod value;
pub mod writer;

pub use builder::DocBuilder;
pub use interner::{Interner, Symbol};
pub use model::{Document, Node, NodeId, NodeKind};
pub use parser::{decode_entities, parse_document, XmlError, MAX_XML_DEPTH};
pub use paths::{PathDictionary, PathId};
pub use stream::{parse_document_streaming, stream_document, DocumentSink, StreamSink};
pub use value::Value;
pub use writer::write_document;

/// Shared name + rooted-path dictionary for a collection of documents.
///
/// All documents stored in one collection intern their names and rooted
/// paths here, so a [`PathId`] means the same label path in every document.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Vocabulary {
    /// Interned element/attribute names.
    pub names: Interner,
    /// Interned rooted label paths.
    pub paths: PathDictionary,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves a name to its symbol if it has been interned.
    pub fn lookup_name(&self, name: &str) -> Option<Symbol> {
        self.names.lookup(name)
    }

    /// Renders a rooted path id as an XPath-style string (`/a/b/c`).
    pub fn path_string(&self, path: PathId) -> String {
        let labels = self.paths.labels(path);
        let mut out = String::new();
        for &sym in labels {
            out.push('/');
            out.push_str(self.names.resolve(sym));
        }
        out
    }
}
