//! Programmatic document construction.

use crate::model::{Document, Node, NodeId, NodeKind};
use crate::value::Value;
use crate::Vocabulary;

/// Builds a [`Document`] top-down while interning names and rooted paths in
/// a shared [`Vocabulary`].
///
/// ```
/// use xia_xml::{DocBuilder, Vocabulary};
/// let mut vocab = Vocabulary::new();
/// let mut b = DocBuilder::new(&mut vocab, "Security");
/// b.leaf("Symbol", "BCIIPRC");
/// b.begin("SecInfo");
/// b.leaf("Sector", "Energy");
/// b.end();
/// let doc = b.finish();
/// assert_eq!(doc.len(), 4);
/// ```
pub struct DocBuilder<'v> {
    vocab: &'v mut Vocabulary,
    nodes: Vec<Node>,
    stack: Vec<NodeId>,
}

impl<'v> DocBuilder<'v> {
    /// Starts a document with the given root element name.
    pub fn new(vocab: &'v mut Vocabulary, root: &str) -> Self {
        let name = vocab.names.intern(root);
        let path = vocab.paths.extend(None, name);
        let root_node = Node {
            name,
            parent: None,
            children: Vec::new(),
            path,
            value: None,
            kind: NodeKind::Element,
        };
        Self {
            vocab,
            nodes: vec![root_node],
            stack: vec![NodeId(0)],
        }
    }

    fn push_node(&mut self, name: &str, value: Option<Value>, kind: NodeKind) -> NodeId {
        let parent = *self.stack.last().expect("builder stack never empty");
        let name = self.vocab.names.intern(name);
        let parent_path = self.nodes[parent.index()].path;
        let path = self.vocab.paths.extend(Some(parent_path), name);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name,
            parent: Some(parent),
            children: Vec::new(),
            path,
            value,
            kind,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Opens a child element; subsequent nodes nest inside it until
    /// [`DocBuilder::end`].
    pub fn begin(&mut self, name: &str) -> &mut Self {
        let id = self.push_node(name, None, NodeKind::Element);
        self.stack.push(id);
        self
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// Panics on an attempt to close the root element.
    pub fn end(&mut self) -> &mut Self {
        assert!(self.stack.len() > 1, "cannot end the root element");
        self.stack.pop();
        self
    }

    /// Adds a leaf element with text content.
    pub fn leaf(&mut self, name: &str, value: impl Into<Value>) -> &mut Self {
        self.push_node(name, Some(value.into()), NodeKind::Element);
        self
    }

    /// Adds an attribute on the currently open element.
    pub fn attr(&mut self, name: &str, value: impl Into<Value>) -> &mut Self {
        self.push_node(name, Some(value.into()), NodeKind::Attribute);
        self
    }

    /// Adds an empty child element (no value, no children).
    pub fn empty(&mut self, name: &str) -> &mut Self {
        self.push_node(name, None, NodeKind::Element);
        self
    }

    /// Finishes the document.
    ///
    /// # Panics
    /// Panics if elements remain open.
    pub fn finish(self) -> Document {
        assert_eq!(self.stack.len(), 1, "unclosed elements at finish()");
        Document::from_arena(self.nodes)
    }
}

/// Names current nesting depth (root = 1); exposed for generator sanity
/// checks.
impl DocBuilder<'_> {
    /// Current open-element depth, root included.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    #[test]
    fn builds_nested_structure() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "Order");
        b.attr("id", "103");
        b.begin("Customer");
        b.leaf("Name", "Ann");
        b.end();
        b.leaf("Total", "250.5");
        let doc = b.finish();
        assert_eq!(doc.len(), 5);
        let root = doc.node(doc.root());
        assert_eq!(root.children.len(), 3);
        let attr = doc.node(root.children[0]);
        assert_eq!(attr.kind, NodeKind::Attribute);
        assert_eq!(attr.value.as_ref().unwrap().as_num(), Some(103.0));
    }

    #[test]
    #[should_panic(expected = "unclosed elements")]
    fn finish_with_open_element_panics() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "a");
        b.begin("b");
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "cannot end the root")]
    fn ending_root_panics() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "a");
        b.end();
    }

    #[test]
    fn shared_vocabulary_shares_path_ids() {
        let mut vocab = Vocabulary::new();
        let d1 = {
            let mut b = DocBuilder::new(&mut vocab, "a");
            b.leaf("x", "1");
            b.finish()
        };
        let d2 = {
            let mut b = DocBuilder::new(&mut vocab, "a");
            b.leaf("x", "2");
            b.finish()
        };
        let p1 = d1.nodes().last().unwrap().1.path;
        let p2 = d2.nodes().last().unwrap().1.path;
        assert_eq!(p1, p2);
        assert_eq!(vocab.paths.len(), 2); // /a and /a/x
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "a");
        assert_eq!(b.depth(), 1);
        b.begin("b");
        assert_eq!(b.depth(), 2);
        b.end();
        assert_eq!(b.depth(), 1);
    }
}
