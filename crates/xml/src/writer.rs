//! Document serialization.

use crate::model::{Document, NodeId, NodeKind};
use crate::Vocabulary;
use std::fmt::Write as _;

/// Serializes a document to XML text. Output round-trips through
/// [`crate::parse_document`] into an equivalent document.
pub fn write_document(doc: &Document, vocab: &Vocabulary) -> String {
    let mut out = String::with_capacity(doc.len() * 16);
    write_element(doc, vocab, doc.root(), &mut out);
    out
}

fn write_element(doc: &Document, vocab: &Vocabulary, id: NodeId, out: &mut String) {
    let node = doc.node(id);
    debug_assert_eq!(node.kind, NodeKind::Element);
    let name = vocab.names.resolve(node.name);
    let _ = write!(out, "<{name}");
    let mut element_children = Vec::new();
    for &child in &node.children {
        let c = doc.node(child);
        match c.kind {
            NodeKind::Attribute => {
                let aname = vocab.names.resolve(c.name);
                let aval = c.value.as_ref().map(|v| v.as_str()).unwrap_or("");
                let _ = write!(out, " {aname}=\"{}\"", escape(aval, true));
            }
            NodeKind::Element => element_children.push(child),
        }
    }
    match (&node.value, element_children.is_empty()) {
        (None, true) => {
            out.push_str("/>");
        }
        (Some(v), true) => {
            let _ = write!(out, ">{}</{name}>", escape(v.as_str(), false));
        }
        (_, false) => {
            out.push('>');
            for child in element_children {
                write_element(doc, vocab, child, out);
            }
            let _ = write!(out, "</{name}>");
        }
    }
}

/// Escapes text for element content or attribute values.
pub fn escape(s: &str, in_attr: bool) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if in_attr => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_document, DocBuilder};

    #[test]
    fn round_trips_through_parser() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "Security");
        b.attr("id", "9");
        b.leaf("Symbol", "A&B <co>");
        b.begin("SecInfo");
        b.leaf("Sector", "Energy");
        b.end();
        let doc = b.finish();
        let text = write_document(&doc, &vocab);
        let reparsed = parse_document(&text, &mut vocab).unwrap();
        assert_eq!(reparsed.len(), doc.len());
        let sym = vocab.lookup_name("Symbol").unwrap();
        assert_eq!(reparsed.value_at(&[sym]).unwrap().as_str(), "A&B <co>");
    }

    #[test]
    fn empty_elements_self_close() {
        let mut vocab = Vocabulary::new();
        let mut b = DocBuilder::new(&mut vocab, "a");
        b.empty("b");
        let doc = b.finish();
        assert_eq!(write_document(&doc, &vocab), "<a><b/></a>");
    }

    #[test]
    fn escape_handles_attr_quotes() {
        assert_eq!(escape("a\"b", true), "a&quot;b");
        assert_eq!(escape("a\"b", false), "a\"b");
    }
}
