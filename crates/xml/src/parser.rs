//! A small, dependency-free XML parser.
//!
//! Supports the subset of XML that the workload generators and tests emit:
//! elements, attributes, character data, CDATA sections, comments, an
//! optional XML declaration, and the five predefined entities. Namespaces
//! are treated as part of the name (single-namespace assumption, see
//! DESIGN.md §6).

use crate::interner::Symbol;
use crate::model::{Document, Node, NodeId, NodeKind};
use crate::value::Value;
use crate::Vocabulary;
use std::fmt;

/// Parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Parses an XML document, interning names and rooted paths in `vocab`.
pub fn parse_document(input: &str, vocab: &mut Vocabulary) -> Result<Document, XmlError> {
    Parser {
        bytes: input.as_bytes(),
        pos: 0,
        vocab,
    }
    .parse()
}

struct Parser<'a, 'v> {
    bytes: &'a [u8],
    pos: usize,
    vocab: &'v mut Vocabulary,
}

struct Frame {
    node: NodeId,
    text: String,
    element_children: usize,
}

impl<'a, 'v> Parser<'a, 'v> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        match find_sub(&self.bytes[self.pos..], end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct, expected `{end}`"))),
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.pos += 2;
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.pos += 9;
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn parse(mut self) -> Result<Document, XmlError> {
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        let mut nodes: Vec<Node> = Vec::new();
        let mut stack: Vec<Frame> = Vec::new();

        self.parse_open_tag(&mut nodes, &mut stack)?;
        while !stack.is_empty() {
            match self.peek() {
                None => return Err(self.err("unexpected end of input inside element")),
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.pos += 4;
                        self.skip_until("-->")?;
                    } else if self.starts_with("<![CDATA[") {
                        self.pos += 9;
                        let start = self.pos;
                        self.skip_until("]]>")?;
                        let text = std::str::from_utf8(&self.bytes[start..self.pos - 3])
                            .map_err(|_| self.err("invalid UTF-8 in CDATA"))?;
                        stack
                            .last_mut()
                            .expect("stack non-empty in loop")
                            .text
                            .push_str(text);
                    } else if self.starts_with("</") {
                        self.parse_close_tag(&mut nodes, &mut stack)?;
                    } else if self.starts_with("<?") {
                        self.pos += 2;
                        self.skip_until("?>")?;
                    } else {
                        self.parse_open_tag(&mut nodes, &mut stack)?;
                    }
                }
                Some(_) => {
                    let text = self.parse_text()?;
                    stack
                        .last_mut()
                        .expect("stack non-empty in loop")
                        .text
                        .push_str(&text);
                }
            }
        }
        self.skip_misc()?;
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing content after root element"));
        }
        Ok(Document::from_arena(nodes))
    }

    fn parse_name(&mut self) -> Result<Symbol, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let name = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))?;
        Ok(self.vocab.names.intern(name))
    }

    fn add_node(
        &mut self,
        nodes: &mut Vec<Node>,
        stack: &[Frame],
        name: Symbol,
        value: Option<Value>,
        kind: NodeKind,
    ) -> NodeId {
        let parent = stack.last().map(|f| f.node);
        let parent_path = parent.map(|p| nodes[p.index()].path);
        let path = self.vocab.paths.extend(parent_path, name);
        let id = NodeId(nodes.len() as u32);
        nodes.push(Node {
            name,
            parent,
            children: Vec::new(),
            path,
            value,
            kind,
        });
        if let Some(p) = parent {
            nodes[p.index()].children.push(id);
        }
        id
    }

    fn parse_open_tag(
        &mut self,
        nodes: &mut Vec<Node>,
        stack: &mut Vec<Frame>,
    ) -> Result<(), XmlError> {
        self.expect("<")?;
        if stack.len() >= MAX_XML_DEPTH {
            return Err(self.err(format!(
                "element nesting deeper than {MAX_XML_DEPTH} levels"
            )));
        }
        let name = self.parse_name()?;
        if !stack.is_empty() {
            stack
                .last_mut()
                .expect("checked non-empty")
                .element_children += 1;
        } else if !nodes.is_empty() {
            return Err(self.err("multiple root elements"));
        }
        let id = self.add_node(nodes, stack, name, None, NodeKind::Element);
        stack.push(Frame {
            node: id,
            text: String::new(),
            element_children: 0,
        });

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'/') => {
                    self.expect("/>").map_err(|_| self.err("expected `/>`"))?;
                    let frame = stack.pop().expect("frame just pushed");
                    debug_assert_eq!(frame.node, id);
                    return Ok(());
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in attribute"))?;
                    let decoded = decode_entities(raw).map_err(|m| self.err(m))?;
                    self.pos += 1;
                    // Attributes are leaf children; they do not count as
                    // element children for leaf-value purposes.
                    self.add_node(
                        nodes,
                        stack,
                        attr_name,
                        Some(Value::new(&decoded)),
                        NodeKind::Attribute,
                    );
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
    }

    fn parse_close_tag(
        &mut self,
        nodes: &mut [Node],
        stack: &mut Vec<Frame>,
    ) -> Result<(), XmlError> {
        self.expect("</")?;
        let name = self.parse_name()?;
        self.skip_ws();
        self.expect(">")?;
        let frame = stack.pop().expect("close tag with empty stack");
        let node = &mut nodes[frame.node.index()];
        if node.name != name {
            return Err(self.err(format!(
                "mismatched close tag `{}`",
                self.vocab.names.resolve(name)
            )));
        }
        let text = frame.text.trim();
        if frame.element_children == 0 && !text.is_empty() {
            node.value = Some(Value::new(text));
        }
        Ok(())
    }

    fn parse_text(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c != b'<') {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in text"))?;
        decode_entities(raw).map_err(|m| self.err(m))
    }
}

pub(crate) fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Maximum element nesting depth. Real document collections nest a few
/// dozen levels; a hostile chain of thousands of open tags would make the
/// rooted-path dictionary quadratic (each node's path copies its parent's),
/// so the parser rejects absurd depth with a typed error instead.
pub const MAX_XML_DEPTH: usize = 512;

/// Longest accepted entity reference body (between `&` and `;`). The
/// longest legitimate reference is a hex character reference like
/// `&#x10FFFF;`; the cap keeps a stray `&` in hostile input from scanning
/// (and echoing back) unbounded text while hunting for a `;`.
const MAX_ENTITY_LEN: usize = 32;

/// Validates a character reference against the XML 1.0 `Char` production:
/// C0 controls other than tab, newline, and carriage return are not XML
/// characters, so `&#0;`, `&#x1;`, … must be rejected rather than smuggled
/// into path values. Surrogates and out-of-range code points are already
/// rejected by `char::from_u32`; the non-characters U+FFFE/U+FFFF are
/// excluded here as well.
fn char_ref(code: u32, entity: &str) -> Result<char, String> {
    let c = char::from_u32(code).ok_or_else(|| format!("invalid code point in `&{entity};`"))?;
    let is_forbidden_control = c < '\u{20}' && !matches!(c, '\t' | '\n' | '\r');
    if is_forbidden_control || matches!(c, '\u{FFFE}' | '\u{FFFF}') {
        return Err(format!(
            "character reference `&{entity};` is not an XML character"
        ));
    }
    Ok(c)
}

/// Decodes the five predefined XML entities plus decimal/hex character
/// references.
pub fn decode_entities(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        // Byte search: `;` is ASCII, so this never splits a code point,
        // even when the window cuts through a multi-byte character.
        let window = &rest.as_bytes()[..rest.len().min(MAX_ENTITY_LEN + 2)];
        let semi = window
            .iter()
            .position(|&b| b == b';')
            .ok_or_else(|| "unterminated or overlong entity reference".to_string())?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad character reference `&{entity};`"))?;
                out.push(char_ref(code, entity)?);
            }
            _ if entity.starts_with('#') => {
                let code = entity[1..]
                    .parse::<u32>()
                    .map_err(|_| format!("bad character reference `&{entity};`"))?;
                out.push(char_ref(code, entity)?);
            }
            _ => return Err(format!("unknown entity `&{entity};`")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> (Document, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let doc = parse_document(s, &mut vocab).expect("parse failed");
        (doc, vocab)
    }

    #[test]
    fn parses_simple_document() {
        let (doc, vocab) = parse("<Security><Symbol>IBM</Symbol><Yield>4.5</Yield></Security>");
        assert_eq!(doc.len(), 3);
        let sym = vocab.lookup_name("Symbol").unwrap();
        assert_eq!(doc.value_at(&[sym]).unwrap().as_str(), "IBM");
        let yld = vocab.lookup_name("Yield").unwrap();
        assert_eq!(doc.value_at(&[yld]).unwrap().as_num(), Some(4.5));
    }

    #[test]
    fn parses_attributes_as_leaf_children() {
        let (doc, vocab) = parse(r#"<Order id="7"><Total>10</Total></Order>"#);
        let id = vocab.lookup_name("id").unwrap();
        assert_eq!(doc.value_at(&[id]).unwrap().as_num(), Some(7.0));
        assert_eq!(doc.node(doc.root()).children.len(), 2);
    }

    #[test]
    fn self_closing_elements() {
        let (doc, _) = parse("<a><b/><c/></a>");
        assert_eq!(doc.len(), 3);
    }

    #[test]
    fn declaration_comments_and_cdata() {
        let (doc, vocab) =
            parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b><![CDATA[x<y]]></b></a>");
        let b = vocab.lookup_name("b").unwrap();
        assert_eq!(doc.value_at(&[b]).unwrap().as_str(), "x<y");
    }

    #[test]
    fn decodes_entities() {
        let (doc, vocab) = parse("<a><b>&lt;tag&gt; &amp; &#65;&#x42;</b></a>");
        let b = vocab.lookup_name("b").unwrap();
        assert_eq!(doc.value_at(&[b]).unwrap().as_str(), "<tag> & AB");
    }

    #[test]
    fn whitespace_only_text_is_not_a_value() {
        let (doc, _) = parse("<a>\n  <b>1</b>\n</a>");
        assert!(doc.node(doc.root()).value.is_none());
    }

    #[test]
    fn mismatched_tags_error() {
        let mut vocab = Vocabulary::new();
        let err = parse_document("<a><b></a></b>", &mut vocab).unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut vocab = Vocabulary::new();
        assert!(parse_document("<a/>junk", &mut vocab).is_err());
    }

    #[test]
    fn multiple_roots_error() {
        let mut vocab = Vocabulary::new();
        assert!(parse_document("<a/><b/>", &mut vocab).is_err());
    }

    #[test]
    fn unterminated_document_errors() {
        let mut vocab = Vocabulary::new();
        assert!(parse_document("<a><b>", &mut vocab).is_err());
        assert!(parse_document("<a attr=\"x>", &mut vocab).is_err());
    }

    #[test]
    fn doctype_is_skipped() {
        let (doc, _) = parse("<!DOCTYPE a><a><b>1</b></a>");
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn mixed_content_keeps_structure_and_drops_stray_text() {
        // Mixed content is outside the indexable subset; we keep the element
        // structure and drop interleaved text (documented simplification).
        let (doc, _) = parse("<a>hello <b>1</b> world</a>");
        assert_eq!(doc.len(), 2);
        assert!(doc.node(doc.root()).value.is_none());
    }

    #[test]
    fn overlong_entity_reference_is_rejected_without_scanning() {
        // A stray `&` followed by a long run of text must not be treated as
        // a giant entity name (nor echoed back verbatim in the error).
        let body = "x".repeat(10_000);
        let err = decode_entities(&format!("&{body};")).unwrap_err();
        assert!(err.contains("overlong"), "{err}");
        assert!(
            err.len() < 200,
            "error echoes hostile input: {} bytes",
            err.len()
        );
        // Same through the document parser.
        let mut vocab = Vocabulary::new();
        assert!(parse_document(&format!("<a>&{body};</a>"), &mut vocab).is_err());
    }

    #[test]
    fn unterminated_entity_reference_errors() {
        assert!(decode_entities("tail &amp").is_err());
        assert!(decode_entities("&").is_err());
    }

    #[test]
    fn cdata_passes_ampersands_and_references_verbatim() {
        // CDATA content must NOT be routed through entity decoding: a
        // literal `&`, a stray `&foo`, or a `&#` inside `<![CDATA[...]]>`
        // is plain character data, not a reference.
        let (doc, vocab) = parse("<a><b><![CDATA[x & y &foo &#0; &# z]]></b></a>");
        let b = vocab.lookup_name("b").unwrap();
        assert_eq!(doc.value_at(&[b]).unwrap().as_str(), "x & y &foo &#0; &# z");
        // Mixed CDATA + text: only the text part is decoded.
        let (doc, vocab) = parse("<a><b><![CDATA[&amp;]]>&amp;</b></a>");
        let b = vocab.lookup_name("b").unwrap();
        assert_eq!(doc.value_at(&[b]).unwrap().as_str(), "&amp;&");
    }

    #[test]
    fn control_character_references_are_rejected() {
        // NUL and other C0 controls are not XML characters (Char
        // production); only tab, newline, and carriage return are allowed.
        for bad in ["&#0;", "&#x0;", "&#1;", "&#x1F;", "&#8;", "&#11;"] {
            let err = decode_entities(bad).unwrap_err();
            assert!(err.contains("not an XML character"), "{bad}: {err}");
        }
        assert_eq!(decode_entities("&#9;&#10;&#13;").unwrap(), "\t\n\r");
        // Non-characters U+FFFE/U+FFFF are rejected too.
        assert!(decode_entities("&#xFFFE;").is_err());
        assert!(decode_entities("&#xFFFF;").is_err());
        assert_eq!(decode_entities("&#xFFFD;").unwrap(), "\u{FFFD}");
        // Same through the document parser, in text and attribute values.
        let mut vocab = Vocabulary::new();
        assert!(parse_document("<a>&#0;</a>", &mut vocab).is_err());
        assert!(parse_document("<a x=\"&#x1;\"/>", &mut vocab).is_err());
    }

    #[test]
    fn hostile_character_references_are_rejected() {
        // Surrogate code point.
        assert!(decode_entities("&#xD800;").is_err());
        // Beyond the Unicode range.
        assert!(decode_entities("&#x110000;").is_err());
        assert!(decode_entities("&#4294967296;").is_err());
        // Garbage digits.
        assert!(decode_entities("&#xZZ;").is_err());
        assert!(decode_entities("&#;").is_err());
        // The maximum legitimate reference still decodes.
        assert_eq!(decode_entities("&#x10FFFF;").unwrap(), "\u{10FFFF}");
    }

    #[test]
    fn multibyte_text_near_entity_cap_does_not_split_code_points() {
        // A multi-byte character straddling the scan window must not panic.
        let s = format!("&{}é;", "e".repeat(31));
        assert!(decode_entities(&s).is_err());
        let ok = format!("{}&amp;tail", "é".repeat(40));
        assert!(decode_entities(&ok).unwrap().contains('&'));
    }

    fn nested(depth: usize) -> String {
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<a>");
        }
        s.push('1');
        for _ in 0..depth {
            s.push_str("</a>");
        }
        s
    }

    #[test]
    fn nesting_depth_is_capped_with_a_typed_error() {
        let mut vocab = Vocabulary::new();
        // Within the cap: parses fine (the parser is iterative, so this is
        // bounded by MAX_XML_DEPTH, not the call stack).
        let doc = parse_document(&nested(MAX_XML_DEPTH), &mut vocab).unwrap();
        assert_eq!(doc.len(), MAX_XML_DEPTH);
        // One past the cap: typed error, no panic, no quadratic blow-up.
        let err = parse_document(&nested(MAX_XML_DEPTH + 1), &mut vocab).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }
}
