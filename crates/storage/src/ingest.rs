//! Parallel multi-document ingestion.
//!
//! [`ingest_batch`] parses a batch of XML texts with a pool of scoped
//! threads (the same `--jobs` / `std::thread::scope` discipline the
//! advisor's parallel enumeration uses) and merges the results into a
//! collection **deterministically**: workers parse against private
//! vocabularies, and the coordinator re-interns every document into the
//! shared vocabulary in input order ([`xia_xml::Document::remap`]).
//! Because remapping interns names and paths in exactly the sequence a
//! sequential parse would, the resulting collection — vocabulary ids,
//! document arenas, column store — is byte-identical for any worker
//! count, including 1.
//!
//! The batch is all-or-nothing: if any text fails to parse, the
//! collection (including its vocabulary) is left untouched and the error
//! reports the index of the earliest offending text.

use crate::collection::{Collection, DocId};
use std::fmt;
use xia_obs::{Counter, Telemetry};
use xia_xml::{parse_document, parse_document_streaming, Document, Vocabulary, XmlError};

/// Options for [`ingest_batch`].
#[derive(Debug, Clone, Copy)]
pub struct IngestOptions {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Parse with the DOM parser instead of the streaming path (the
    /// `--no-stream` escape hatch). The resulting collection is
    /// byte-identical either way.
    pub use_dom: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            jobs: 1,
            use_dom: false,
        }
    }
}

/// A parse failure within a batch. No documents were inserted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestError {
    /// Index into the batch of the earliest text that failed.
    pub index: usize,
    /// The parse error.
    pub error: XmlError,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "document {}: {}", self.index, self.error)
    }
}

impl std::error::Error for IngestError {}

/// Summary of a successful [`ingest_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Ids assigned, in batch order.
    pub doc_ids: Vec<DocId>,
    /// Total nodes ingested.
    pub nodes: u64,
    /// Worker chunks processed (one batch per worker).
    pub batches: usize,
    /// Worker threads used.
    pub workers: usize,
}

/// Resolves a `--jobs` request against the host (0 = all CPUs).
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    }
}

struct WorkerOutput {
    vocab: Vocabulary,
    docs: Vec<Document>,
    /// First parse failure in this worker's chunk, as a global index.
    error: Option<IngestError>,
    scratch: Telemetry,
}

fn parse_chunk(
    texts: &[impl AsRef<str>],
    chunk_start: usize,
    use_dom: bool,
    telemetry_enabled: bool,
) -> WorkerOutput {
    let mut out = WorkerOutput {
        vocab: Vocabulary::new(),
        docs: Vec::with_capacity(texts.len()),
        error: None,
        scratch: if telemetry_enabled {
            Telemetry::new()
        } else {
            Telemetry::off()
        },
    };
    for (offset, text) in texts.iter().enumerate() {
        let parsed = if use_dom {
            parse_document(text.as_ref(), &mut out.vocab)
        } else {
            let r = parse_document_streaming(text.as_ref(), &mut out.vocab);
            if r.is_ok() {
                out.scratch.incr(Counter::DocsStreamed);
            }
            r
        };
        match parsed {
            Ok(doc) => out.docs.push(doc),
            Err(error) => {
                out.error = Some(IngestError {
                    index: chunk_start + offset,
                    error,
                });
                break;
            }
        }
    }
    out
}

/// Parses `texts` with up to `opts.jobs` scoped worker threads and
/// inserts the documents into `collection` in batch order. All-or-nothing
/// on parse errors; deterministic for any worker count.
pub fn ingest_batch(
    collection: &mut Collection,
    texts: &[impl AsRef<str> + Sync],
    opts: IngestOptions,
) -> Result<IngestReport, IngestError> {
    let workers = resolve_jobs(opts.jobs).min(texts.len()).max(1);
    let chunk_len = texts.len().div_ceil(workers);
    let telemetry_enabled = collection.telemetry().is_enabled();

    let mut outputs: Vec<WorkerOutput> = if workers <= 1 {
        vec![parse_chunk(texts, 0, opts.use_dom, telemetry_enabled)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = texts
                .chunks(chunk_len)
                .enumerate()
                .map(|(w, chunk)| {
                    scope.spawn(move || {
                        parse_chunk(chunk, w * chunk_len, opts.use_dom, telemetry_enabled)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("ingest worker panicked"))
                .collect()
        })
    };
    let batches = outputs.len();

    // Earliest failing text wins, independent of worker scheduling.
    if let Some(err) = outputs
        .iter_mut()
        .filter_map(|o| o.error.take())
        .min_by_key(|e| e.index)
    {
        return Err(err);
    }

    // Merge in input order: remapping re-interns each document's names
    // and paths in preorder, reproducing the sequential intern sequence.
    let mut doc_ids = Vec::with_capacity(texts.len());
    let mut nodes = 0u64;
    for out in &outputs {
        for doc in &out.docs {
            nodes += doc.len() as u64;
            doc_ids.push(collection.insert_parsed(&out.vocab, doc));
        }
    }

    // Fold per-worker scratch telemetry into the collection's sink in
    // worker order.
    let telemetry = collection.telemetry();
    for out in &outputs {
        for c in Counter::ALL {
            let n = out.scratch.get(c);
            if n > 0 {
                telemetry.add(c, n);
            }
        }
    }
    telemetry.add(Counter::IngestBatches, batches as u64);

    Ok(IngestReport {
        doc_ids,
        nodes,
        batches,
        workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "<Security><Symbol>S{i}</Symbol><Yield>{}</Yield><Info sector=\"T{}\"/></Security>",
                    i as f64 / 2.0,
                    i % 3
                )
            })
            .collect()
    }

    type Fingerprint = (xia_xml::Vocabulary, Vec<(DocId, Document)>);

    fn fingerprint(c: &Collection) -> Fingerprint {
        (
            c.vocab().clone(),
            c.iter_docs().map(|(i, d)| (i, d.clone())).collect(),
        )
    }

    #[test]
    fn batch_matches_sequential_inserts() {
        let batch = texts(13);
        let mut seq = Collection::new("C");
        for t in &batch {
            seq.insert_xml(t).unwrap();
        }
        let mut par = Collection::new("C");
        let report = ingest_batch(
            &mut par,
            &batch,
            IngestOptions {
                jobs: 4,
                use_dom: false,
            },
        )
        .unwrap();
        assert_eq!(report.doc_ids.len(), 13);
        assert_eq!(report.workers, 4);
        assert_eq!(report.batches, 4);
        assert_eq!(fingerprint(&seq), fingerprint(&par));
        assert_eq!(seq.columns().unwrap(), par.columns().unwrap());
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let batch = texts(11);
        let mut baseline = Collection::new("C");
        ingest_batch(&mut baseline, &batch, IngestOptions::default()).unwrap();
        for jobs in [2, 3, 8, 0] {
            let mut c = Collection::new("C");
            let report = ingest_batch(
                &mut c,
                &batch,
                IngestOptions {
                    jobs,
                    use_dom: false,
                },
            )
            .unwrap();
            assert!(report.workers >= 1);
            assert_eq!(fingerprint(&baseline), fingerprint(&c), "jobs = {jobs}");
        }
    }

    #[test]
    fn dom_and_streaming_ingest_agree() {
        let batch = texts(9);
        let mut stream = Collection::new("C");
        ingest_batch(
            &mut stream,
            &batch,
            IngestOptions {
                jobs: 3,
                use_dom: false,
            },
        )
        .unwrap();
        let mut dom = Collection::new("C");
        ingest_batch(
            &mut dom,
            &batch,
            IngestOptions {
                jobs: 3,
                use_dom: true,
            },
        )
        .unwrap();
        assert_eq!(fingerprint(&stream), fingerprint(&dom));
    }

    #[test]
    fn failed_batch_leaves_collection_untouched() {
        let mut batch = texts(10);
        batch[7] = "<broken".to_string();
        batch[3] = "<also><broken".to_string();
        let mut c = Collection::new("C");
        c.insert_xml("<pre><existing>1</existing></pre>").unwrap();
        let before = fingerprint(&c);
        let err = ingest_batch(
            &mut c,
            &batch,
            IngestOptions {
                jobs: 4,
                use_dom: false,
            },
        )
        .unwrap_err();
        // Earliest bad text wins regardless of chunk layout.
        assert_eq!(err.index, 3);
        assert_eq!(c.len(), 1);
        assert_eq!(before, fingerprint(&c));
    }

    #[test]
    fn telemetry_counts_streamed_docs_and_batches() {
        let t = Telemetry::new();
        let mut c = Collection::new("C");
        c.set_telemetry(&t);
        let batch = texts(8);
        ingest_batch(
            &mut c,
            &batch,
            IngestOptions {
                jobs: 2,
                use_dom: false,
            },
        )
        .unwrap();
        assert_eq!(t.get(Counter::DocsStreamed), 8);
        assert_eq!(t.get(Counter::IngestBatches), 2);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut c = Collection::new("C");
        let report = ingest_batch(&mut c, &Vec::<String>::new(), IngestOptions::default()).unwrap();
        assert!(report.doc_ids.is_empty());
        assert_eq!(report.batches, 1);
        assert!(c.is_empty());
    }
}
