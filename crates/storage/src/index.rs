//! Physical partial XML value indexes.
//!
//! A physical index is a B-tree over the values of all nodes reachable by a
//! linear XPath *index pattern* (the paper's partial indexing: only the
//! matching paths are indexed). Keys are typed — string or double — matching
//! DB2 pureXML's `CREATE INDEX ... GENERATE KEY USING XMLPATTERN ... AS
//! SQL VARCHAR / DOUBLE`.

use crate::collection::{Collection, DocId};
use crate::columnar::{ColumnStore, PathColumn};
use std::collections::{BTreeMap, HashSet};
use xia_obs::Counter;
use xia_xml::{Document, NodeId, PathId, Vocabulary};
use xia_xpath::{CmpOp, LinearPath, Literal, PathMatcher, ValueKind};

/// Total-ordered f64 wrapper for B-tree keys. Only finite values are ever
/// inserted (non-finite text never parses into [`xia_xml::Value`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite index keys")
    }
}

/// One index entry: the indexed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posting {
    /// Document containing the node.
    pub doc: DocId,
    /// The node within the document.
    pub node: NodeId,
}

/// A physical partial value index. `PartialEq` compares the full
/// physical state (key maps, posting order, byte accounting) — the
/// datapath gate uses it to assert parallel and serial builds are
/// byte-identical.
#[derive(Debug, PartialEq)]
pub struct PhysicalIndex {
    pattern: LinearPath,
    kind: ValueKind,
    /// Path ids the pattern matched at build time; maintained incrementally
    /// as the vocabulary grows.
    matched_paths: HashSet<PathId>,
    known_paths: usize,
    str_map: BTreeMap<Box<str>, Vec<Posting>>,
    num_map: BTreeMap<OrdF64, Vec<Posting>>,
    /// Structural postings: for every matched path, the documents that
    /// contain at least one node at it (valued or not). DB2-style XML
    /// indexes can answer *existence* tests from the index alone; this is
    /// the equivalent access path.
    struct_map: BTreeMap<PathId, Vec<DocId>>,
    entries: u64,
    key_bytes: u64,
}

impl PhysicalIndex {
    /// Builds an index over all live documents of a collection. Worker
    /// count for the columnar path comes from `XIA_JOBS` (serial when
    /// unset); see [`PhysicalIndex::build_with_jobs`].
    pub fn build(collection: &Collection, pattern: &LinearPath, kind: ValueKind) -> Self {
        Self::build_with_jobs(collection, pattern, kind, build_jobs())
    }

    /// [`PhysicalIndex::build`] with an explicit worker count for the
    /// columnar row-collection phase. `jobs == 0` resolves to the
    /// machine's available parallelism; any value yields a byte-identical
    /// index (sharding is by document range with a deterministic
    /// concatenation — see [`PhysicalIndex::build_from_columns`]).
    pub fn build_with_jobs(
        collection: &Collection,
        pattern: &LinearPath,
        kind: ValueKind,
        jobs: usize,
    ) -> Self {
        let vocab = collection.vocab();
        let matcher = PathMatcher::new(pattern, vocab);
        let matched: HashSet<PathId> = matcher.matching_path_ids(vocab).into_iter().collect();
        let mut idx = Self {
            pattern: pattern.clone(),
            kind,
            matched_paths: matched,
            known_paths: vocab.paths.len(),
            str_map: BTreeMap::new(),
            num_map: BTreeMap::new(),
            struct_map: BTreeMap::new(),
            entries: 0,
            key_bytes: 0,
        };
        match collection.columns() {
            // Columnar build: iterate the contiguous per-path value
            // arrays instead of walking every node of every document.
            Some(cols) => idx.build_from_columns(collection, cols, jobs),
            None => {
                for (doc_id, doc) in collection.iter_docs() {
                    idx.insert_doc_inner(doc_id, doc);
                }
            }
        }
        idx
    }

    /// Builds the key maps from the columnar projection. Value rows of
    /// all matched paths are merged in `(doc, node)` order — the exact
    /// order the document scan inserts them — so the resulting maps and
    /// posting vectors are identical to [`PhysicalIndex::insert_doc_inner`]
    /// output.
    ///
    /// Row collection is sharded by *document range* across scoped worker
    /// threads when the index is large enough (`jobs` workers, serial by
    /// default): each worker slices every matched column to its doc range
    /// with binary searches, sorts its shard by `(doc, node)`, and the
    /// coordinator concatenates shards in range order. Ranges are
    /// contiguous and disjoint, so the concatenation *is* the globally
    /// sorted row stream — the merge is deterministic and the B-tree
    /// insertion (serial, on the coordinator) byte-identical for every
    /// worker count.
    fn build_from_columns(&mut self, collection: &Collection, cols: &ColumnStore, jobs: usize) {
        let mut rows_scanned = 0u64;
        let mut matched: Vec<&PathColumn> = Vec::new();
        for &path in &self.matched_paths {
            let Some(col) = cols.col(path) else { continue };
            if col.node_count() > 0 {
                self.struct_map.insert(path, col.struct_docs().to_vec());
            }
            rows_scanned += match self.kind {
                ValueKind::Str => col.rows(),
                ValueKind::Num => col.nums().len() as u64,
            };
            matched.push(col);
        }
        let ranges = doc_ranges(&matched, rows_scanned, jobs);
        match self.kind {
            ValueKind::Str => {
                let shards: Vec<Vec<(DocId, NodeId, &str)>> = if ranges.len() > 1 {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = ranges
                            .iter()
                            .map(|&(lo, hi)| {
                                let matched = &matched;
                                scope.spawn(move || collect_str_rows(matched, lo, hi))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("index-build worker panicked"))
                            .collect()
                    })
                } else {
                    vec![collect_str_rows(&matched, 0, u32::MAX)]
                };
                for (doc, node, v) in shards.into_iter().flatten() {
                    self.key_bytes += v.len() as u64;
                    self.str_map
                        .entry(v.into())
                        .or_default()
                        .push(Posting { doc, node });
                    self.entries += 1;
                }
            }
            ValueKind::Num => {
                let shards: Vec<Vec<(DocId, NodeId, f64)>> = if ranges.len() > 1 {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = ranges
                            .iter()
                            .map(|&(lo, hi)| {
                                let matched = &matched;
                                scope.spawn(move || collect_num_rows(matched, lo, hi))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("index-build worker panicked"))
                            .collect()
                    })
                } else {
                    vec![collect_num_rows(&matched, 0, u32::MAX)]
                };
                for (doc, node, n) in shards.into_iter().flatten() {
                    self.key_bytes += 8;
                    self.num_map
                        .entry(OrdF64(n))
                        .or_default()
                        .push(Posting { doc, node });
                    self.entries += 1;
                }
            }
        }
        collection
            .telemetry()
            .add(Counter::ColumnarScanRows, rows_scanned);
    }

    /// The index pattern.
    pub fn pattern(&self) -> &LinearPath {
        &self.pattern
    }

    /// The key type.
    pub fn kind(&self) -> ValueKind {
        self.kind
    }

    /// Number of entries.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> u64 {
        match self.kind {
            ValueKind::Str => self.str_map.len() as u64,
            ValueKind::Num => self.num_map.len() as u64,
        }
    }

    /// Average key width in bytes.
    pub fn avg_key_width(&self) -> f64 {
        if self.entries == 0 {
            match self.kind {
                ValueKind::Str => 16.0,
                ValueKind::Num => 8.0,
            }
        } else {
            self.key_bytes as f64 / self.entries as f64
        }
    }

    /// Refreshes the matched-path set if the vocabulary has grown since the
    /// index was built (new document shapes may introduce new paths that
    /// the pattern matches).
    fn refresh_paths(&mut self, vocab: &Vocabulary) {
        if vocab.paths.len() == self.known_paths {
            return;
        }
        let matcher = PathMatcher::new(&self.pattern, vocab);
        self.matched_paths = matcher.matching_path_ids(vocab).into_iter().collect();
        self.known_paths = vocab.paths.len();
    }

    fn insert_doc_inner(&mut self, doc_id: DocId, doc: &Document) {
        for (node_id, node) in doc.nodes() {
            if !self.matched_paths.contains(&node.path) {
                continue;
            }
            // Structural posting regardless of value presence.
            let postings = self.struct_map.entry(node.path).or_default();
            if postings.last() != Some(&doc_id) {
                postings.push(doc_id);
            }
            let Some(value) = &node.value else { continue };
            let posting = Posting {
                doc: doc_id,
                node: node_id,
            };
            match self.kind {
                ValueKind::Str => {
                    self.key_bytes += value.as_str().len() as u64;
                    self.str_map
                        .entry(value.as_str().into())
                        .or_default()
                        .push(posting);
                    self.entries += 1;
                }
                ValueKind::Num => {
                    if let Some(n) = value.as_num() {
                        self.key_bytes += 8;
                        self.num_map.entry(OrdF64(n)).or_default().push(posting);
                        self.entries += 1;
                    }
                }
            }
        }
    }

    /// Maintains the index for a newly inserted document.
    pub fn insert_doc(&mut self, doc_id: DocId, doc: &Document, vocab: &Vocabulary) {
        self.refresh_paths(vocab);
        self.insert_doc_inner(doc_id, doc);
    }

    /// Maintains the index for a deleted document. Returns the number of
    /// entries removed.
    pub fn remove_doc(&mut self, doc_id: DocId) -> u64 {
        let mut removed = 0;
        let len_of = |s: &str| s.len() as u64;
        self.str_map.retain(|key, postings| {
            let before = postings.len();
            postings.retain(|p| p.doc != doc_id);
            let gone = (before - postings.len()) as u64;
            if gone > 0 {
                removed += gone;
                self.key_bytes = self.key_bytes.saturating_sub(gone * len_of(key));
            }
            !postings.is_empty()
        });
        self.num_map.retain(|_, postings| {
            let before = postings.len();
            postings.retain(|p| p.doc != doc_id);
            let gone = (before - postings.len()) as u64;
            if gone > 0 {
                removed += gone;
                self.key_bytes = self.key_bytes.saturating_sub(gone * 8);
            }
            !postings.is_empty()
        });
        self.struct_map.retain(|_, docs| {
            docs.retain(|&d| d != doc_id);
            !docs.is_empty()
        });
        self.entries -= removed.min(self.entries);
        removed
    }

    /// Existence lookup: documents containing at least one node at any of
    /// the given paths (which must be a subset of the index's matched
    /// paths for the result to be complete). Deduplicated, sorted.
    pub fn lookup_exists(&self, paths: &[PathId]) -> Vec<DocId> {
        let mut out: Vec<DocId> = paths
            .iter()
            .filter_map(|p| self.struct_map.get(p))
            .flat_map(|docs| docs.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Equality lookup.
    pub fn lookup_eq(&self, lit: &Literal) -> Vec<Posting> {
        match (self.kind, lit) {
            (ValueKind::Str, Literal::Str(s)) => {
                self.str_map.get(s.as_str()).cloned().unwrap_or_default()
            }
            (ValueKind::Num, Literal::Num(n)) => {
                self.num_map.get(&OrdF64(*n)).cloned().unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }

    /// Range / comparison lookup. `Ne` is answered by scanning both sides
    /// of the key (valid for an index probe, though the optimizer rarely
    /// picks an index for `!=`).
    pub fn lookup_cmp(&self, op: CmpOp, lit: &Literal) -> Vec<Posting> {
        use std::ops::Bound::{Excluded, Included, Unbounded};
        if op == CmpOp::Eq {
            return self.lookup_eq(lit);
        }
        match (self.kind, lit) {
            (ValueKind::Num, Literal::Num(n)) => {
                let key = OrdF64(*n);
                let ranges: Vec<(std::ops::Bound<OrdF64>, std::ops::Bound<OrdF64>)> = match op {
                    CmpOp::Lt => vec![(Unbounded, Excluded(key))],
                    CmpOp::Le => vec![(Unbounded, Included(key))],
                    CmpOp::Gt => vec![(Excluded(key), Unbounded)],
                    CmpOp::Ge => vec![(Included(key), Unbounded)],
                    CmpOp::Ne => vec![(Unbounded, Excluded(key)), (Excluded(key), Unbounded)],
                    CmpOp::Eq => unreachable!("handled above"),
                };
                ranges
                    .into_iter()
                    .flat_map(|r| self.num_map.range(r))
                    .flat_map(|(_, v)| v.iter().copied())
                    .collect()
            }
            (ValueKind::Str, Literal::Str(s)) => {
                let key: Box<str> = s.as_str().into();
                let mut out = Vec::new();
                for (k, v) in self.str_map.iter() {
                    if op.eval_str(k, &key) {
                        out.extend(v.iter().copied());
                    }
                }
                out
            }
            _ => Vec::new(),
        }
    }
}

/// Below this many value rows the sharding overhead (thread spawn + per-
/// column binary searches) outweighs the sort it parallelizes.
const PARALLEL_BUILD_THRESHOLD: u64 = 4096;

/// Worker count for [`PhysicalIndex::build`]: `XIA_JOBS`, or serial when
/// unset/unparsable. `0` means "use every core", matching the ingestion
/// pool's convention.
fn build_jobs() -> usize {
    std::env::var("XIA_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(crate::ingest::resolve_jobs)
        .unwrap_or(1)
}

/// Splits the document-id space covered by `matched` into up to `jobs`
/// contiguous half-open ranges `[lo, hi)`. Returns a single all-covering
/// range when sharding is off (`jobs <= 1`) or not worth it
/// (`total_rows < PARALLEL_BUILD_THRESHOLD`). Ranges are ascending and
/// disjoint — the invariant the deterministic shard concatenation relies
/// on.
fn doc_ranges(matched: &[&PathColumn], total_rows: u64, jobs: usize) -> Vec<(u32, u32)> {
    let jobs = crate::ingest::resolve_jobs(jobs);
    if jobs <= 1 || total_rows < PARALLEL_BUILD_THRESHOLD {
        return vec![(0, u32::MAX)];
    }
    // Columns store rows in ascending document order, so the last row of
    // each column carries its maximum document id.
    let max_doc = matched
        .iter()
        .filter_map(|col| col.docs().last())
        .map(|d| d.0)
        .max();
    let Some(max_doc) = max_doc else {
        return vec![(0, u32::MAX)];
    };
    let span = max_doc as u64 + 1;
    let jobs = (jobs as u64).min(span);
    let chunk = span.div_ceil(jobs);
    (0..jobs)
        .map(|i| ((i * chunk) as u32, ((i + 1) * chunk).min(span) as u32))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Collects the string value rows of documents in `[lo, hi)` from every
/// matched column, sorted by `(doc, node)`. Each column's rows are sliced
/// with binary searches over its (ascending) document array, so a worker
/// touches only its own shard.
fn collect_str_rows<'c>(
    matched: &[&'c PathColumn],
    lo: u32,
    hi: u32,
) -> Vec<(DocId, NodeId, &'c str)> {
    let mut rows = Vec::new();
    for col in matched {
        let docs = col.docs();
        let start = docs.partition_point(|d| d.0 < lo);
        let end = docs.partition_point(|d| d.0 < hi);
        let nodes = &col.nodes()[start..end];
        let strs = &col.strs()[start..end];
        for ((&d, &n), s) in docs[start..end].iter().zip(nodes).zip(strs) {
            rows.push((d, n, s.as_ref()));
        }
    }
    rows.sort_unstable_by_key(|&(d, n, _)| (d, n));
    rows
}

/// Numeric twin of [`collect_str_rows`]. The sparse `(row, value)` pairs
/// are ascending in row — and therefore in document — so the same binary-
/// search slicing applies through the row → doc indirection.
fn collect_num_rows(matched: &[&PathColumn], lo: u32, hi: u32) -> Vec<(DocId, NodeId, f64)> {
    let mut rows = Vec::new();
    for col in matched {
        let docs = col.docs();
        let nums = col.nums();
        let start = nums.partition_point(|&(r, _)| docs[r as usize].0 < lo);
        let end = nums.partition_point(|&(r, _)| docs[r as usize].0 < hi);
        for &(row, n) in &nums[start..end] {
            let row = row as usize;
            rows.push((docs[row], col.nodes()[row], n));
        }
    }
    rows.sort_unstable_by_key(|&(d, n, _)| (d, n));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_xpath::parse_linear_path;

    fn sample_collection() -> Collection {
        let mut c = Collection::new("SDOC");
        for (sym, yld, sector) in [
            ("IBM", 4.0, "Tech"),
            ("XOM", 5.5, "Energy"),
            ("GE", 3.0, "Industrial"),
            ("BP", 6.0, "Energy"),
        ] {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", sym);
                b.leaf("Yield", yld);
                b.begin("SecInfo");
                b.begin("StockInfo");
                b.leaf("Sector", sector);
                b.end();
                b.end();
            });
        }
        c
    }

    #[test]
    fn builds_partial_index_on_specific_pattern() {
        let c = sample_collection();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let idx = PhysicalIndex::build(&c, &p, ValueKind::Str);
        assert_eq!(idx.entries(), 4);
        assert_eq!(idx.distinct_keys(), 4);
        let hits = idx.lookup_eq(&Literal::Str("IBM".into()));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, DocId(0));
    }

    #[test]
    fn wildcard_pattern_indexes_deeper_paths() {
        let c = sample_collection();
        let p = parse_linear_path("/Security/SecInfo/*/Sector").unwrap();
        let idx = PhysicalIndex::build(&c, &p, ValueKind::Str);
        assert_eq!(idx.entries(), 4);
        assert_eq!(idx.lookup_eq(&Literal::Str("Energy".into())).len(), 2);
    }

    #[test]
    fn numeric_range_lookup() {
        let c = sample_collection();
        let p = parse_linear_path("/Security/Yield").unwrap();
        let idx = PhysicalIndex::build(&c, &p, ValueKind::Num);
        assert_eq!(idx.entries(), 4);
        let hits = idx.lookup_cmp(CmpOp::Gt, &Literal::Num(4.5));
        assert_eq!(hits.len(), 2);
        let hits = idx.lookup_cmp(CmpOp::Le, &Literal::Num(4.0));
        assert_eq!(hits.len(), 2);
        let hits = idx.lookup_cmp(CmpOp::Ne, &Literal::Num(4.0));
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn numeric_index_skips_non_numeric_values() {
        let mut c = Collection::new("X");
        c.build_doc("a", |b| {
            b.leaf("v", "12");
            b.leaf("v", "hello");
        });
        let p = parse_linear_path("/a/v").unwrap();
        let num = PhysicalIndex::build(&c, &p, ValueKind::Num);
        assert_eq!(num.entries(), 1);
        let s = PhysicalIndex::build(&c, &p, ValueKind::Str);
        assert_eq!(s.entries(), 2);
    }

    #[test]
    fn maintenance_on_insert_and_delete() {
        let mut c = sample_collection();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let mut idx = PhysicalIndex::build(&c, &p, ValueKind::Str);
        let id = c.build_doc("Security", |b| {
            b.leaf("Symbol", "AAPL");
        });
        idx.insert_doc(id, c.doc(id).unwrap(), c.vocab());
        assert_eq!(idx.entries(), 5);
        assert_eq!(idx.lookup_eq(&Literal::Str("AAPL".into())).len(), 1);
        let removed = idx.remove_doc(id);
        assert_eq!(removed, 1);
        assert_eq!(idx.entries(), 4);
        assert!(idx.lookup_eq(&Literal::Str("AAPL".into())).is_empty());
    }

    #[test]
    fn insert_with_new_shape_refreshes_matched_paths() {
        let mut c = Collection::new("X");
        c.build_doc("a", |b| {
            b.leaf("x", "1");
        });
        let p = parse_linear_path("/a//*").unwrap();
        let mut idx = PhysicalIndex::build(&c, &p, ValueKind::Str);
        assert_eq!(idx.entries(), 1);
        // New path /a/b/y appears only in the second document.
        let id = c.build_doc("a", |b| {
            b.begin("b");
            b.leaf("y", "2");
            b.end();
        });
        idx.insert_doc(id, c.doc(id).unwrap(), c.vocab());
        assert_eq!(idx.entries(), 2);
        assert_eq!(idx.lookup_eq(&Literal::Str("2".into())).len(), 1);
    }

    #[test]
    fn kind_mismatch_lookups_return_empty() {
        let c = sample_collection();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let idx = PhysicalIndex::build(&c, &p, ValueKind::Str);
        assert!(idx.lookup_eq(&Literal::Num(1.0)).is_empty());
        assert!(idx.lookup_cmp(CmpOp::Gt, &Literal::Num(1.0)).is_empty());
    }

    #[test]
    fn columnar_build_matches_document_scan() {
        // Two identical collections; one has its columnar projection
        // dirtied so PhysicalIndex::build takes the document-scan
        // fallback. The resulting indexes must be bit-identical.
        let texts: Vec<String> = (0..25)
            .map(|i| {
                format!(
                    "<Security><Symbol>S{}</Symbol><Yield>{}</Yield><SecInfo s=\"T{}\"><Sector>E{}</Sector></SecInfo></Security>",
                    i % 9,
                    i as f64 / 2.0,
                    i % 4,
                    i % 3
                )
            })
            .collect();
        let mut cols = Collection::new("SDOC");
        let mut scan = Collection::new("SDOC");
        for t in &texts {
            cols.insert_xml(t).unwrap();
            scan.insert_xml(t).unwrap();
        }
        // Dirty the scan collection's columns without changing data.
        let _ = scan.doc_mut(DocId(0));
        assert!(cols.columns().is_some());
        assert!(scan.columns().is_none());
        for (pat, kind) in [
            ("/Security/Symbol", ValueKind::Str),
            ("/Security/Yield", ValueKind::Num),
            ("/Security//*", ValueKind::Str),
            ("/Security/SecInfo/s", ValueKind::Str),
            ("/Nothing/Here", ValueKind::Num),
        ] {
            let p = parse_linear_path(pat).unwrap();
            let a = PhysicalIndex::build(&cols, &p, kind);
            let b = PhysicalIndex::build(&scan, &p, kind);
            assert_eq!(a.str_map, b.str_map, "{pat}");
            assert_eq!(a.num_map, b.num_map, "{pat}");
            assert_eq!(a.struct_map, b.struct_map, "{pat}");
            assert_eq!(a.entries, b.entries, "{pat}");
            assert_eq!(a.key_bytes, b.key_bytes, "{pat}");
        }
    }

    #[test]
    fn parallel_build_matches_serial_for_every_worker_count() {
        // Enough value rows to clear PARALLEL_BUILD_THRESHOLD so the
        // sharded path actually runs, including a numeric column and
        // duplicate keys that make posting order observable.
        let mut c = Collection::new("SDOC");
        for i in 0..3000u32 {
            c.insert_xml(&format!(
                "<Security><Symbol>S{}</Symbol><Yield>{}</Yield></Security>",
                i % 17,
                (i % 11) as f64 / 2.0
            ))
            .unwrap();
        }
        assert!(c.columns().is_some());
        for (pat, kind) in [
            ("/Security//*", ValueKind::Str),
            ("/Security/Symbol", ValueKind::Str),
            ("/Security/Yield", ValueKind::Num),
        ] {
            let p = parse_linear_path(pat).unwrap();
            let serial = PhysicalIndex::build_with_jobs(&c, &p, kind, 1);
            // More workers than documents is also legal: ranges clamp.
            for jobs in [2, 3, 8, 5000] {
                let par = PhysicalIndex::build_with_jobs(&c, &p, kind, jobs);
                assert_eq!(serial.str_map, par.str_map, "{pat} jobs={jobs}");
                assert_eq!(serial.num_map, par.num_map, "{pat} jobs={jobs}");
                assert_eq!(serial.struct_map, par.struct_map, "{pat} jobs={jobs}");
                assert_eq!(serial.entries, par.entries, "{pat} jobs={jobs}");
                assert_eq!(serial.key_bytes, par.key_bytes, "{pat} jobs={jobs}");
            }
        }
    }

    #[test]
    fn doc_ranges_cover_the_space_without_overlap() {
        let mut c = Collection::new("X");
        for i in 0..40u32 {
            c.insert_xml(&format!("<a><v>{i}</v></a>")).unwrap();
        }
        let cols = c.columns().unwrap();
        let matched: Vec<&PathColumn> = c
            .vocab()
            .paths
            .iter()
            .enumerate()
            .filter_map(|(i, _)| cols.col(PathId(i as u32)))
            .collect();
        // Below the row threshold sharding is declined outright.
        assert_eq!(doc_ranges(&matched, 40, 8), vec![(0, u32::MAX)]);
        // Above it, ranges tile [0, max_doc+1) in ascending disjoint order.
        let ranges = doc_ranges(&matched, PARALLEL_BUILD_THRESHOLD, 8);
        assert!(ranges.len() > 1 && ranges.len() <= 8);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, 40);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
        }
    }

    #[test]
    fn string_range_lookup() {
        let c = sample_collection();
        let p = parse_linear_path("/Security/SecInfo/*/Sector").unwrap();
        let idx = PhysicalIndex::build(&c, &p, ValueKind::Str);
        let hits = idx.lookup_cmp(CmpOp::Lt, &Literal::Str("F".into()));
        assert_eq!(hits.len(), 2); // two "Energy"
    }
}
