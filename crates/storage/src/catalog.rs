//! Index catalog: physical and virtual index metadata.
//!
//! Virtual indexes are the paper's key server-side mechanism: catalog-only
//! entries with statistics *derived from data statistics*, visible to the
//! optimizer's index matching and costing but never usable for execution
//! (Section III). `what-if` costing creates them, the executor refuses
//! them.

use crate::collection::Collection;
use crate::index::PhysicalIndex;
use crate::size::{index_levels, index_size_bytes};
use crate::stats::CollectionStats;
use xia_obs::{Counter, Telemetry};
use xia_xml::PathId;
use xia_xpath::{LinearPath, PathMatcher, ValueKind};

/// Identifier of an index within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

impl IndexId {
    /// Raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Statistics of an index (estimated for virtual indexes, measured for
/// physical ones — both flow through the same size model so that estimated
/// and actual configurations are comparable).
#[derive(Debug, Clone, Default)]
pub struct IndexStats {
    /// Number of (key, posting) entries.
    pub entries: u64,
    /// Distinct keys.
    pub distinct: u64,
    /// Estimated size on disk.
    pub size_bytes: u64,
    /// Estimated B-tree depth.
    pub levels: u32,
    /// Average key width in bytes.
    pub avg_key_width: f64,
}

/// One catalog entry.
#[derive(Debug)]
pub struct IndexDef {
    /// The index id within its catalog.
    pub id: IndexId,
    /// The linear XPath index pattern.
    pub pattern: LinearPath,
    /// Key type.
    pub kind: ValueKind,
    /// Rooted paths matched by the pattern at creation time.
    pub matched_paths: Vec<PathId>,
    /// Index statistics.
    pub stats: IndexStats,
    /// The physical structure, or `None` for a virtual index.
    pub physical: Option<PhysicalIndex>,
}

impl IndexDef {
    /// Whether this is a virtual (what-if) index.
    pub fn is_virtual(&self) -> bool {
        self.physical.is_none()
    }
}

/// The index catalog of one collection.
#[derive(Debug)]
pub struct Catalog {
    defs: Vec<Option<IndexDef>>,
    /// Telemetry sink for virtual-index churn (off unless attached).
    telemetry: Telemetry,
}

impl Default for Catalog {
    fn default() -> Self {
        Self {
            defs: Vec::new(),
            telemetry: Telemetry::off(),
        }
    }
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry sink; virtual-index creations and drops are
    /// counted against it.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    /// Derives [`IndexStats`] for a pattern from data statistics — the
    /// paper's derivation of virtual-index statistics from RUNSTATS output.
    pub fn derive_stats(
        collection: &Collection,
        stats: &CollectionStats,
        pattern: &LinearPath,
        kind: ValueKind,
    ) -> (Vec<PathId>, IndexStats) {
        let matcher = PathMatcher::new(pattern, collection.vocab());
        let matched = matcher.matching_path_ids(collection.vocab());
        let mut entries = 0u64;
        let mut distinct = 0u64;
        let mut key_bytes = 0.0f64;
        for &pid in &matched {
            let ps = stats.path(pid);
            match kind {
                ValueKind::Str => {
                    entries += ps.value_count;
                    distinct += ps.distinct_values;
                    key_bytes += ps.value_bytes as f64;
                }
                ValueKind::Num => {
                    entries += ps.numeric_count;
                    // Distinct numeric values are bounded by distinct values.
                    distinct += ps.distinct_values.min(ps.numeric_count);
                    key_bytes += ps.numeric_count as f64 * 8.0;
                }
            }
        }
        let distinct = distinct.min(entries);
        let avg_key_width = if entries == 0 {
            match kind {
                ValueKind::Str => 16.0,
                ValueKind::Num => 8.0,
            }
        } else {
            key_bytes / entries as f64
        };
        let istats = IndexStats {
            entries,
            distinct,
            size_bytes: index_size_bytes(entries, avg_key_width),
            levels: index_levels(entries, avg_key_width),
            avg_key_width,
        };
        (matched, istats)
    }

    fn push(&mut self, mut def: IndexDef) -> IndexId {
        let id = IndexId(self.defs.len() as u32);
        def.id = id;
        self.defs.push(Some(def));
        id
    }

    /// Creates a virtual index with derived statistics.
    pub fn create_virtual(
        &mut self,
        collection: &Collection,
        stats: &CollectionStats,
        pattern: &LinearPath,
        kind: ValueKind,
    ) -> IndexId {
        let (matched_paths, istats) = Self::derive_stats(collection, stats, pattern, kind);
        self.telemetry.incr(Counter::StatsDerivations);
        self.telemetry.incr(Counter::VirtualIndexesCreated);
        self.telemetry
            .add(Counter::EstIndexBytes, istats.size_bytes);
        self.push(IndexDef {
            id: IndexId(0),
            pattern: pattern.clone(),
            kind,
            matched_paths,
            stats: istats,
            physical: None,
        })
    }

    /// Creates (builds) a physical index over the collection.
    pub fn create_physical(
        &mut self,
        collection: &Collection,
        pattern: &LinearPath,
        kind: ValueKind,
    ) -> IndexId {
        let physical = PhysicalIndex::build(collection, pattern, kind);
        let matcher = PathMatcher::new(pattern, collection.vocab());
        let matched_paths = matcher.matching_path_ids(collection.vocab());
        let stats = IndexStats {
            entries: physical.entries(),
            distinct: physical.distinct_keys(),
            size_bytes: index_size_bytes(physical.entries(), physical.avg_key_width()),
            levels: index_levels(physical.entries(), physical.avg_key_width()),
            avg_key_width: physical.avg_key_width(),
        };
        self.push(IndexDef {
            id: IndexId(0),
            pattern: pattern.clone(),
            kind,
            matched_paths,
            stats,
            physical: Some(physical),
        })
    }

    /// Drops an index. Idempotent.
    pub fn drop_index(&mut self, id: IndexId) {
        if let Some(slot) = self.defs.get_mut(id.index()) {
            if slot.as_ref().is_some_and(|d| d.is_virtual()) {
                self.telemetry.incr(Counter::VirtualIndexesDropped);
            }
            *slot = None;
        }
    }

    /// Drops every virtual index (the advisor does this between what-if
    /// evaluations).
    pub fn drop_all_virtual(&mut self) {
        let mut dropped = 0u64;
        for slot in &mut self.defs {
            if slot.as_ref().is_some_and(|d| d.is_virtual()) {
                *slot = None;
                dropped += 1;
            }
        }
        self.telemetry.add(Counter::VirtualIndexesDropped, dropped);
    }

    /// Drops every index, physical and virtual.
    pub fn drop_all(&mut self) {
        for slot in &mut self.defs {
            *slot = None;
        }
    }

    /// Borrows an index definition.
    pub fn get(&self, id: IndexId) -> Option<&IndexDef> {
        self.defs.get(id.index()).and_then(|d| d.as_ref())
    }

    /// Iterates over live index definitions.
    pub fn iter(&self) -> impl Iterator<Item = &IndexDef> {
        self.defs.iter().filter_map(|d| d.as_ref())
    }

    /// Number of live indexes.
    pub fn len(&self) -> usize {
        self.defs.iter().filter(|d| d.is_some()).count()
    }

    /// Whether the catalog has no live indexes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total estimated size of all live indexes.
    pub fn total_size(&self) -> u64 {
        self.iter().map(|d| d.stats.size_bytes).sum()
    }

    /// Mutable access to a physical index for maintenance.
    pub fn physical_mut(&mut self, id: IndexId) -> Option<&mut PhysicalIndex> {
        self.defs
            .get_mut(id.index())
            .and_then(|d| d.as_mut())
            .and_then(|d| d.physical.as_mut())
    }

    /// Number of id slots ever allocated (live or dropped). Overlay ids
    /// start past this boundary so they can never collide with catalog ids.
    pub fn slot_capacity(&self) -> usize {
        self.defs.len()
    }

    /// A read-only view of this catalog with no overlay.
    pub fn view(&self) -> CatalogView<'_> {
        CatalogView {
            base: self,
            overlay: &[],
            overlay_base: self.defs.len(),
        }
    }

    /// Starts a what-if overlay on this catalog, counting virtual-index
    /// churn against the catalog's own telemetry sink.
    pub fn overlay(&self) -> CatalogOverlay<'_> {
        CatalogOverlay::with_telemetry(self, &self.telemetry)
    }
}

/// A transient set of virtual indexes layered over an immutable [`Catalog`].
///
/// This is the side-effect-free replacement for create/drop virtual-index
/// churn in the shared catalog: a what-if evaluation builds an overlay for
/// the candidate configuration, hands the combined [`CatalogView`] to the
/// optimizer, and discards the overlay afterwards. The base catalog is
/// never touched, so any number of overlays can cost concurrently against
/// the same catalog.
///
/// Overlay entries get ids past [`Catalog::slot_capacity`], so plans can
/// reference overlay indexes without ambiguity, and the created/dropped
/// telemetry balance is preserved: every index added here is counted
/// created, and counted dropped when the overlay goes away.
#[derive(Debug)]
pub struct CatalogOverlay<'a> {
    base: &'a Catalog,
    defs: Vec<IndexDef>,
    telemetry: Telemetry,
}

impl<'a> CatalogOverlay<'a> {
    /// Starts an empty overlay counting churn against `telemetry`.
    pub fn with_telemetry(base: &'a Catalog, telemetry: &Telemetry) -> Self {
        Self {
            base,
            defs: Vec::new(),
            telemetry: telemetry.clone(),
        }
    }

    /// Adds a virtual index with derived statistics (the overlay analogue
    /// of [`Catalog::create_virtual`]).
    pub fn add_virtual(
        &mut self,
        collection: &Collection,
        stats: &CollectionStats,
        pattern: &LinearPath,
        kind: ValueKind,
    ) -> IndexId {
        let (matched_paths, istats) = Catalog::derive_stats(collection, stats, pattern, kind);
        self.telemetry.incr(Counter::StatsDerivations);
        self.telemetry.incr(Counter::VirtualIndexesCreated);
        self.telemetry
            .add(Counter::EstIndexBytes, istats.size_bytes);
        let id = IndexId((self.base.defs.len() + self.defs.len()) as u32);
        self.defs.push(IndexDef {
            id,
            pattern: pattern.clone(),
            kind,
            matched_paths,
            stats: istats,
            physical: None,
        });
        id
    }

    /// Number of overlay entries.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the overlay holds no entries.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The combined base + overlay view.
    pub fn view(&self) -> CatalogView<'_> {
        CatalogView {
            base: self.base,
            overlay: &self.defs,
            overlay_base: self.base.defs.len(),
        }
    }
}

impl Drop for CatalogOverlay<'_> {
    fn drop(&mut self) {
        // Balance the created counter: discarding the overlay is the
        // what-if "drop" of its virtual indexes.
        self.telemetry
            .add(Counter::VirtualIndexesDropped, self.defs.len() as u64);
    }
}

/// An immutable view of a catalog plus an optional what-if overlay.
///
/// Cheap to copy; the optimizer's Evaluate-Indexes mode matches and costs
/// against this instead of a `&Catalog`, so candidate configurations never
/// mutate shared state.
#[derive(Debug, Clone, Copy)]
pub struct CatalogView<'a> {
    base: &'a Catalog,
    overlay: &'a [IndexDef],
    overlay_base: usize,
}

impl<'a> CatalogView<'a> {
    /// Borrows an index definition, routing by the overlay id boundary.
    pub fn get(&self, id: IndexId) -> Option<&'a IndexDef> {
        if id.index() >= self.overlay_base {
            self.overlay.get(id.index() - self.overlay_base)
        } else {
            self.base.get(id)
        }
    }

    /// Iterates over live base definitions, then overlay definitions.
    pub fn iter(&self) -> impl Iterator<Item = &'a IndexDef> {
        self.base.iter().chain(self.overlay.iter())
    }

    /// Number of live indexes visible through the view.
    pub fn len(&self) -> usize {
        self.base.len() + self.overlay.len()
    }

    /// Whether the view exposes no indexes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::runstats;
    use xia_xpath::parse_linear_path;

    fn setup() -> (Collection, CollectionStats) {
        let mut c = Collection::new("SDOC");
        for i in 0..50 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Yield", (i % 10) as f64);
            });
        }
        let s = runstats(&c);
        (c, s)
    }

    #[test]
    fn virtual_stats_match_physical_stats() {
        let (c, s) = setup();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let mut cat = Catalog::new();
        let v = cat.create_virtual(&c, &s, &p, ValueKind::Str);
        let ph = cat.create_physical(&c, &p, ValueKind::Str);
        let vd = cat.get(v).unwrap();
        let pd = cat.get(ph).unwrap();
        assert!(vd.is_virtual());
        assert!(!pd.is_virtual());
        assert_eq!(vd.stats.entries, pd.stats.entries);
        assert_eq!(vd.stats.distinct, pd.stats.distinct);
        assert_eq!(vd.stats.size_bytes, pd.stats.size_bytes);
        assert_eq!(vd.stats.levels, pd.stats.levels);
    }

    #[test]
    fn numeric_virtual_stats() {
        let (c, s) = setup();
        let p = parse_linear_path("/Security/Yield").unwrap();
        let mut cat = Catalog::new();
        let v = cat.create_virtual(&c, &s, &p, ValueKind::Num);
        let d = cat.get(v).unwrap();
        assert_eq!(d.stats.entries, 50);
        assert_eq!(d.stats.distinct, 10);
        assert_eq!(d.stats.avg_key_width, 8.0);
    }

    #[test]
    fn universal_pattern_matches_all_paths() {
        let (c, s) = setup();
        let mut cat = Catalog::new();
        let v = cat.create_virtual(&c, &s, &LinearPath::universal(), ValueKind::Str);
        let d = cat.get(v).unwrap();
        assert_eq!(d.matched_paths.len(), c.vocab().paths.len());
        // Every valued node is an entry.
        assert_eq!(d.stats.entries, 100);
    }

    #[test]
    fn drop_all_virtual_keeps_physical() {
        let (c, s) = setup();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let mut cat = Catalog::new();
        cat.create_virtual(&c, &s, &p, ValueKind::Str);
        let ph = cat.create_physical(&c, &p, ValueKind::Str);
        cat.drop_all_virtual();
        assert_eq!(cat.len(), 1);
        assert!(cat.get(ph).is_some());
    }

    #[test]
    fn drop_index_is_idempotent() {
        let (c, s) = setup();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let mut cat = Catalog::new();
        let id = cat.create_virtual(&c, &s, &p, ValueKind::Str);
        cat.drop_index(id);
        cat.drop_index(id);
        assert!(cat.is_empty());
        assert!(cat.get(id).is_none());
    }

    #[test]
    fn total_size_sums_live_indexes() {
        let (c, s) = setup();
        let mut cat = Catalog::new();
        let a = cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        let b = cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Yield").unwrap(),
            ValueKind::Num,
        );
        let total = cat.total_size();
        let sa = cat.get(a).unwrap().stats.size_bytes;
        let sb = cat.get(b).unwrap().stats.size_bytes;
        assert_eq!(total, sa + sb);
    }

    #[test]
    fn telemetry_counts_virtual_index_churn() {
        let (c, s) = setup();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let t = Telemetry::new();
        let mut cat = Catalog::new();
        cat.set_telemetry(&t);
        let v = cat.create_virtual(&c, &s, &p, ValueKind::Str);
        cat.create_virtual(&c, &s, &p, ValueKind::Num);
        let ph = cat.create_physical(&c, &p, ValueKind::Str);
        assert_eq!(t.get(Counter::VirtualIndexesCreated), 2);
        assert_eq!(t.get(Counter::StatsDerivations), 2);
        assert_eq!(
            t.get(Counter::EstIndexBytes),
            cat.get(v).unwrap().stats.size_bytes + cat.iter().nth(1).unwrap().stats.size_bytes
        );
        cat.drop_index(v);
        cat.drop_index(ph); // physical: not counted
        cat.drop_all_virtual();
        assert_eq!(t.get(Counter::VirtualIndexesDropped), 2);
    }

    #[test]
    fn overlay_is_visible_through_view_but_never_touches_base() {
        let (c, s) = setup();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let mut cat = Catalog::new();
        let ph = cat.create_physical(&c, &p, ValueKind::Str);
        let t = Telemetry::new();
        let mut ov = CatalogOverlay::with_telemetry(&cat, &t);
        let v = ov.add_virtual(&c, &s, &p, ValueKind::Num);
        assert!(v.index() >= cat.slot_capacity(), "overlay ids are disjoint");

        let view = ov.view();
        assert_eq!(view.len(), 2);
        assert!(view.get(ph).is_some_and(|d| !d.is_virtual()));
        assert!(view.get(v).is_some_and(|d| d.is_virtual()));
        assert_eq!(view.iter().count(), 2);
        // The base catalog is untouched.
        assert_eq!(cat.len(), 1);
        assert!(cat.get(v).is_none());
    }

    #[test]
    fn overlay_telemetry_balances_created_and_dropped() {
        let (c, s) = setup();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let cat = Catalog::new();
        let t = Telemetry::new();
        {
            let mut ov = CatalogOverlay::with_telemetry(&cat, &t);
            ov.add_virtual(&c, &s, &p, ValueKind::Str);
            ov.add_virtual(&c, &s, &p, ValueKind::Num);
            assert_eq!(t.get(Counter::VirtualIndexesCreated), 2);
            assert_eq!(t.get(Counter::StatsDerivations), 2);
            assert_eq!(t.get(Counter::VirtualIndexesDropped), 0);
        }
        assert_eq!(t.get(Counter::VirtualIndexesDropped), 2);
    }

    #[test]
    fn overlay_stats_match_catalog_derivation() {
        let (c, s) = setup();
        let p = parse_linear_path("/Security/Yield").unwrap();
        let mut cat = Catalog::new();
        let direct = cat.create_virtual(&c, &s, &p, ValueKind::Num);
        let mut ov = cat.overlay();
        let layered = ov.add_virtual(&c, &s, &p, ValueKind::Num);
        let view = ov.view();
        let a = &view.get(direct).unwrap().stats;
        let b = &view.get(layered).unwrap().stats;
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.distinct, b.distinct);
        assert_eq!(a.size_bytes, b.size_bytes);
    }

    #[test]
    fn plain_view_ids_route_to_base() {
        let (c, _s) = setup();
        let p = parse_linear_path("/Security/Symbol").unwrap();
        let mut cat = Catalog::new();
        let ph = cat.create_physical(&c, &p, ValueKind::Str);
        let view = cat.view();
        assert_eq!(view.len(), cat.len());
        assert!(view.get(ph).is_some());
        assert!(view.get(IndexId(99)).is_none());
    }

    #[test]
    fn general_index_is_at_least_as_large_as_the_specifics_it_covers() {
        // The paper: "general indexes are larger than the specific indexes
        // they generalize because they contain more nodes from the data".
        let (c, s) = setup();
        let mut cat = Catalog::new();
        let gen = cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security//*").unwrap(),
            ValueKind::Str,
        );
        let sp1 = cat.create_virtual(
            &c,
            &s,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        let g = cat.get(gen).unwrap().stats.size_bytes;
        let s1 = cat.get(sp1).unwrap().stats.size_bytes;
        assert!(g >= s1);
    }
}
