//! Columnar leaf-value storage.
//!
//! The DOM arena is the system of record, but statistics collection and
//! physical index builds only care about *leaf values grouped by rooted
//! path* — and chasing `Node` pointers document-by-document for those is
//! the single hottest loop once collections grow 100×. The
//! [`ColumnStore`] batches every leaf value into per-path typed arrays
//! (one string column, one numeric column per path), so RUNSTATS and
//! `PhysicalIndex::build` iterate contiguous slices instead.
//!
//! Row order invariant: within one path, rows are appended in `(DocId,
//! NodeId)` ascending order. Both writers preserve it — the fused
//! streaming sink appends at event time (a valued element closes before
//! any later node at its path opens, and attributes are emitted in
//! preorder), and [`ColumnStore::append_doc`] walks the arena in `NodeId`
//! order. Consumers rely on this to reproduce the exact scan-order output
//! of the DOM path.

use crate::collection::DocId;
use xia_xml::{Document, NodeId, PathId, Value};

/// Columns for one rooted path.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PathColumn {
    node_count: u64,
    /// Documents containing at least one node at this path, ascending,
    /// deduplicated (consecutive-dedup; appends arrive in ascending doc
    /// order, so this is exact).
    struct_docs: Vec<DocId>,
    /// Per value row: owning document.
    docs: Vec<DocId>,
    /// Per value row: the valued node.
    nodes: Vec<NodeId>,
    /// Per value row: the raw string value.
    strs: Vec<Box<str>>,
    /// Sparse numeric column: `(row index, numeric view)` for every row
    /// whose value parses as a number, in row order.
    nums: Vec<(u32, f64)>,
}

impl PathColumn {
    /// Total nodes at this path (valued or not).
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    /// Documents containing at least one node at this path (ascending,
    /// deduplicated).
    pub fn struct_docs(&self) -> &[DocId] {
        &self.struct_docs
    }

    /// Per-row owning documents.
    pub fn docs(&self) -> &[DocId] {
        &self.docs
    }

    /// Per-row valued nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The string column (one entry per value row).
    pub fn strs(&self) -> &[Box<str>] {
        &self.strs
    }

    /// The numeric column: `(row, value)` for rows with numeric values.
    pub fn nums(&self) -> &[(u32, f64)] {
        &self.nums
    }

    /// Number of value rows.
    pub fn rows(&self) -> u64 {
        self.strs.len() as u64
    }
}

/// Columnar projection of a whole collection, dense by [`PathId`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ColumnStore {
    cols: Vec<PathColumn>,
    total_nodes: u64,
}

impl ColumnStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all rows.
    pub fn clear(&mut self) {
        self.cols.clear();
        self.total_nodes = 0;
    }

    fn col_mut(&mut self, path: PathId) -> &mut PathColumn {
        let i = path.index();
        if i >= self.cols.len() {
            self.cols.resize_with(i + 1, PathColumn::default);
        }
        &mut self.cols[i]
    }

    /// Records a node (valued or not) at `path` in `doc`. Calls must
    /// arrive in ascending `(doc, node)` order per path.
    pub fn note_node(&mut self, path: PathId, doc: DocId) {
        self.total_nodes += 1;
        let col = self.col_mut(path);
        col.node_count += 1;
        if col.struct_docs.last() != Some(&doc) {
            col.struct_docs.push(doc);
        }
    }

    /// Appends a value row. Calls must arrive in ascending `(doc, node)`
    /// order per path.
    pub fn push_value(&mut self, path: PathId, doc: DocId, node: NodeId, value: &Value) {
        let col = self.col_mut(path);
        let row = col.strs.len() as u32;
        col.docs.push(doc);
        col.nodes.push(node);
        col.strs.push(value.as_str().into());
        if let Some(n) = value.as_num() {
            col.nums.push((row, n));
        }
    }

    /// Appends every node of `doc` (arena `NodeId` order, which satisfies
    /// the per-path row-order invariant).
    pub fn append_doc(&mut self, doc_id: DocId, doc: &Document) {
        for (node_id, node) in doc.nodes() {
            self.note_node(node.path, doc_id);
            if let Some(v) = &node.value {
                self.push_value(node.path, doc_id, node_id, v);
            }
        }
    }

    /// Columns for one path; `None` when no node at that path was seen.
    pub fn col(&self, path: PathId) -> Option<&PathColumn> {
        self.cols.get(path.index())
    }

    /// Number of path slots (may be smaller than the vocabulary's path
    /// count when trailing paths have no nodes).
    pub fn path_count(&self) -> usize {
        self.cols.len()
    }

    /// Total nodes recorded across all paths.
    pub fn total_nodes(&self) -> u64 {
        self.total_nodes
    }

    /// Total value rows across all paths.
    pub fn total_rows(&self) -> u64 {
        self.cols.iter().map(PathColumn::rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_xml::{parse_document, Vocabulary};

    #[test]
    fn append_doc_projects_values_per_path() {
        let mut vocab = Vocabulary::new();
        let doc = parse_document(
            r#"<a><b x="7">12</b><b x="8">hello</b><c/></a>"#,
            &mut vocab,
        )
        .unwrap();
        let mut store = ColumnStore::new();
        store.append_doc(DocId(0), &doc);
        assert_eq!(store.total_nodes(), 6);
        assert_eq!(store.total_rows(), 4);

        let b_path = doc.node(NodeId(1)).path;
        let b = store.col(b_path).unwrap();
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.struct_docs(), &[DocId(0)]);
        assert_eq!(b.strs().len(), 2);
        assert_eq!(&*b.strs()[0], "12");
        assert_eq!(&*b.strs()[1], "hello");
        // Only the first row is numeric.
        assert_eq!(b.nums(), &[(0, 12.0)]);
        // Rows are in NodeId order.
        assert!(b.nodes()[0] < b.nodes()[1]);

        let x_path = doc.node(NodeId(2)).path;
        let x = store.col(x_path).unwrap();
        assert_eq!(x.nums(), &[(0, 7.0), (1, 8.0)]);
    }

    #[test]
    fn struct_docs_dedup_consecutive() {
        let mut vocab = Vocabulary::new();
        let d0 = parse_document("<a><b>1</b><b>2</b></a>", &mut vocab).unwrap();
        let d1 = parse_document("<a><b>3</b></a>", &mut vocab).unwrap();
        let mut store = ColumnStore::new();
        store.append_doc(DocId(0), &d0);
        store.append_doc(DocId(1), &d1);
        let b_path = d0.node(NodeId(1)).path;
        let b = store.col(b_path).unwrap();
        assert_eq!(b.struct_docs(), &[DocId(0), DocId(1)]);
        assert_eq!(b.node_count(), 3);
        assert_eq!(b.docs(), &[DocId(0), DocId(0), DocId(1)]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut vocab = Vocabulary::new();
        let doc = parse_document("<a><b>1</b></a>", &mut vocab).unwrap();
        let mut store = ColumnStore::new();
        store.append_doc(DocId(0), &doc);
        store.clear();
        assert_eq!(store, ColumnStore::new());
    }
}
