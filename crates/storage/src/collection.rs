//! Multi-document XML collection.

use crate::columnar::ColumnStore;
use xia_obs::{Counter, Telemetry};
use xia_xml::{
    parse_document, stream_document, DocBuilder, Document, DocumentSink, StreamSink, Symbol, Value,
    Vocabulary, XmlError,
};

/// Identifier of a document within a collection. Ids are never reused; a
/// deleted document leaves a tombstone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    /// Raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A collection of XML documents sharing one vocabulary — the equivalent of
/// one XML-typed column in the paper's DB2 prototype.
///
/// Alongside the DOM arenas the collection maintains a columnar
/// projection of every leaf value ([`ColumnStore`]); inserts keep it
/// fresh incrementally (streamed inserts fuse the column append into the
/// parse), while deletes and in-place updates mark it dirty until the
/// next [`Collection::ensure_columns`].
#[derive(Debug)]
pub struct Collection {
    name: String,
    vocab: Vocabulary,
    docs: Vec<Option<Document>>,
    live: usize,
    columns: ColumnStore,
    columns_clean: bool,
    telemetry: Telemetry,
}

impl Default for Collection {
    fn default() -> Self {
        Self::new("")
    }
}

/// Streaming sink that builds the DOM arena *and* appends the document's
/// leaf values to the collection's column store in one pass (events
/// arrive in the per-path row order the store requires; see
/// `columnar.rs`).
struct ColumnDocSink<'a> {
    inner: DocumentSink,
    columns: &'a mut ColumnStore,
    doc: DocId,
}

impl StreamSink for ColumnDocSink<'_> {
    fn start_element(&mut self, name: Symbol, path: xia_xml::PathId) {
        self.columns.note_node(path, self.doc);
        self.inner.start_element(name, path);
    }

    fn attribute(&mut self, name: Symbol, path: xia_xml::PathId, value: Value) {
        self.columns.note_node(path, self.doc);
        self.columns
            .push_value(path, self.doc, self.inner.next_id(), &value);
        self.inner.attribute(name, path, value);
    }

    fn end_element(&mut self, name: Symbol, path: xia_xml::PathId, value: Option<Value>) {
        if let (Some(v), Some(node)) = (&value, self.inner.open_element()) {
            self.columns.push_value(path, self.doc, node, v);
        }
        self.inner.end_element(name, path, value);
    }
}

impl Collection {
    /// Creates an empty collection.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            vocab: Vocabulary::new(),
            docs: Vec::new(),
            live: 0,
            columns: ColumnStore::new(),
            columns_clean: true,
            telemetry: Telemetry::off(),
        }
    }

    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Parses and stores an XML document through the streaming parse
    /// path: one scan builds the DOM arena and appends the leaf values to
    /// the column store, without an intermediate tree walk. Produces a
    /// state byte-identical to [`Collection::insert_xml_dom`].
    pub fn insert_xml(&mut self, xml: &str) -> Result<DocId, XmlError> {
        let id = DocId(self.docs.len() as u32);
        if !self.columns_clean {
            // Columns are already stale: skip the fused append, parse
            // straight into the arena.
            let mut sink = DocumentSink::new();
            stream_document(xml, &mut self.vocab, &mut sink)?;
            self.telemetry.incr(Counter::DocsStreamed);
            let doc = sink
                .into_document()
                .map_err(|message| XmlError { offset: 0, message })?;
            return Ok(self.push_doc(doc));
        }
        let mut sink = ColumnDocSink {
            inner: DocumentSink::new(),
            columns: &mut self.columns,
            doc: id,
        };
        match stream_document(xml, &mut self.vocab, &mut sink) {
            Ok(()) => {
                self.telemetry.incr(Counter::DocsStreamed);
                let doc = sink
                    .inner
                    .into_document()
                    .map_err(|message| XmlError { offset: 0, message })?;
                Ok(self.push_doc(doc))
            }
            Err(e) => {
                // The fused sink may have appended rows for the aborted
                // document; rebuild lazily before the next columnar scan.
                self.columns_clean = false;
                Err(e)
            }
        }
    }

    /// Parses and stores an XML document through the DOM parser — the
    /// `--no-stream` escape hatch. Byte-identical outcome to
    /// [`Collection::insert_xml`].
    pub fn insert_xml_dom(&mut self, xml: &str) -> Result<DocId, XmlError> {
        let doc = parse_document(xml, &mut self.vocab)?;
        Ok(self.insert_document(doc))
    }

    /// Stores a document parsed against a *different* vocabulary by
    /// re-interning it into this collection's vocabulary (the merge step
    /// of parallel ingestion; see [`Document::remap`]).
    pub fn insert_parsed(&mut self, from: &Vocabulary, doc: &Document) -> DocId {
        let remapped = doc.remap(from, &mut self.vocab);
        self.insert_document(remapped)
    }

    /// Stores a pre-built document. The document must have been built
    /// against this collection's vocabulary.
    pub fn insert_document(&mut self, doc: Document) -> DocId {
        let id = DocId(self.docs.len() as u32);
        if self.columns_clean {
            self.columns.append_doc(id, &doc);
        }
        self.push_doc(doc)
    }

    fn push_doc(&mut self, doc: Document) -> DocId {
        let id = DocId(self.docs.len() as u32);
        self.docs.push(Some(doc));
        self.live += 1;
        id
    }

    /// Builds a document in place with a [`DocBuilder`] closure.
    ///
    /// ```
    /// use xia_storage::Collection;
    /// let mut c = Collection::new("SDOC");
    /// let id = c.build_doc("Security", |b| {
    ///     b.leaf("Symbol", "IBM");
    /// });
    /// assert_eq!(c.doc(id).unwrap().len(), 2);
    /// ```
    pub fn build_doc(&mut self, root: &str, f: impl FnOnce(&mut DocBuilder)) -> DocId {
        let mut b = DocBuilder::new(&mut self.vocab, root);
        f(&mut b);
        let doc = b.finish();
        self.insert_document(doc)
    }

    /// Removes a document, returning it. Idempotent. Marks the columnar
    /// projection stale.
    pub fn delete(&mut self, id: DocId) -> Option<Document> {
        let slot = self.docs.get_mut(id.index())?;
        let doc = slot.take();
        if doc.is_some() {
            self.live -= 1;
            self.columns_clean = false;
        }
        doc
    }

    /// Borrows a live document.
    pub fn doc(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id.index()).and_then(|d| d.as_ref())
    }

    /// Mutably borrows a live document (used by `update` execution).
    /// Marks the columnar projection stale: the caller may rewrite leaf
    /// values behind the columns' back.
    pub fn doc_mut(&mut self, id: DocId) -> Option<&mut Document> {
        let doc = self.docs.get_mut(id.index()).and_then(|d| d.as_mut());
        if doc.is_some() {
            self.columns_clean = false;
        }
        doc
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the collection has no live documents.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over live documents.
    pub fn iter_docs(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.docs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().map(|doc| (DocId(i as u32), doc)))
    }

    /// Total node count over live documents.
    pub fn total_nodes(&self) -> u64 {
        self.iter_docs().map(|(_, d)| d.len() as u64).sum()
    }

    /// Exposes the vocabulary mutably for callers that need to pre-intern
    /// (e.g. parsing a document before deciding to insert it).
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// Total slots including tombstones.
    pub fn slot_count(&self) -> usize {
        self.docs.len()
    }

    /// Fraction of slots that are tombstones (deleted documents).
    pub fn tombstone_ratio(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            1.0 - self.live as f64 / self.docs.len() as f64
        }
    }

    /// Compacts the collection: drops tombstones and renumbers the
    /// remaining documents densely. Returns the mapping `old → new`
    /// [`DocId`] so callers can fix external references; physical indexes
    /// must be rebuilt afterwards (the catalog's doc ids are invalidated).
    pub fn compact(&mut self) -> Vec<(DocId, DocId)> {
        let mut mapping = Vec::with_capacity(self.live);
        let mut compacted: Vec<Option<Document>> = Vec::with_capacity(self.live);
        for (i, slot) in self.docs.iter_mut().enumerate() {
            if let Some(doc) = slot.take() {
                mapping.push((DocId(i as u32), DocId(compacted.len() as u32)));
                compacted.push(Some(doc));
            }
        }
        self.docs = compacted;
        self.rebuild_columns();
        mapping
    }

    /// The columnar leaf projection, or `None` while it is stale (after a
    /// delete or an in-place update). Call
    /// [`Collection::ensure_columns`] to refresh it.
    pub fn columns(&self) -> Option<&ColumnStore> {
        self.columns_clean.then_some(&self.columns)
    }

    /// Rebuilds the columnar projection if stale.
    pub fn ensure_columns(&mut self) {
        if !self.columns_clean {
            self.rebuild_columns();
        }
    }

    fn rebuild_columns(&mut self) {
        self.columns.clear();
        for (i, slot) in self.docs.iter().enumerate() {
            if let Some(doc) = slot {
                self.columns.append_doc(DocId(i as u32), doc);
            }
        }
        self.columns_clean = true;
    }

    /// Attaches a telemetry sink; ingestion and columnar-scan counters
    /// (`docs_streamed`, `ingest_batches`, `columnar_scan_rows`) report
    /// to it.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    /// The attached telemetry sink (disabled unless set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_parse_and_read_back() {
        let mut c = Collection::new("SDOC");
        let id = c
            .insert_xml("<Security><Symbol>IBM</Symbol></Security>")
            .unwrap();
        assert_eq!(c.len(), 1);
        let doc = c.doc(id).unwrap();
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn delete_leaves_tombstone() {
        let mut c = Collection::new("SDOC");
        let a = c.insert_xml("<a/>").unwrap();
        let b = c.insert_xml("<b/>").unwrap();
        assert!(c.delete(a).is_some());
        assert!(c.delete(a).is_none());
        assert_eq!(c.len(), 1);
        assert!(c.doc(a).is_none());
        assert!(c.doc(b).is_some());
        // Ids are not reused.
        let d = c.insert_xml("<c/>").unwrap();
        assert_ne!(d, a);
    }

    #[test]
    fn shared_vocabulary_across_documents() {
        let mut c = Collection::new("SDOC");
        c.insert_xml("<Security><Yield>4.5</Yield></Security>")
            .unwrap();
        c.insert_xml("<Security><Yield>3.2</Yield></Security>")
            .unwrap();
        // /Security and /Security/Yield only.
        assert_eq!(c.vocab().paths.len(), 2);
        assert_eq!(c.total_nodes(), 4);
    }

    #[test]
    fn compact_drops_tombstones_and_renumbers() {
        let mut c = Collection::new("X");
        let ids: Vec<_> = (0..6)
            .map(|i| {
                c.build_doc("a", |b| {
                    b.leaf("v", i as f64);
                })
            })
            .collect();
        c.delete(ids[1]);
        c.delete(ids[4]);
        assert!((c.tombstone_ratio() - 2.0 / 6.0).abs() < 1e-9);
        let mapping = c.compact();
        assert_eq!(mapping.len(), 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.tombstone_ratio(), 0.0);
        // Mapping is order-preserving and dense.
        assert_eq!(
            mapping,
            vec![
                (DocId(0), DocId(0)),
                (DocId(2), DocId(1)),
                (DocId(3), DocId(2)),
                (DocId(5), DocId(3)),
            ]
        );
        // Surviving document values follow the mapping.
        let v = c.vocab().lookup_name("v").unwrap();
        assert_eq!(
            c.doc(DocId(1)).unwrap().value_at(&[v]).unwrap().as_num(),
            Some(2.0)
        );
        // New inserts reuse the compacted id space.
        let next = c.build_doc("a", |b| {
            b.leaf("v", 9.0);
        });
        assert_eq!(next, DocId(4));
    }

    #[test]
    fn compact_of_clean_collection_is_identity() {
        let mut c = Collection::new("X");
        c.insert_xml("<a/>").unwrap();
        c.insert_xml("<b/>").unwrap();
        let mapping = c.compact();
        assert_eq!(mapping, vec![(DocId(0), DocId(0)), (DocId(1), DocId(1))]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn iter_docs_skips_deleted() {
        let mut c = Collection::new("X");
        let a = c.insert_xml("<a/>").unwrap();
        c.insert_xml("<b/>").unwrap();
        c.delete(a);
        let ids: Vec<_> = c.iter_docs().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![DocId(1)]);
    }
}
