//! # xia-storage
//!
//! The storage substrate of the XML Index Advisor reproduction: the role
//! DB2 pureXML's XML-typed columns play in the paper.
//!
//! * [`Collection`] — a multi-document XML store with a shared
//!   [`xia_xml::Vocabulary`] (names + rooted paths).
//! * [`stats`] — RUNSTATS-equivalent data statistics: per-path node/value
//!   counts, distinct counts, numeric ranges and equi-depth histograms.
//!   Virtual-index statistics are *derived* from these, exactly as the
//!   paper derives index statistics from data statistics (Section III).
//! * [`PhysicalIndex`] — a partial XML value index: a B-tree over the
//!   values of the nodes reachable by a linear XPath index pattern.
//! * [`Catalog`] — index metadata, covering both physical indexes and
//!   *virtual* indexes (catalog-only, never usable for execution).
//! * [`Database`] — named collections with their catalogs and statistics.

pub mod catalog;
pub mod collection;
pub mod columnar;
pub mod database;
pub mod index;
pub mod ingest;
pub mod persist;
pub mod size;
pub mod stats;

pub use catalog::{Catalog, CatalogOverlay, CatalogView, IndexDef, IndexId, IndexStats};
pub use collection::{Collection, DocId};
pub use columnar::{ColumnStore, PathColumn};
pub use database::Database;
pub use index::{OrdF64, PhysicalIndex, Posting};
pub use ingest::{ingest_batch, resolve_jobs, IngestError, IngestOptions, IngestReport};
pub use persist::{
    fnv1a64, load_database, load_database_from, load_database_lenient,
    load_database_lenient_faulted, load_database_lenient_from, save_database,
    save_database_faulted, save_database_to, save_database_to_faulted, LoadReport, PersistError,
};
pub use stats::{runstats, runstats_scan, CollectionStats, PathStat};
