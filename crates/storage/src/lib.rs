//! # xia-storage
//!
//! The storage substrate of the XML Index Advisor reproduction: the role
//! DB2 pureXML's XML-typed columns play in the paper.
//!
//! * [`Collection`] — a multi-document XML store with a shared
//!   [`xia_xml::Vocabulary`] (names + rooted paths).
//! * [`stats`] — RUNSTATS-equivalent data statistics: per-path node/value
//!   counts, distinct counts, numeric ranges and equi-depth histograms.
//!   Virtual-index statistics are *derived* from these, exactly as the
//!   paper derives index statistics from data statistics (Section III).
//! * [`PhysicalIndex`] — a partial XML value index: a B-tree over the
//!   values of the nodes reachable by a linear XPath index pattern.
//! * [`Catalog`] — index metadata, covering both physical indexes and
//!   *virtual* indexes (catalog-only, never usable for execution).
//! * [`Database`] — named collections with their catalogs and statistics.

pub mod catalog;
pub mod collection;
pub mod database;
pub mod index;
pub mod persist;
pub mod size;
pub mod stats;

pub use catalog::{Catalog, IndexDef, IndexId, IndexStats};
pub use collection::{Collection, DocId};
pub use database::Database;
pub use index::{OrdF64, PhysicalIndex, Posting};
pub use persist::{load_database, save_database, PersistError};
pub use stats::{runstats, CollectionStats, PathStat};
