//! Database persistence.
//!
//! A simple, dependency-free on-disk format so advisor sessions (and the
//! `xia` CLI) can work against saved databases:
//!
//! ```text
//! XIADB v1
//! COLLECTION <name>
//! DOC <byte-length>
//! <xml text (exactly byte-length bytes)>
//! ...
//! INDEX <collection> <string|numerical> <pattern>
//! END
//! ```
//!
//! Documents are serialized XML (length-prefixed, so values may contain
//! any byte but `\0`); physical indexes are persisted as their defining
//! pattern and rebuilt on load. Virtual indexes and statistics are not
//! persisted — statistics are recomputed by RUNSTATS, virtual indexes are
//! per-session advisor state.

use crate::database::Database;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use xia_xpath::{parse_linear_path, LinearPath, ValueKind};

/// Persistence error.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid XIADB dump.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

/// Serializes the database (documents + physical index definitions) to a
/// writer.
pub fn save_database_to(db: &Database, out: &mut impl Write) -> Result<(), PersistError> {
    writeln!(out, "XIADB v1")?;
    let mut index_lines: Vec<String> = Vec::new();
    for name in db.collection_names() {
        let coll = db.collection(name).expect("name from collection_names");
        writeln!(out, "COLLECTION {name}")?;
        for (_, doc) in coll.iter_docs() {
            let xml = xia_xml::write_document(doc, coll.vocab());
            writeln!(out, "DOC {}", xml.len())?;
            out.write_all(xml.as_bytes())?;
            writeln!(out)?;
        }
        if let Some(catalog) = db.catalog(name) {
            for def in catalog.iter().filter(|d| !d.is_virtual()) {
                let kind = match def.kind {
                    ValueKind::Str => "string",
                    ValueKind::Num => "numerical",
                };
                index_lines.push(format!("INDEX {name} {kind} {}", def.pattern));
            }
        }
    }
    for line in index_lines {
        writeln!(out, "{line}")?;
    }
    writeln!(out, "END")?;
    Ok(())
}

/// Saves the database to a file.
pub fn save_database(db: &Database, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    save_database_to(db, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Deserializes a database from a reader.
pub fn load_database_from(input: &mut impl BufRead) -> Result<Database, PersistError> {
    let mut line = String::new();
    input.read_line(&mut line)?;
    if line.trim_end() != "XIADB v1" {
        return Err(format_err("missing XIADB v1 header"));
    }
    let mut db = Database::new();
    let mut current: Option<String> = None;
    let mut indexes: Vec<(String, ValueKind, LinearPath)> = Vec::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Err(format_err("unexpected end of file (missing END)"));
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed == "END" {
            break;
        }
        if let Some(name) = trimmed.strip_prefix("COLLECTION ") {
            let name = name.trim();
            if name.is_empty() {
                return Err(format_err("empty collection name"));
            }
            db.create_collection(name);
            current = Some(name.to_string());
        } else if let Some(len) = trimmed.strip_prefix("DOC ") {
            let len: usize = len
                .trim()
                .parse()
                .map_err(|_| format_err(format!("bad DOC length `{len}`")))?;
            let mut buf = vec![0u8; len];
            input.read_exact(&mut buf)?;
            // Consume the trailing newline.
            let mut nl = [0u8; 1];
            input.read_exact(&mut nl)?;
            let xml =
                String::from_utf8(buf).map_err(|_| format_err("document is not valid UTF-8"))?;
            let Some(coll_name) = &current else {
                return Err(format_err("DOC before any COLLECTION"));
            };
            let coll = db
                .collection_mut(coll_name)
                .expect("collection created above");
            coll.insert_xml(&xml)
                .map_err(|e| format_err(format!("bad document: {e}")))?;
        } else if let Some(rest) = trimmed.strip_prefix("INDEX ") {
            let mut parts = rest.splitn(3, ' ');
            let coll = parts
                .next()
                .ok_or_else(|| format_err("INDEX missing collection"))?;
            let kind = match parts.next() {
                Some("string") => ValueKind::Str,
                Some("numerical") => ValueKind::Num,
                other => return Err(format_err(format!("bad index kind {other:?}"))),
            };
            let pattern = parts
                .next()
                .ok_or_else(|| format_err("INDEX missing pattern"))?;
            let pattern = parse_linear_path(pattern)
                .map_err(|e| format_err(format!("bad index pattern: {e}")))?;
            indexes.push((coll.to_string(), kind, pattern));
        } else if trimmed.is_empty() {
            continue;
        } else {
            return Err(format_err(format!("unrecognized line `{trimmed}`")));
        }
    }
    // Rebuild physical indexes.
    for (coll, kind, pattern) in indexes {
        let Some((collection, catalog, _)) = db.parts_mut(&coll) else {
            return Err(format_err(format!("INDEX on unknown collection {coll}")));
        };
        catalog.create_physical(collection, &pattern, kind);
    }
    db.runstats_all();
    Ok(db)
}

/// Loads a database from a file.
pub fn load_database(path: impl AsRef<Path>) -> Result<Database, PersistError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    load_database_from(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let c = db.create_collection("SDOC");
        for i in 0..20 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Yield", i as f64 / 2.0);
                b.attr("id", i as f64);
            });
        }
        let o = db.create_collection("ODOC");
        o.insert_xml("<Order><Total>10 &amp; 20</Total></Order>")
            .unwrap();
        let (coll, cat, _) = db.parts_mut("SDOC").unwrap();
        cat.create_physical(
            coll,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        db
    }

    fn round_trip(db: &Database) -> Database {
        let mut buf = Vec::new();
        save_database_to(db, &mut buf).unwrap();
        load_database_from(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn round_trips_documents_and_collections() {
        let db = sample_db();
        let loaded = round_trip(&db);
        assert_eq!(loaded.collection_names().len(), 2);
        assert_eq!(loaded.collection("SDOC").unwrap().len(), 20);
        assert_eq!(loaded.collection("ODOC").unwrap().len(), 1);
        // Node counts match exactly.
        assert_eq!(
            loaded.collection("SDOC").unwrap().total_nodes(),
            db.collection("SDOC").unwrap().total_nodes()
        );
    }

    #[test]
    fn round_trips_physical_indexes() {
        let db = sample_db();
        let loaded = round_trip(&db);
        let cat = loaded.catalog("SDOC").unwrap();
        assert_eq!(cat.len(), 1);
        let def = cat.iter().next().unwrap();
        assert_eq!(def.pattern.to_string(), "/Security/Symbol");
        assert!(!def.is_virtual());
        let phys = def.physical.as_ref().unwrap();
        assert_eq!(phys.entries(), 20);
    }

    #[test]
    fn virtual_indexes_are_not_persisted() {
        let mut db = sample_db();
        {
            let (coll, cat, stats) = db.parts_mut("SDOC").unwrap();
            cat.create_virtual(
                coll,
                stats,
                &parse_linear_path("/Security/Yield").unwrap(),
                ValueKind::Num,
            );
        }
        let loaded = round_trip(&db);
        assert_eq!(loaded.catalog("SDOC").unwrap().len(), 1);
    }

    #[test]
    fn escaped_values_survive() {
        let db = sample_db();
        let loaded = round_trip(&db);
        let c = loaded.collection("ODOC").unwrap();
        let (_, doc) = c.iter_docs().next().unwrap();
        let total = c.vocab().lookup_name("Total").unwrap();
        assert_eq!(doc.value_at(&[total]).unwrap().as_str(), "10 & 20");
    }

    #[test]
    fn rejects_bad_header_and_truncation() {
        let mut r = std::io::Cursor::new(b"NOT A DB\n".to_vec());
        assert!(matches!(
            load_database_from(&mut r),
            Err(PersistError::Format(_))
        ));
        let mut r = std::io::Cursor::new(b"XIADB v1\nCOLLECTION X\n".to_vec());
        assert!(load_database_from(&mut r).is_err());
        let mut r = std::io::Cursor::new(b"XIADB v1\nGARBAGE\nEND\n".to_vec());
        assert!(load_database_from(&mut r).is_err());
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join(format!("xia_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.xiadb");
        save_database(&db, &path).unwrap();
        let loaded = load_database(&path).unwrap();
        assert_eq!(loaded.collection("SDOC").unwrap().len(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_db_supports_advising_queries() {
        // Statistics are recomputed on load, so the optimizer works.
        let db = sample_db();
        let loaded = round_trip(&db);
        let (coll, cat, stats) = loaded.parts("SDOC").unwrap();
        let opt = xia_optimizer_check::check(coll, stats, cat);
        assert!(opt);
    }

    /// Minimal indirection so this crate does not depend on the optimizer:
    /// verify stats freshness by checking the stats cover every path.
    mod xia_optimizer_check {
        use crate::{Catalog, Collection, CollectionStats};
        pub fn check(coll: &Collection, stats: &CollectionStats, _cat: &Catalog) -> bool {
            stats.doc_count == coll.len() as u64
                && coll
                    .vocab()
                    .paths
                    .iter()
                    .all(|(id, _)| stats.path_ref(id).is_some())
        }
    }
}
