//! Database persistence.
//!
//! A simple, dependency-free on-disk format so advisor sessions (and the
//! `xia` CLI) can work against saved databases:
//!
//! ```text
//! XIADB v2
//! COLLECTION <name>
//! DOC <byte-length> <fnv1a64-hex>
//! <xml text (exactly byte-length bytes)>
//! ...
//! INDEX <collection> <string|numerical> <pattern>
//! END <record-count> <fnv1a64-hex>
//! ```
//!
//! Documents are serialized XML (length-prefixed, so values may contain
//! any byte but `\0`); physical indexes are persisted as their defining
//! pattern and rebuilt on load. Virtual indexes and statistics are not
//! persisted — statistics are recomputed by RUNSTATS, virtual indexes are
//! per-session advisor state.
//!
//! ## Integrity
//!
//! Version 2 adds corruption detection: every `DOC` record carries an
//! FNV-1a-64 checksum of its payload, and the `END` trailer carries the
//! record count plus a running checksum of every byte before it. The
//! strict loaders ([`load_database`] / [`load_database_from`]) fail on
//! the first mismatch; the lenient loaders ([`load_database_lenient`])
//! load every record that verifies and report what didn't in a
//! [`LoadReport`] — the partial-recovery path the advisor uses so one
//! flipped bit does not take down a tuning session. Version 1 files
//! (no checksums) still load through both paths.

use crate::database::Database;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use xia_fault::{FaultInjector, FaultSite};
use xia_xpath::{parse_linear_path, LinearPath, ValueKind};

/// Persistence error.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid XIADB dump.
    Format(String),
    /// The file is framed correctly but a checksum does not verify —
    /// on-disk corruption rather than a foreign format.
    Corrupt {
        /// 1-based line number of the failing record.
        line: u64,
        /// What failed to verify.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
            PersistError::Corrupt { line, detail } => {
                write!(f, "corruption detected at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<xia_fault::InjectedFault> for PersistError {
    fn from(e: xia_fault::InjectedFault) -> Self {
        PersistError::Io(e.into())
    }
}

fn format_err(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

/// FNV-1a 64-bit — the dependency-free checksum guarding the dump.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// FNV-1a 64 of `bytes` (exposed for tests and tooling).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.update(bytes);
    f.finish()
}

/// What a lenient load found: per-record outcomes plus the diagnostics
/// for everything that failed to verify.
#[derive(Debug, Default, Clone)]
pub struct LoadReport {
    /// Format version of the file (1 or 2).
    pub version: u32,
    /// Documents loaded and verified.
    pub docs_loaded: u64,
    /// Documents skipped (checksum mismatch, bad XML, injected I/O).
    pub docs_skipped: u64,
    /// Physical index definitions rebuilt.
    pub indexes_loaded: u64,
    /// Index definitions skipped (unparseable or unknown collection).
    pub indexes_skipped: u64,
    /// Whether the END trailer was present and verified.
    pub trailer_ok: bool,
    /// False when loading stopped early (truncation or mis-framing);
    /// records after the stop point were never examined.
    pub complete: bool,
    /// One human-readable line per problem, with line numbers.
    pub diagnostics: Vec<String>,
}

impl LoadReport {
    /// True when every record verified and the trailer matched.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.trailer_ok && self.complete
    }
}

/// Serializes the database (documents + physical index definitions) to a
/// writer, in the checksummed v2 format.
pub fn save_database_to(db: &Database, out: &mut impl Write) -> Result<(), PersistError> {
    save_database_to_faulted(db, out, &FaultInjector::off())
}

/// [`save_database_to`] with a fault injector rolled once per record
/// (`storage-io` site) — an injected fault surfaces as an I/O error.
pub fn save_database_to_faulted(
    db: &Database,
    out: &mut impl Write,
    faults: &FaultInjector,
) -> Result<(), PersistError> {
    fn emit(out: &mut impl Write, fnv: &mut Fnv, s: &str) -> Result<(), PersistError> {
        out.write_all(s.as_bytes())?;
        fnv.update(s.as_bytes());
        Ok(())
    }
    let mut fnv = Fnv::new();
    let mut records: u64 = 0;
    emit(out, &mut fnv, "XIADB v2\n")?;
    let mut index_lines: Vec<String> = Vec::new();
    for name in db.collection_names() {
        let coll = db.collection(name).expect("name from collection_names");
        faults.roll(FaultSite::StorageIo)?;
        records += 1;
        emit(out, &mut fnv, &format!("COLLECTION {name}\n"))?;
        for (_, doc) in coll.iter_docs() {
            faults.roll(FaultSite::StorageIo)?;
            let xml = xia_xml::write_document(doc, coll.vocab());
            records += 1;
            emit(
                out,
                &mut fnv,
                &format!("DOC {} {:016x}\n", xml.len(), fnv1a64(xml.as_bytes())),
            )?;
            emit(out, &mut fnv, &xml)?;
            emit(out, &mut fnv, "\n")?;
        }
        if let Some(catalog) = db.catalog(name) {
            for def in catalog.iter().filter(|d| !d.is_virtual()) {
                let kind = match def.kind {
                    ValueKind::Str => "string",
                    ValueKind::Num => "numerical",
                };
                index_lines.push(format!("INDEX {name} {kind} {}\n", def.pattern));
            }
        }
    }
    for line in index_lines {
        faults.roll(FaultSite::StorageIo)?;
        records += 1;
        emit(out, &mut fnv, &line)?;
    }
    writeln!(out, "END {records} {:016x}", fnv.finish())?;
    Ok(())
}

/// Saves the database to a file.
pub fn save_database(db: &Database, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_database_faulted(db, path, &FaultInjector::off())
}

/// [`save_database`] with a fault injector (see
/// [`save_database_to_faulted`]).
pub fn save_database_faulted(
    db: &Database,
    path: impl AsRef<Path>,
    faults: &FaultInjector,
) -> Result<(), PersistError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    save_database_to_faulted(db, &mut w, faults)?;
    w.flush()?;
    Ok(())
}

/// Strictly deserializes a database from a reader: the first corrupt or
/// malformed record is an error.
pub fn load_database_from(input: &mut impl BufRead) -> Result<Database, PersistError> {
    load_core(input, true, &FaultInjector::off()).map(|(db, _)| db)
}

/// Strictly loads a database from a file.
pub fn load_database(path: impl AsRef<Path>) -> Result<Database, PersistError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    load_database_from(&mut r)
}

/// Leniently deserializes: loads every record that verifies, skips (and
/// reports) what doesn't, and stops with a partial database only on
/// unrecoverable mis-framing. Errors only when nothing is loadable
/// (missing or foreign header, unreadable input).
pub fn load_database_lenient_from(
    input: &mut impl BufRead,
) -> Result<(Database, LoadReport), PersistError> {
    load_core(input, false, &FaultInjector::off())
}

/// Leniently loads a database from a file.
pub fn load_database_lenient(
    path: impl AsRef<Path>,
) -> Result<(Database, LoadReport), PersistError> {
    load_database_lenient_faulted(path, &FaultInjector::off())
}

/// [`load_database_lenient`] with a fault injector rolled once per DOC
/// record (`storage-io` site); an injected fault skips that document and
/// is reported in the diagnostics, modelling an unreadable page.
pub fn load_database_lenient_faulted(
    path: impl AsRef<Path>,
    faults: &FaultInjector,
) -> Result<(Database, LoadReport), PersistError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    load_core(&mut r, false, faults)
}

fn load_core(
    input: &mut impl BufRead,
    strict: bool,
    faults: &FaultInjector,
) -> Result<(Database, LoadReport), PersistError> {
    let mut line = String::new();
    input.read_line(&mut line)?;
    let version = match line.trim_end() {
        "XIADB v1" => 1,
        "XIADB v2" => 2,
        _ => return Err(format_err("missing XIADB v1/v2 header")),
    };
    let mut report = LoadReport {
        version,
        // v1 has a bare END with nothing to verify; treat it as ok.
        trailer_ok: false,
        complete: true,
        ..LoadReport::default()
    };
    let mut fnv = Fnv::new();
    fnv.update(line.as_bytes());
    let mut lineno: u64 = 1;
    let mut records: u64 = 0;
    let mut db = Database::new();
    let mut current: Option<String> = None;
    let mut indexes: Vec<(u64, String, ValueKind, LinearPath)> = Vec::new();
    let mut saw_end = false;
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            if strict {
                return Err(format_err("unexpected end of file (missing END)"));
            }
            report.complete = false;
            report
                .diagnostics
                .push(format!("line {}: file truncated (missing END)", lineno + 1));
            break;
        }
        lineno += 1;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed == "END" || trimmed.starts_with("END ") {
            saw_end = true;
            match version {
                1 => {
                    if trimmed != "END" {
                        let msg = format!("line {lineno}: malformed v1 END trailer");
                        if strict {
                            return Err(format_err(msg));
                        }
                        report.diagnostics.push(msg);
                    } else {
                        report.trailer_ok = true;
                    }
                }
                _ => {
                    let mut parts = trimmed.split_ascii_whitespace();
                    let _end = parts.next();
                    let want_records = parts.next().and_then(|s| s.parse::<u64>().ok());
                    let want_fnv = parts.next().and_then(|s| u64::from_str_radix(s, 16).ok());
                    match (want_records, want_fnv) {
                        (Some(r), Some(h)) if r == records && h == fnv.finish() => {
                            report.trailer_ok = true;
                        }
                        (Some(_), Some(_)) => {
                            let detail = "END trailer record count or file checksum mismatch";
                            if strict {
                                return Err(PersistError::Corrupt {
                                    line: lineno,
                                    detail: detail.into(),
                                });
                            }
                            report.diagnostics.push(format!("line {lineno}: {detail}"));
                        }
                        _ => {
                            let msg = format!("line {lineno}: malformed END trailer");
                            if strict {
                                return Err(format_err(msg));
                            }
                            report.diagnostics.push(msg);
                        }
                    }
                }
            }
            break;
        }
        fnv.update(line.as_bytes());
        if let Some(name) = trimmed.strip_prefix("COLLECTION ") {
            records += 1;
            let name = name.trim();
            if name.is_empty() {
                return Err(format_err(format!("line {lineno}: empty collection name")));
            }
            db.create_collection(name);
            current = Some(name.to_string());
        } else if let Some(rest) = trimmed.strip_prefix("DOC ") {
            records += 1;
            let doc_line = lineno;
            let mut parts = rest.split_ascii_whitespace();
            let len: usize = match parts.next().and_then(|s| s.parse().ok()) {
                Some(n) => n,
                None => {
                    let msg = format!("line {doc_line}: bad DOC length `{rest}`");
                    if strict {
                        return Err(format_err(msg));
                    }
                    // Unrecoverable: without the length the payload cannot
                    // be skipped over.
                    report.diagnostics.push(msg);
                    report.complete = false;
                    break;
                }
            };
            let want_sum: Option<u64> = parts.next().and_then(|s| u64::from_str_radix(s, 16).ok());
            if version >= 2 && want_sum.is_none() {
                let msg = format!("line {doc_line}: DOC record missing checksum");
                if strict {
                    return Err(format_err(msg));
                }
                report.diagnostics.push(msg);
                report.complete = false;
                break;
            }
            let mut buf = vec![0u8; len];
            if let Err(e) = input.read_exact(&mut buf) {
                if strict {
                    return Err(e.into());
                }
                report.docs_skipped += 1;
                report.complete = false;
                report
                    .diagnostics
                    .push(format!("line {doc_line}: truncated document payload ({e})"));
                break;
            }
            // Consume the trailing newline.
            let mut nl = [0u8; 1];
            let have_nl = input.read_exact(&mut nl).is_ok();
            fnv.update(&buf);
            if have_nl {
                fnv.update(&nl);
            }
            lineno += buf.iter().filter(|&&b| b == b'\n').count() as u64 + 1;
            if let Err(e) = faults.roll(FaultSite::StorageIo) {
                if strict {
                    return Err(PersistError::Io(e.into()));
                }
                report.docs_skipped += 1;
                report
                    .diagnostics
                    .push(format!("line {doc_line}: document unreadable ({e})"));
                continue;
            }
            if let Some(want) = want_sum {
                let got = fnv1a64(&buf);
                if got != want {
                    if strict {
                        return Err(PersistError::Corrupt {
                            line: doc_line,
                            detail: format!(
                                "document checksum mismatch (stored {want:016x}, computed {got:016x})"
                            ),
                        });
                    }
                    report.docs_skipped += 1;
                    report.diagnostics.push(format!(
                        "line {doc_line}: document checksum mismatch, skipped"
                    ));
                    continue;
                }
            }
            let xml = match String::from_utf8(buf) {
                Ok(s) => s,
                Err(_) => {
                    let msg = format!("line {doc_line}: document is not valid UTF-8");
                    if strict {
                        return Err(format_err(msg));
                    }
                    report.docs_skipped += 1;
                    report.diagnostics.push(format!("{msg}, skipped"));
                    continue;
                }
            };
            let Some(coll_name) = &current else {
                let msg = format!("line {doc_line}: DOC before any COLLECTION");
                if strict {
                    return Err(format_err(msg));
                }
                report.docs_skipped += 1;
                report.diagnostics.push(format!("{msg}, skipped"));
                continue;
            };
            let coll = db
                .collection_mut(coll_name)
                .expect("collection created above");
            match coll.insert_xml(&xml) {
                Ok(_) => report.docs_loaded += 1,
                Err(e) => {
                    let msg = format!("line {doc_line}: bad document: {e}");
                    if strict {
                        return Err(format_err(msg));
                    }
                    report.docs_skipped += 1;
                    report.diagnostics.push(format!("{msg}, skipped"));
                }
            }
        } else if let Some(rest) = trimmed.strip_prefix("INDEX ") {
            records += 1;
            match parse_index_record(rest) {
                Ok((coll, kind, pattern)) => indexes.push((lineno, coll, kind, pattern)),
                Err(msg) => {
                    let msg = format!("line {lineno}: {msg}");
                    if strict {
                        return Err(format_err(msg));
                    }
                    report.indexes_skipped += 1;
                    report.diagnostics.push(format!("{msg}, skipped"));
                }
            }
        } else if trimmed.is_empty() {
            continue;
        } else {
            let msg = format!("line {lineno}: unrecognized line `{trimmed}`");
            if strict {
                return Err(format_err(msg));
            }
            // Mis-framing: continuing would interpret payload bytes as
            // records. Stop and return what verified so far.
            report.diagnostics.push(msg);
            report.complete = false;
            break;
        }
    }
    if !saw_end && strict {
        return Err(format_err("unexpected end of file (missing END)"));
    }
    // Rebuild physical indexes.
    for (at, coll, kind, pattern) in indexes {
        let Some((collection, catalog, _)) = db.parts_mut(&coll) else {
            let msg = format!("line {at}: INDEX on unknown collection {coll}");
            if strict {
                return Err(format_err(msg));
            }
            report.indexes_skipped += 1;
            report.diagnostics.push(format!("{msg}, skipped"));
            continue;
        };
        catalog.create_physical(collection, &pattern, kind);
        report.indexes_loaded += 1;
    }
    db.runstats_all();
    Ok((db, report))
}

fn parse_index_record(rest: &str) -> Result<(String, ValueKind, LinearPath), String> {
    let mut parts = rest.splitn(3, ' ');
    let coll = parts.next().ok_or("INDEX missing collection")?;
    let kind = match parts.next() {
        Some("string") => ValueKind::Str,
        Some("numerical") => ValueKind::Num,
        other => return Err(format!("bad index kind {other:?}")),
    };
    let pattern = parts.next().ok_or("INDEX missing pattern")?;
    let pattern = parse_linear_path(pattern).map_err(|e| format!("bad index pattern: {e}"))?;
    Ok((coll.to_string(), kind, pattern))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let c = db.create_collection("SDOC");
        for i in 0..20 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Yield", i as f64 / 2.0);
                b.attr("id", i as f64);
            });
        }
        let o = db.create_collection("ODOC");
        o.insert_xml("<Order><Total>10 &amp; 20</Total></Order>")
            .unwrap();
        let (coll, cat, _) = db.parts_mut("SDOC").unwrap();
        cat.create_physical(
            coll,
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        );
        db
    }

    fn round_trip(db: &Database) -> Database {
        let mut buf = Vec::new();
        save_database_to(db, &mut buf).unwrap();
        load_database_from(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn round_trips_documents_and_collections() {
        let db = sample_db();
        let loaded = round_trip(&db);
        assert_eq!(loaded.collection_names().len(), 2);
        assert_eq!(loaded.collection("SDOC").unwrap().len(), 20);
        assert_eq!(loaded.collection("ODOC").unwrap().len(), 1);
        // Node counts match exactly.
        assert_eq!(
            loaded.collection("SDOC").unwrap().total_nodes(),
            db.collection("SDOC").unwrap().total_nodes()
        );
    }

    #[test]
    fn round_trips_physical_indexes() {
        let db = sample_db();
        let loaded = round_trip(&db);
        let cat = loaded.catalog("SDOC").unwrap();
        assert_eq!(cat.len(), 1);
        let def = cat.iter().next().unwrap();
        assert_eq!(def.pattern.to_string(), "/Security/Symbol");
        assert!(!def.is_virtual());
        let phys = def.physical.as_ref().unwrap();
        assert_eq!(phys.entries(), 20);
    }

    #[test]
    fn virtual_indexes_are_not_persisted() {
        let mut db = sample_db();
        {
            let (coll, cat, stats) = db.parts_mut("SDOC").unwrap();
            cat.create_virtual(
                coll,
                stats,
                &parse_linear_path("/Security/Yield").unwrap(),
                ValueKind::Num,
            );
        }
        let loaded = round_trip(&db);
        assert_eq!(loaded.catalog("SDOC").unwrap().len(), 1);
    }

    #[test]
    fn escaped_values_survive() {
        let db = sample_db();
        let loaded = round_trip(&db);
        let c = loaded.collection("ODOC").unwrap();
        let (_, doc) = c.iter_docs().next().unwrap();
        let total = c.vocab().lookup_name("Total").unwrap();
        assert_eq!(doc.value_at(&[total]).unwrap().as_str(), "10 & 20");
    }

    #[test]
    fn rejects_bad_header_and_truncation() {
        let mut r = std::io::Cursor::new(b"NOT A DB\n".to_vec());
        assert!(matches!(
            load_database_from(&mut r),
            Err(PersistError::Format(_))
        ));
        let mut r = std::io::Cursor::new(b"XIADB v1\nCOLLECTION X\n".to_vec());
        assert!(load_database_from(&mut r).is_err());
        let mut r = std::io::Cursor::new(b"XIADB v1\nGARBAGE\nEND\n".to_vec());
        assert!(load_database_from(&mut r).is_err());
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let xml = "<a><b>1</b></a>";
        let file = format!("XIADB v1\nCOLLECTION X\nDOC {}\n{xml}\nEND\n", xml.len());
        let db = load_database_from(&mut std::io::Cursor::new(file.clone().into_bytes())).unwrap();
        assert_eq!(db.collection("X").unwrap().len(), 1);
        let (db, report) =
            load_database_lenient_from(&mut std::io::Cursor::new(file.into_bytes())).unwrap();
        assert_eq!(db.collection("X").unwrap().len(), 1);
        assert_eq!(report.version, 1);
        assert!(report.is_clean());
    }

    #[test]
    fn strict_load_detects_flipped_payload_byte() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_database_to(&db, &mut buf).unwrap();
        // Flip a byte inside the first document payload.
        let pos = buf
            .windows(4)
            .position(|w| w == b"<Sec")
            .expect("payload present");
        buf[pos + 1] ^= 0x20;
        match load_database_from(&mut std::io::Cursor::new(buf)) {
            Err(PersistError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "{detail}")
            }
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("expected Corrupt, got Ok"),
        }
    }

    #[test]
    fn lenient_load_skips_corrupt_doc_and_reports() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_database_to(&db, &mut buf).unwrap();
        let pos = buf
            .windows(4)
            .position(|w| w == b"<Sec")
            .expect("payload present");
        buf[pos + 1] ^= 0x20;
        let (loaded, report) = load_database_lenient_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(loaded.collection("SDOC").unwrap().len(), 19);
        assert_eq!(report.docs_skipped, 1);
        assert_eq!(report.docs_loaded, 20); // 19 SDOC + 1 ODOC
        assert!(!report.is_clean());
        assert!(report.diagnostics[0].contains("checksum"));
        // Index still rebuilds over the surviving documents.
        assert_eq!(report.indexes_loaded, 1);
    }

    #[test]
    fn lenient_load_survives_truncation_with_partial_db() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_database_to(&db, &mut buf).unwrap();
        buf.truncate(buf.len() * 2 / 3);
        let (loaded, report) = load_database_lenient_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert!(!loaded.collection("SDOC").unwrap().is_empty());
        assert!(!report.complete);
        assert!(!report.is_clean());
    }

    #[test]
    fn injected_io_fault_skips_docs_leniently_and_fails_strictly() {
        let db = sample_db();
        let dir = std::env::temp_dir().join(format!("xia_persist_fault_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.xiadb");
        save_database(&db, &path).unwrap();
        let faults = FaultInjector::seeded(5).with_rate(FaultSite::StorageIo, 0.3);
        let (loaded, report) = load_database_lenient_faulted(&path, &faults).unwrap();
        assert!(report.docs_skipped > 0);
        assert_eq!(report.docs_loaded + report.docs_skipped, 21);
        assert_eq!(
            loaded.collection("SDOC").unwrap().len() + loaded.collection("ODOC").unwrap().len(),
            report.docs_loaded as usize
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join(format!("xia_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.xiadb");
        save_database(&db, &path).unwrap();
        let loaded = load_database(&path).unwrap();
        assert_eq!(loaded.collection("SDOC").unwrap().len(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_db_supports_advising_queries() {
        // Statistics are recomputed on load, so the optimizer works.
        let db = sample_db();
        let loaded = round_trip(&db);
        let (coll, cat, stats) = loaded.parts("SDOC").unwrap();
        let opt = xia_optimizer_check::check(coll, stats, cat);
        assert!(opt);
    }

    /// Minimal indirection so this crate does not depend on the optimizer:
    /// verify stats freshness by checking the stats cover every path.
    mod xia_optimizer_check {
        use crate::{Catalog, Collection, CollectionStats};
        pub fn check(coll: &Collection, stats: &CollectionStats, _cat: &Catalog) -> bool {
            stats.doc_count == coll.len() as u64
                && coll
                    .vocab()
                    .paths
                    .iter()
                    .all(|(id, _)| stats.path_ref(id).is_some())
        }
    }
}
