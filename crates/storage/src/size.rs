//! Index size and shape model.
//!
//! The advisor's knapsack weight for a candidate index is its estimated
//! size; the optimizer's probe cost uses the estimated number of B-tree
//! levels. Both are derived from entry counts and average key widths, the
//! same derivation the paper performs from RUNSTATS data statistics.

/// Page size used throughout the cost and size models (bytes).
pub const PAGE_SIZE: f64 = 4096.0;

/// B-tree leaf fill factor.
pub const FILL_FACTOR: f64 = 0.70;

/// Per-entry posting overhead: (doc id, node id) plus slot overhead.
pub const POSTING_BYTES: f64 = 12.0;

/// Saturating `f64 -> u64` conversion for size estimates. Huge entry
/// counts (up to `u64::MAX`) times wide keys overflow into `f64::INFINITY`;
/// a hostile `avg_key_width` can even be NaN. Both must clamp, not wrap:
/// a too-big index estimate should price the candidate out of the
/// knapsack, never alias to a tiny size.
fn saturate_u64(x: f64) -> u64 {
    if x.is_nan() {
        return 0;
    }
    // `as` from f64 saturates since Rust 1.45, but spell the policy out so
    // the overflow behavior is explicit and unit-tested rather than
    // incidental.
    if x <= 0.0 {
        0
    } else if x >= u64::MAX as f64 {
        u64::MAX
    } else {
        x as u64
    }
}

/// Saturating `f64 -> u32` conversion for level estimates (see
/// [`saturate_u64`]).
fn saturate_u32(x: f64) -> u32 {
    if x.is_nan() {
        return 0;
    }
    if x <= 0.0 {
        0
    } else if x >= u32::MAX as f64 {
        u32::MAX
    } else {
        x as u32
    }
}

/// Estimated on-disk size in bytes of an index with `entries` keys of
/// average width `avg_key_width`. Saturates at `u64::MAX` for entry counts
/// or key widths whose product overflows.
pub fn index_size_bytes(entries: u64, avg_key_width: f64) -> u64 {
    if entries == 0 {
        // An empty index still occupies its root page.
        return PAGE_SIZE as u64;
    }
    let entry_bytes = avg_key_width + POSTING_BYTES;
    let leaf_bytes = entries as f64 * entry_bytes / FILL_FACTOR;
    // Interior levels add a small fraction.
    saturate_u64((leaf_bytes * 1.05).ceil()).max(PAGE_SIZE as u64)
}

/// Estimated number of B-tree levels (root = level 1). Saturates rather
/// than wrapping for degenerate inputs.
pub fn index_levels(entries: u64, avg_key_width: f64) -> u32 {
    if entries == 0 {
        return 1;
    }
    let entry_bytes = avg_key_width + POSTING_BYTES;
    let entries_per_page = (PAGE_SIZE * FILL_FACTOR / entry_bytes).max(2.0);
    let leaf_pages = (entries as f64 / entries_per_page).ceil().max(1.0);
    // Interior fanout: key + child pointer.
    let fanout = (PAGE_SIZE / (avg_key_width + 8.0)).max(2.0);
    1_u32.saturating_add(saturate_u32(leaf_pages.log(fanout).ceil().max(0.0)))
}

/// Number of pages occupied by `bytes`.
pub fn pages(bytes: f64) -> f64 {
    (bytes / PAGE_SIZE).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_grows_linearly_with_entries() {
        let s1 = index_size_bytes(1_000, 8.0);
        let s2 = index_size_bytes(2_000, 8.0);
        assert!(s2 > s1);
        let ratio = s2 as f64 / s1 as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn wider_keys_make_bigger_indexes() {
        assert!(index_size_bytes(1_000, 32.0) > index_size_bytes(1_000, 8.0));
    }

    #[test]
    fn empty_index_has_one_page_one_level() {
        assert_eq!(index_size_bytes(0, 8.0), PAGE_SIZE as u64);
        assert_eq!(index_levels(0, 8.0), 1);
    }

    #[test]
    fn levels_grow_logarithmically() {
        let small = index_levels(100, 8.0);
        let large = index_levels(10_000_000, 8.0);
        assert!(small <= large);
        assert!(large <= 5, "levels = {large}");
    }

    #[test]
    fn extreme_entry_counts_saturate_instead_of_wrapping() {
        // u64::MAX entries * any key width overflows the f64 product; the
        // estimate must clamp to u64::MAX / u32::MAX, not wrap to a small
        // number that would make a monster index look free.
        let bytes = index_size_bytes(u64::MAX, 4096.0);
        assert_eq!(bytes, u64::MAX);
        let levels = index_levels(u64::MAX, 4096.0);
        assert!((1..=u32::MAX).contains(&levels), "levels = {levels}");
        // Still monotone: the saturated estimate dominates normal ones.
        assert!(bytes > index_size_bytes(1_000_000, 4096.0));
        assert!(levels >= index_levels(1_000_000, 4096.0));
        // Hostile NaN key width degrades to the floor, not a panic or a
        // garbage huge value (`f64::max` drops the NaN operand, so the
        // level model falls back to its minimum fanout of 2).
        assert_eq!(index_size_bytes(1_000, f64::NAN), PAGE_SIZE as u64);
        let nan_levels = index_levels(1_000, f64::NAN);
        assert!((1..=64).contains(&nan_levels), "levels = {nan_levels}");
    }

    #[test]
    fn pages_has_floor_of_one() {
        assert_eq!(pages(10.0), 1.0);
        assert_eq!(pages(PAGE_SIZE * 3.0), 3.0);
    }
}
