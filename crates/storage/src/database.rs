//! Named collections with catalogs and cached statistics.

use crate::catalog::Catalog;
use crate::collection::Collection;
use crate::stats::{runstats, CollectionStats};
use std::collections::HashMap;
use xia_fault::{FaultInjector, FaultSite};

struct Entry {
    collection: Collection,
    catalog: Catalog,
    stats: Option<CollectionStats>,
}

/// A database: a set of named collections, each with its index catalog and
/// (optionally stale) statistics.
#[derive(Default)]
pub struct Database {
    entries: Vec<Entry>,
    by_name: HashMap<String, usize>,
    faults: FaultInjector,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collection (or returns the existing one) and borrows it
    /// mutably.
    pub fn create_collection(&mut self, name: &str) -> &mut Collection {
        let idx = match self.by_name.get(name) {
            Some(&i) => i,
            None => {
                let i = self.entries.len();
                self.entries.push(Entry {
                    collection: Collection::new(name),
                    catalog: Catalog::new(),
                    stats: None,
                });
                self.by_name.insert(name.to_string(), i);
                i
            }
        };
        // Any data change invalidates cached statistics.
        self.entries[idx].stats = None;
        &mut self.entries[idx].collection
    }

    fn entry(&self, name: &str) -> Option<&Entry> {
        self.by_name.get(name).map(|&i| &self.entries[i])
    }

    fn entry_mut(&mut self, name: &str) -> Option<&mut Entry> {
        let i = *self.by_name.get(name)?;
        Some(&mut self.entries[i])
    }

    /// Borrows a collection.
    pub fn collection(&self, name: &str) -> Option<&Collection> {
        self.entry(name).map(|e| &e.collection)
    }

    /// Borrows a collection mutably, invalidating its statistics.
    pub fn collection_mut(&mut self, name: &str) -> Option<&mut Collection> {
        let e = self.entry_mut(name)?;
        e.stats = None;
        Some(&mut e.collection)
    }

    /// Borrows a collection's catalog.
    pub fn catalog(&self, name: &str) -> Option<&Catalog> {
        self.entry(name).map(|e| &e.catalog)
    }

    /// Borrows a collection's catalog mutably.
    pub fn catalog_mut(&mut self, name: &str) -> Option<&mut Catalog> {
        self.entry_mut(name).map(|e| &mut e.catalog)
    }

    /// Borrows collection, catalog (mutably), and stats together — needed
    /// when creating virtual indexes, which reads the collection and stats
    /// while writing the catalog.
    pub fn parts_mut(
        &mut self,
        name: &str,
    ) -> Option<(&Collection, &mut Catalog, &CollectionStats)> {
        let i = *self.by_name.get(name)?;
        let e = &mut self.entries[i];
        if e.stats.is_none() {
            e.collection.ensure_columns();
            e.stats = Some(runstats(&e.collection));
        }
        let Entry {
            collection,
            catalog,
            stats,
        } = e;
        Some((&*collection, catalog, stats.as_ref().expect("just filled")))
    }

    /// Borrows collection and catalog both mutably (for statement
    /// execution with index maintenance). Invalidates statistics.
    pub fn collection_and_catalog_mut(
        &mut self,
        name: &str,
    ) -> Option<(&mut Collection, &mut Catalog)> {
        let e = self.entry_mut(name)?;
        e.stats = None;
        Some((&mut e.collection, &mut e.catalog))
    }

    /// Borrows collection, catalog, and statistics immutably. Returns
    /// `None` if the collection is missing or its statistics are stale —
    /// call [`Database::runstats_all`] (or [`Database::stats`]) first.
    pub fn parts(&self, name: &str) -> Option<(&Collection, &Catalog, &CollectionStats)> {
        let e = self.entry(name)?;
        Some((&e.collection, &e.catalog, e.stats.as_ref()?))
    }

    /// Compacts every collection (drops tombstones, renumbers documents)
    /// and rebuilds its physical indexes against the new document ids.
    /// Returns the number of documents reclaimed.
    pub fn compact_all(&mut self) -> usize {
        let mut reclaimed = 0usize;
        for e in &mut self.entries {
            let slots_before = e.collection.slot_count();
            let mapping = e.collection.compact();
            reclaimed += slots_before - mapping.len();
            // Rebuild physical indexes (their postings hold stale doc ids).
            let defs: Vec<(
                crate::catalog::IndexId,
                xia_xpath::LinearPath,
                xia_xpath::ValueKind,
            )> = e
                .catalog
                .iter()
                .filter(|d| !d.is_virtual())
                .map(|d| (d.id, d.pattern.clone(), d.kind))
                .collect();
            for (id, pattern, kind) in defs {
                e.catalog.drop_index(id);
                e.catalog.create_physical(&e.collection, &pattern, kind);
            }
            e.stats = Some(runstats(&e.collection));
        }
        reclaimed
    }

    /// Runs statistics collection on every collection (RUNSTATS). With a
    /// fault injector attached, a fired `stats-unavailable` fault leaves
    /// that collection's statistics stale — [`Database::parts`] then
    /// returns `None` for it while [`Database::collection`] still works,
    /// which is how callers distinguish "no stats" from "no collection".
    pub fn runstats_all(&mut self) {
        let faults = self.faults.clone();
        for e in &mut self.entries {
            // Fresh statistics stay as they are — every mutation path
            // clears `stats`, so `Some` means nothing changed since the
            // last RUNSTATS and recomputing would produce the same values.
            // With an armed injector the roll still happens for every
            // collection (fresh or not) so fault streams keep their
            // per-call sequence.
            if faults.is_armed(FaultSite::StatsUnavailable) {
                if faults.roll(FaultSite::StatsUnavailable).is_err() {
                    e.stats = None;
                    continue;
                }
            } else if e.stats.is_some() {
                continue;
            }
            e.collection.ensure_columns();
            e.stats = Some(runstats(&e.collection));
        }
    }

    /// Serving-path warm-up: materializes every collection's columnar
    /// leaf store and statistics up front, so the first request against a
    /// freshly opened database does not pay the lazy `ensure_columns` /
    /// RUNSTATS cost inside a connection's critical section. Returns the
    /// number of collections whose statistics are fresh afterwards (a
    /// `stats-unavailable` fault leaves that collection cold, exactly as
    /// [`Database::runstats_all`] would).
    pub fn prewarm(&mut self) -> usize {
        self.runstats_all();
        self.entries.iter().filter(|e| e.stats.is_some()).count()
    }

    /// Borrows statistics, computing them if stale. Returns `None` when an
    /// attached fault injector fires `stats-unavailable`.
    pub fn stats(&mut self, name: &str) -> Option<&CollectionStats> {
        let faults = self.faults.clone();
        let e = self.entry_mut(name)?;
        if e.stats.is_none() {
            if faults.roll(FaultSite::StatsUnavailable).is_err() {
                return None;
            }
            e.collection.ensure_columns();
            e.stats = Some(runstats(&e.collection));
        }
        e.stats.as_ref()
    }

    /// Borrows statistics without recomputing (`None` if stale or absent).
    pub fn stats_cached(&self, name: &str) -> Option<&CollectionStats> {
        self.entry(name).and_then(|e| e.stats.as_ref())
    }

    /// Names of all collections.
    pub fn collection_names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.collection.name()).collect()
    }

    /// Attaches a telemetry sink to every collection's catalog (see
    /// [`Catalog::set_telemetry`]) and to every collection's ingestion /
    /// columnar-scan counters. Collections created afterwards start with
    /// a disabled sink.
    pub fn set_telemetry(&mut self, telemetry: &xia_obs::Telemetry) {
        for e in &mut self.entries {
            e.catalog.set_telemetry(telemetry);
            e.collection.set_telemetry(telemetry);
        }
    }

    /// Attaches a fault injector; statistics collection rolls its
    /// `stats-unavailable` site (see [`Database::runstats_all`]).
    pub fn set_faults(&mut self, faults: &FaultInjector) {
        self.faults = faults.clone();
    }

    /// The attached fault injector (disabled unless set).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_collection("SDOC")
            .insert_xml("<Security><Yield>4.5</Yield></Security>")
            .unwrap();
        assert!(db.collection("SDOC").is_some());
        assert!(db.collection("NOPE").is_none());
        assert_eq!(db.collection_names(), vec!["SDOC"]);
    }

    #[test]
    fn stats_are_cached_and_invalidated() {
        let mut db = Database::new();
        db.create_collection("C")
            .insert_xml("<a><b>1</b></a>")
            .unwrap();
        let n1 = db.stats("C").unwrap().node_count;
        assert_eq!(n1, 2);
        assert!(db.stats_cached("C").is_some());
        db.collection_mut("C")
            .unwrap()
            .insert_xml("<a><b>2</b></a>")
            .unwrap();
        assert!(db.stats_cached("C").is_none());
        let n2 = db.stats("C").unwrap().node_count;
        assert_eq!(n2, 4);
    }

    #[test]
    fn prewarm_freshens_every_collection() {
        let mut db = Database::new();
        db.create_collection("A")
            .insert_xml("<a><b>1</b></a>")
            .unwrap();
        db.create_collection("B")
            .insert_xml("<x><y>2</y></x>")
            .unwrap();
        assert!(db.stats_cached("A").is_none());
        assert_eq!(db.prewarm(), 2);
        assert!(db.stats_cached("A").is_some());
        assert!(db.stats_cached("B").is_some());
    }

    #[test]
    fn parts_mut_provides_consistent_view() {
        let mut db = Database::new();
        db.create_collection("C")
            .insert_xml("<a><b>1</b></a>")
            .unwrap();
        let (coll, catalog, stats) = db.parts_mut("C").unwrap();
        assert_eq!(coll.len(), 1);
        assert_eq!(stats.doc_count, 1);
        assert!(catalog.is_empty());
    }

    #[test]
    fn compact_all_reclaims_and_rebuilds_indexes() {
        let mut db = Database::new();
        let c = db.create_collection("C");
        let ids: Vec<_> = (0..10)
            .map(|i| {
                c.build_doc("a", |b| {
                    b.leaf("v", format!("V{i}").as_str());
                })
            })
            .collect();
        {
            let (coll, cat, _) = db.parts_mut("C").unwrap();
            cat.create_physical(
                coll,
                &xia_xpath::parse_linear_path("/a/v").unwrap(),
                xia_xpath::ValueKind::Str,
            );
        }
        db.collection_mut("C").unwrap().delete(ids[0]);
        db.collection_mut("C").unwrap().delete(ids[5]);
        let reclaimed = db.compact_all();
        assert_eq!(reclaimed, 2);
        let coll = db.collection("C").unwrap();
        assert_eq!(coll.len(), 8);
        assert_eq!(coll.tombstone_ratio(), 0.0);
        // The rebuilt index resolves against the renumbered documents.
        let cat = db.catalog("C").unwrap();
        let def = cat.iter().next().unwrap();
        let phys = def.physical.as_ref().unwrap();
        assert_eq!(phys.entries(), 8);
        let hits = phys.lookup_eq(&xia_xpath::Literal::Str("V7".into()));
        assert_eq!(hits.len(), 1);
        assert!(coll.doc(hits[0].doc).is_some());
    }

    #[test]
    fn create_collection_is_idempotent() {
        let mut db = Database::new();
        db.create_collection("C").insert_xml("<a/>").unwrap();
        db.create_collection("C").insert_xml("<a/>").unwrap();
        assert_eq!(db.collection("C").unwrap().len(), 2);
        assert_eq!(db.collection_names().len(), 1);
    }
}
