//! RUNSTATS-equivalent data statistics.
//!
//! The paper's advisor runs the database's statistics-collection command
//! (RUNSTATS in DB2) and then *derives* virtual-index statistics from the
//! data statistics. This module is that statistics collection: per rooted
//! path we keep node/document/value counts, distinct-value counts, numeric
//! ranges, and an equi-depth histogram for selectivity estimation.

use crate::collection::Collection;
use crate::columnar::ColumnStore;
use std::collections::HashSet;
use xia_obs::Counter;
use xia_xml::PathId;
use xia_xpath::CmpOp;

/// Number of buckets in the equi-depth histograms.
pub const HISTOGRAM_BUCKETS: usize = 20;

/// Statistics for one rooted label path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathStat {
    /// Total nodes at this path.
    pub node_count: u64,
    /// Documents containing at least one node at this path.
    pub doc_count: u64,
    /// Nodes at this path carrying a text value.
    pub value_count: u64,
    /// Nodes whose value parses as a number.
    pub numeric_count: u64,
    /// Distinct values (exact, collected during the scan).
    pub distinct_values: u64,
    /// Minimum numeric value, if any numeric values exist.
    pub min_num: Option<f64>,
    /// Maximum numeric value, if any numeric values exist.
    pub max_num: Option<f64>,
    /// Equi-depth histogram bucket boundaries over numeric values
    /// (ascending; `boundaries[i]` is the upper bound of bucket `i`).
    pub histogram: Vec<f64>,
    /// Total bytes of value text at this path.
    pub value_bytes: u64,
}

impl PathStat {
    /// Average stored key width in bytes for string keys.
    pub fn avg_value_len(&self) -> f64 {
        if self.value_count == 0 {
            0.0
        } else {
            self.value_bytes as f64 / self.value_count as f64
        }
    }

    /// Estimated selectivity (fraction of *valued* nodes satisfied) of an
    /// equality predicate, from the distinct-value count (uniformity
    /// assumption, as in System R-style costing).
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct_values == 0 {
            0.0
        } else {
            1.0 / self.distinct_values as f64
        }
    }

    /// Estimated selectivity of a numeric range predicate using the
    /// equi-depth histogram (falls back to min/max interpolation, then to
    /// the 1/3 heuristic).
    pub fn range_selectivity(&self, op: CmpOp, v: f64) -> f64 {
        match op {
            CmpOp::Eq => return self.eq_selectivity(),
            CmpOp::Ne => return 1.0 - self.eq_selectivity(),
            _ => {}
        }
        let frac_below = self.fraction_below(v);
        let sel = match op {
            CmpOp::Lt | CmpOp::Le => frac_below,
            CmpOp::Gt | CmpOp::Ge => 1.0 - frac_below,
            CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
        };
        sel.clamp(0.0, 1.0)
    }

    /// Fraction of numeric values strictly below `v`, estimated from the
    /// histogram.
    fn fraction_below(&self, v: f64) -> f64 {
        if !self.histogram.is_empty() {
            let buckets = self.histogram.len() as f64;
            let mut below = 0.0;
            let mut lower = self.min_num.unwrap_or(self.histogram[0]);
            for (i, &upper) in self.histogram.iter().enumerate() {
                if v >= upper {
                    below = (i + 1) as f64;
                    lower = upper;
                } else {
                    // Linear interpolation inside the bucket.
                    if v > lower && upper > lower {
                        below = i as f64 + (v - lower) / (upper - lower);
                    }
                    break;
                }
            }
            return (below / buckets).clamp(0.0, 1.0);
        }
        match (self.min_num, self.max_num) {
            (Some(lo), Some(hi)) if hi > lo => ((v - lo) / (hi - lo)).clamp(0.0, 1.0),
            (Some(lo), Some(_)) => {
                if v > lo {
                    1.0
                } else {
                    0.0
                }
            }
            _ => 1.0 / 3.0,
        }
    }
}

/// Statistics for one collection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectionStats {
    /// Live documents.
    pub doc_count: u64,
    /// Total nodes.
    pub node_count: u64,
    /// Total value-text bytes.
    pub value_bytes: u64,
    /// Per-path statistics, dense by [`PathId`].
    pub per_path: Vec<PathStat>,
}

impl CollectionStats {
    /// Statistics for one path (zeros if the path id is beyond what was
    /// collected — possible when documents were inserted after RUNSTATS).
    pub fn path(&self, id: PathId) -> PathStat {
        self.per_path.get(id.index()).cloned().unwrap_or_default()
    }

    /// Borrowing accessor; `None` when the path id is newer than the stats.
    pub fn path_ref(&self, id: PathId) -> Option<&PathStat> {
        self.per_path.get(id.index())
    }

    /// Average nodes per document.
    pub fn avg_doc_nodes(&self) -> f64 {
        if self.doc_count == 0 {
            0.0
        } else {
            self.node_count as f64 / self.doc_count as f64
        }
    }

    /// Average value-bytes per document.
    pub fn avg_doc_bytes(&self) -> f64 {
        if self.doc_count == 0 {
            0.0
        } else {
            self.value_bytes as f64 / self.doc_count as f64
        }
    }
}

/// Collects statistics over a collection — the RUNSTATS equivalent.
///
/// Dispatches to the columnar fast path when the collection's leaf
/// projection is fresh (contiguous typed slices per path), falling back
/// to the per-node document scan otherwise. Both produce identical
/// statistics; the property suite holds them equal.
pub fn runstats(collection: &Collection) -> CollectionStats {
    match collection.columns() {
        Some(cols) => runstats_columnar(collection, cols),
        None => runstats_scan(collection),
    }
}

/// Columnar RUNSTATS: every per-path figure comes straight off the
/// column arrays. Numeric samples are sorted before bucketing (exactly
/// as the scan path does), so histograms match regardless of row order.
fn runstats_columnar(collection: &Collection, cols: &ColumnStore) -> CollectionStats {
    let path_count = collection.vocab().paths.len();
    let mut per_path = vec![PathStat::default(); path_count];
    let mut value_bytes = 0u64;
    let mut rows_scanned = 0u64;
    for (pi, stat) in per_path.iter_mut().enumerate() {
        let Some(col) = cols.col(PathId(pi as u32)) else {
            continue;
        };
        stat.node_count = col.node_count();
        stat.doc_count = col.struct_docs().len() as u64;
        stat.value_count = col.rows();
        rows_scanned += col.rows();
        let mut distinct: HashSet<&str> = HashSet::with_capacity(col.strs().len());
        for v in col.strs() {
            stat.value_bytes += v.len() as u64;
            distinct.insert(v);
        }
        value_bytes += stat.value_bytes;
        stat.distinct_values = distinct.len() as u64;
        stat.numeric_count = col.nums().len() as u64;
        for &(_, n) in col.nums() {
            stat.min_num = Some(stat.min_num.map_or(n, |m| m.min(n)));
            stat.max_num = Some(stat.max_num.map_or(n, |m| m.max(n)));
        }
        if col.nums().len() >= HISTOGRAM_BUCKETS {
            let mut samples: Vec<f64> = col.nums().iter().map(|&(_, n)| n).collect();
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            stat.histogram = equi_depth_boundaries(&samples, HISTOGRAM_BUCKETS);
        }
    }
    collection
        .telemetry()
        .add(Counter::ColumnarScanRows, rows_scanned);
    CollectionStats {
        doc_count: collection.len() as u64,
        node_count: cols.total_nodes(),
        value_bytes,
        per_path,
    }
}

/// Per-node document-scan RUNSTATS (the original path; also the fallback
/// while the columnar projection is stale).
pub fn runstats_scan(collection: &Collection) -> CollectionStats {
    let path_count = collection.vocab().paths.len();
    let mut per_path = vec![PathStat::default(); path_count];
    // Exact distinct counting; data sizes in this reproduction are small
    // enough that a HashSet per path is fine.
    let mut distinct: Vec<HashSet<String>> = vec![HashSet::new(); path_count];
    let mut numeric_samples: Vec<Vec<f64>> = vec![Vec::new(); path_count];
    let mut seen_in_doc: Vec<u32> = vec![u32::MAX; path_count];

    let mut doc_count = 0u64;
    let mut node_count = 0u64;
    let mut value_bytes = 0u64;
    for (doc_id, doc) in collection.iter_docs() {
        doc_count += 1;
        node_count += doc.len() as u64;
        for (_, node) in doc.nodes() {
            let pi = node.path.index();
            let stat = &mut per_path[pi];
            stat.node_count += 1;
            if seen_in_doc[pi] != doc_id.0 {
                seen_in_doc[pi] = doc_id.0;
                stat.doc_count += 1;
            }
            if let Some(v) = &node.value {
                stat.value_count += 1;
                stat.value_bytes += v.as_str().len() as u64;
                value_bytes += v.as_str().len() as u64;
                distinct[pi].insert(v.as_str().to_string());
                if let Some(n) = v.as_num() {
                    stat.numeric_count += 1;
                    stat.min_num = Some(stat.min_num.map_or(n, |m| m.min(n)));
                    stat.max_num = Some(stat.max_num.map_or(n, |m| m.max(n)));
                    numeric_samples[pi].push(n);
                }
            }
        }
    }

    for (pi, stat) in per_path.iter_mut().enumerate() {
        stat.distinct_values = distinct[pi].len() as u64;
        let samples = &mut numeric_samples[pi];
        if samples.len() >= HISTOGRAM_BUCKETS {
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            stat.histogram = equi_depth_boundaries(samples, HISTOGRAM_BUCKETS);
        }
    }

    CollectionStats {
        doc_count,
        node_count,
        value_bytes,
        per_path,
    }
}

/// Upper boundaries of `buckets` equi-depth buckets over sorted values.
fn equi_depth_boundaries(sorted: &[f64], buckets: usize) -> Vec<f64> {
    let n = sorted.len();
    (1..=buckets)
        .map(|i| sorted[(i * n / buckets).min(n) - 1])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;

    fn yield_collection(values: &[f64]) -> Collection {
        let mut c = Collection::new("SDOC");
        for &v in values {
            c.build_doc("Security", |b| {
                b.leaf("Yield", v);
            });
        }
        c
    }

    #[test]
    fn counts_are_exact() {
        let c = yield_collection(&[1.0, 2.0, 2.0, 3.0]);
        let s = runstats(&c);
        assert_eq!(s.doc_count, 4);
        assert_eq!(s.node_count, 8);
        let yield_path = xia_xml::PathId(1);
        let ps = s.path(yield_path);
        assert_eq!(ps.node_count, 4);
        assert_eq!(ps.doc_count, 4);
        assert_eq!(ps.value_count, 4);
        assert_eq!(ps.numeric_count, 4);
        assert_eq!(ps.distinct_values, 3);
        assert_eq!(ps.min_num, Some(1.0));
        assert_eq!(ps.max_num, Some(3.0));
    }

    #[test]
    fn doc_count_counts_each_doc_once() {
        let mut c = Collection::new("X");
        c.build_doc("a", |b| {
            b.leaf("x", "1");
            b.leaf("x", "2");
        });
        let s = runstats(&c);
        let xpath = xia_xml::PathId(1);
        assert_eq!(s.path(xpath).node_count, 2);
        assert_eq!(s.path(xpath).doc_count, 1);
    }

    #[test]
    fn eq_selectivity_uses_distinct() {
        let c = yield_collection(&[1.0, 2.0, 3.0, 4.0]);
        let s = runstats(&c);
        let ps = s.path(xia_xml::PathId(1));
        assert!((ps.eq_selectivity() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_from_histogram() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let c = yield_collection(&values);
        let s = runstats(&c);
        let ps = s.path(xia_xml::PathId(1));
        assert!(!ps.histogram.is_empty());
        let sel = ps.range_selectivity(CmpOp::Lt, 50.0);
        assert!((sel - 0.5).abs() < 0.08, "sel = {sel}");
        let sel = ps.range_selectivity(CmpOp::Gt, 90.0);
        assert!((sel - 0.1).abs() < 0.08, "sel = {sel}");
    }

    #[test]
    fn range_selectivity_minmax_fallback() {
        let c = yield_collection(&[0.0, 10.0]);
        let s = runstats(&c);
        let ps = s.path(xia_xml::PathId(1));
        assert!(ps.histogram.is_empty());
        let sel = ps.range_selectivity(CmpOp::Lt, 5.0);
        assert!((sel - 0.5).abs() < 1e-9);
    }

    #[test]
    fn selectivity_is_clamped() {
        let c = yield_collection(&[1.0, 2.0]);
        let s = runstats(&c);
        let ps = s.path(xia_xml::PathId(1));
        assert_eq!(ps.range_selectivity(CmpOp::Lt, -100.0), 0.0);
        assert_eq!(ps.range_selectivity(CmpOp::Lt, 100.0), 1.0);
    }

    #[test]
    fn stats_on_empty_collection() {
        let c = Collection::new("E");
        let s = runstats(&c);
        assert_eq!(s.doc_count, 0);
        assert_eq!(s.avg_doc_nodes(), 0.0);
    }

    #[test]
    fn columnar_and_scan_stats_agree() {
        let mut c = Collection::new("SDOC");
        for i in 0..40 {
            c.insert_xml(&format!(
                "<Security><Symbol>S{}</Symbol><Yield>{}</Yield><Info sector=\"T{}\" cap=\"{}\"/><Note/></Security>",
                i % 7,
                i as f64 / 3.0,
                i % 3,
                i * 10
            ))
            .unwrap();
        }
        // Streamed inserts keep the columns fresh: runstats takes the
        // columnar path and must reproduce the scan exactly, histograms
        // included.
        assert!(c.columns().is_some());
        assert_eq!(runstats(&c), runstats_scan(&c));

        // A delete invalidates the columns; runstats falls back to the
        // scan until they are rebuilt, then agrees again.
        c.delete(crate::collection::DocId(5));
        assert!(c.columns().is_none());
        assert_eq!(runstats(&c), runstats_scan(&c));
        c.ensure_columns();
        assert!(c.columns().is_some());
        assert_eq!(runstats(&c), runstats_scan(&c));
    }

    #[test]
    fn columnar_stats_count_scan_rows() {
        let t = xia_obs::Telemetry::new();
        let mut c = Collection::new("SDOC");
        c.set_telemetry(&t);
        c.insert_xml("<a><b>1</b><b>2</b><c/></a>").unwrap();
        let _ = runstats(&c);
        // Two valued nodes scanned from the columns.
        assert_eq!(t.get(xia_obs::Counter::ColumnarScanRows), 2);
    }

    #[test]
    fn unknown_path_id_yields_zero_stats() {
        let c = yield_collection(&[1.0]);
        let s = runstats(&c);
        let ghost = xia_xml::PathId(999);
        assert_eq!(s.path(ghost).node_count, 0);
        assert!(s.path_ref(ghost).is_none());
    }
}
