//! Property-style corruption tests: save → mutilate → load.
//!
//! For a sweep of truncation points and deterministic single-bit flips,
//! loading must never panic: the strict loader reports a typed error, the
//! lenient loader recovers whatever still verifies.

use xia_storage::{
    load_database_from, load_database_lenient_from, save_database_to, Database, PersistError,
};

/// Deterministic pseudo-random stream (splitmix64) — no external crates,
/// fixed seed, reproducible failures.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

const DOCS: usize = 24;

fn sample_db() -> Database {
    let mut db = Database::new();
    let coll = db.create_collection("SDOC");
    for i in 0..DOCS {
        coll.insert_xml(&format!(
            "<Security><Symbol>S{i:03}</Symbol><Yield>{}.25</Yield>\
             <Sector>sector-{}</Sector></Security>",
            i % 9,
            i % 4
        ))
        .unwrap();
    }
    let coll = db.create_collection("ODOC");
    for i in 0..8 {
        coll.insert_xml(&format!("<Order><Id>{i}</Id><Qty>{}</Qty></Order>", i * 10))
            .unwrap();
    }
    db.runstats_all();
    db
}

fn dump(db: &Database) -> Vec<u8> {
    let mut bytes = Vec::new();
    save_database_to(db, &mut bytes).unwrap();
    bytes
}

fn strict(bytes: &[u8]) -> Result<Database, PersistError> {
    let mut r = std::io::BufReader::new(bytes);
    load_database_from(&mut r)
}

fn lenient(bytes: &[u8]) -> Result<(Database, xia_storage::LoadReport), PersistError> {
    let mut r = std::io::BufReader::new(bytes);
    load_database_lenient_from(&mut r)
}

fn doc_count(db: &Database) -> usize {
    db.collection_names()
        .iter()
        .map(|n| db.collection(n).unwrap().iter_docs().count())
        .sum()
}

#[test]
fn clean_round_trip_is_identity() {
    let db = sample_db();
    let bytes = dump(&db);
    let restored = strict(&bytes).unwrap();
    assert_eq!(doc_count(&restored), DOCS + 8);
    let (restored, report) = lenient(&bytes).unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(doc_count(&restored), DOCS + 8);
    assert_eq!(report.docs_loaded as usize, DOCS + 8);
}

#[test]
fn every_truncation_point_loads_without_panicking() {
    let bytes = dump(&sample_db());
    let total = DOCS + 8;
    // Every 7th byte: the loader must return, not panic. Stop short of
    // `len - 1`, because dropping only the final newline still leaves a
    // logically complete file (the trailer line is intact).
    for cut in (0..bytes.len() - 1).step_by(7) {
        let prefix = &bytes[..cut];
        // Strict: a truncated file is never silently accepted — the END
        // trailer is missing or itself cut short.
        assert!(
            strict(prefix).is_err(),
            "strict load accepted a truncation at byte {cut}"
        );
        // Lenient: partial recovery or a typed error, never a panic, and
        // never more documents than were saved.
        // An Err is fine too (header truncated away entirely).
        if let Ok((db, report)) = lenient(prefix) {
            assert!(
                !report.is_clean(),
                "truncation at {cut} reported a clean load: {report:?}"
            );
            assert!(doc_count(&db) <= total);
        }
    }
}

#[test]
fn every_sampled_bit_flip_is_detected_or_tolerated() {
    let bytes = dump(&sample_db());
    let total = DOCS + 8;
    let mut rng = Rng(0xFA0175);
    for _ in 0..300 {
        let pos = (rng.next() as usize) % bytes.len();
        let bit = 1u8 << (rng.next() % 8);
        let mut flipped = bytes.clone();
        flipped[pos] ^= bit;
        if flipped[pos] == bytes[pos] {
            continue;
        }
        // Strict mode: a flipped payload or frame must not be silently
        // accepted as a full, clean database — unless the flip landed in
        // bytes the loader legitimately ignores (it must then still load
        // every document).
        match strict(&flipped) {
            Ok(db) => assert_eq!(
                doc_count(&db),
                total,
                "strict load silently dropped data after flipping bit {bit:#x} at byte {pos}"
            ),
            Err(e) => {
                assert!(!format!("{e}").is_empty());
            }
        }
        // Lenient mode: never panics, never conjures documents.
        if let Ok((db, report)) = lenient(&flipped) {
            assert!(doc_count(&db) <= total);
            let _ = report;
        }
    }
}

#[test]
fn flipping_one_payload_byte_loses_exactly_that_document_leniently() {
    let bytes = dump(&sample_db());
    // Find a DOC payload: the line after a "DOC <len> <fnv>" header. Flip a
    // byte in the middle of its XML.
    let text = String::from_utf8(bytes.clone()).unwrap();
    let mut offset = 0usize;
    let mut payload_at = None;
    for line in text.lines() {
        if line.starts_with("DOC ") {
            payload_at = Some(offset + line.len() + 1 + 10); // 10 bytes into the XML
            break;
        }
        offset += line.len() + 1;
    }
    let pos = payload_at.expect("dump contains a DOC record");
    let mut flipped = bytes.clone();
    flipped[pos] ^= 0x01;

    match strict(&flipped) {
        Err(PersistError::Corrupt { .. }) => {}
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("strict load accepted a corrupt payload"),
    }
    let (db, report) = lenient(&flipped).unwrap();
    assert_eq!(report.docs_skipped, 1, "{report:?}");
    assert_eq!(doc_count(&db), DOCS + 8 - 1);
    assert!(!report.is_clean());
}
