//! The daemon: listeners, admission control, and the connection loop.
//!
//! One [`Server`] holds one [`Database`] behind a mutex, warm across
//! requests and connections. Each accepted connection gets its own OS
//! thread and its own [`ServerSession`]; a request locks the database
//! only for the duration of its dispatch, so sessions interleave at
//! request granularity while each session's caches stay private.
//!
//! Listeners are non-blocking and polled, so `shutdown` (the wire verb or
//! [`ServerHandle::shutdown`]) stops the accept loop promptly; connection
//! reads use a short timeout and re-check the stop flag, so connection
//! threads drain within one poll interval.
//!
//! **Determinism under sharing.** Sessions with fault injection enabled
//! can leave shared database state (collection statistics staleness)
//! behind; after every faulted request the server re-canonicalizes the
//! database (fault-free `runstats_all`) while still holding the lock, so
//! the next request — whichever session it comes from — starts from the
//! same database state regardless of interleaving.

use crate::protocol::{ok_reply, parse_request, Request, WireError, MAX_LINE_BYTES};
use crate::session::{ServerSession, SessionOptions};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use xia_fault::FaultInjector;
use xia_obs::json::Json;
use xia_storage::Database;

/// How long a connection read waits before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// How long the accept loop sleeps when no listener had a connection.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP listen address, e.g. `127.0.0.1:0` (`None` = no TCP listener).
    pub tcp: Option<String>,
    /// Unix-domain socket path (`None` = no unix listener; unix only).
    pub socket: Option<PathBuf>,
    /// Admission cap: connections beyond this get a `busy` error reply
    /// and are closed.
    pub max_connections: usize,
    /// Total-variation drift that triggers an incremental re-advise.
    pub drift_threshold: f64,
    /// Per-run what-if optimizer-call budget (0 = unlimited).
    pub what_if_budget: u64,
    /// What-if worker threads per request (`None` = advisor default).
    pub jobs: Option<usize>,
    /// Fault-injection specs (`site:rate`), applied per session.
    pub fault_specs: Vec<String>,
    /// Seed for the per-session fault streams.
    pub fault_seed: u64,
    /// Warm up collection statistics and columnar stores at startup.
    pub prewarm: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            tcp: None,
            socket: None,
            max_connections: 8,
            drift_threshold: 0.25,
            what_if_budget: 0,
            jobs: None,
            fault_specs: Vec::new(),
            fault_seed: 0,
            prewarm: true,
        }
    }
}

/// Server-level counters (plain atomics; session-level determinism lives
/// in [`ServerSession::stats_json`], these are operational gauges).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted (including rejected ones).
    pub connections: AtomicU64,
    /// Connections rejected by the admission cap.
    pub rejected: AtomicU64,
    /// Request lines parsed (valid or not).
    pub requests: AtomicU64,
    /// Error replies written.
    pub errors: AtomicU64,
}

struct Shared {
    db: Mutex<Database>,
    config: ServerConfig,
    stop: AtomicBool,
    active: AtomicUsize,
    counters: ServerCounters,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn lock_db(&self) -> std::sync::MutexGuard<'_, Database> {
        match self.db.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn stats_json(&self) -> Json {
        Json::Obj(vec![
            (
                "connections".into(),
                Json::Num(self.counters.connections.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected".into(),
                Json::Num(self.counters.rejected.load(Ordering::Relaxed) as f64),
            ),
            (
                "requests".into(),
                Json::Num(self.counters.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "errors".into(),
                Json::Num(self.counters.errors.load(Ordering::Relaxed) as f64),
            ),
            (
                "active".into(),
                Json::Num(self.active.load(Ordering::Relaxed) as f64),
            ),
            (
                "max_connections".into(),
                Json::Num(self.config.max_connections as f64),
            ),
        ])
    }
}

/// Handle to a running server: bound addresses, shutdown, join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    socket_path: Option<PathBuf>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address (with the real port when `:0` was asked).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The unix socket path, if listening on one.
    pub fn socket_path(&self) -> Option<&Path> {
        self.socket_path.as_deref()
    }

    /// Asks the server to stop; returns immediately.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Whether the server has been asked to stop.
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Server-level counter snapshot, in declaration order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let c = &self.shared.counters;
        vec![
            ("connections", c.connections.load(Ordering::Relaxed)),
            ("rejected", c.rejected.load(Ordering::Relaxed)),
            ("requests", c.requests.load(Ordering::Relaxed)),
            ("errors", c.errors.load(Ordering::Relaxed)),
        ]
    }

    /// Waits for the accept loop and every connection thread to finish.
    /// Call [`ServerHandle::shutdown`] first (or send the `shutdown`
    /// verb) or this blocks until a client stops the server.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles = match self.shared.conns.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// [`ServerHandle::shutdown`] + [`ServerHandle::join`].
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }
}

/// Starts the server on the configured listeners (at least one of `tcp` /
/// `socket` must be set) and returns a handle. The accept loop runs on a
/// background thread; this returns as soon as the listeners are bound, so
/// clients can connect immediately.
pub fn start(config: ServerConfig, mut db: Database) -> io::Result<ServerHandle> {
    if config.tcp.is_none() && config.socket.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "server needs a TCP address or a unix socket path",
        ));
    }
    if config.prewarm {
        db.prewarm();
    }
    let tcp = match &config.tcp {
        Some(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    let tcp_addr = match &tcp {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    #[cfg(unix)]
    let unix = match &config.socket {
        Some(path) => {
            // A stale socket file from a dead server blocks rebinding.
            let _ = std::fs::remove_file(path);
            let l = std::os::unix::net::UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    #[cfg(not(unix))]
    if config.socket.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix sockets are not available on this platform",
        ));
    }
    let socket_path = config.socket.clone();
    let shared = Arc::new(Shared {
        db: Mutex::new(db),
        config,
        stop: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        counters: ServerCounters::default(),
        conns: Mutex::new(Vec::new()),
    });

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("xia-accept".into())
        .spawn(move || {
            accept_loop(
                &accept_shared,
                tcp,
                #[cfg(unix)]
                unix,
            )
        })?;

    Ok(ServerHandle {
        shared,
        tcp_addr,
        socket_path,
        accept: Some(accept),
    })
}

fn accept_loop(
    shared: &Arc<Shared>,
    tcp: Option<TcpListener>,
    #[cfg(unix)] unix: Option<std::os::unix::net::UnixListener>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        let mut accepted = false;
        if let Some(l) = &tcp {
            match l.accept() {
                Ok((stream, _)) => {
                    accepted = true;
                    admit(shared, stream, |s| {
                        s.set_nonblocking(false)?;
                        s.set_nodelay(true)?;
                        s.set_read_timeout(Some(READ_POLL))
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
        }
        #[cfg(unix)]
        if let Some(l) = &unix {
            match l.accept() {
                Ok((stream, _)) => {
                    accepted = true;
                    admit(shared, stream, |s| {
                        s.set_nonblocking(false)?;
                        s.set_read_timeout(Some(READ_POLL))
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
        }
        if !accepted {
            std::thread::sleep(ACCEPT_POLL);
        }
    }
}

/// Admission control: under the cap, spawn a connection thread; over it,
/// write one `busy` error reply and close.
fn admit<S>(shared: &Arc<Shared>, mut stream: S, configure: impl Fn(&S) -> io::Result<()>)
where
    S: Read + Write + Send + 'static,
{
    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
    if configure(&stream).is_err() {
        return;
    }
    // Reserve a slot; back out if that oversubscribed the cap. The
    // fetch_add/compare makes the cap exact under concurrent accepts.
    let prev = shared.active.fetch_add(1, Ordering::SeqCst);
    if prev >= shared.config.max_connections {
        shared.active.fetch_sub(1, Ordering::SeqCst);
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        let busy = WireError::busy(format!(
            "server at its connection cap ({})",
            shared.config.max_connections
        ));
        let _ = write_line(&mut stream, &busy.render());
        return;
    }
    let conn_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("xia-conn".into())
        .spawn(move || {
            conn_loop(&conn_shared, stream);
            conn_shared.active.fetch_sub(1, Ordering::SeqCst);
        });
    match spawned {
        Ok(handle) => {
            if let Ok(mut conns) = shared.conns.lock() {
                conns.push(handle);
            }
        }
        Err(_) => {
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn write_line<S: Write>(stream: &mut S, line: &str) -> io::Result<()> {
    // One write per reply: a payload write followed by a separate newline
    // write trips Nagle + delayed-ACK stalls (~40 ms) on TCP.
    let mut framed = Vec::with_capacity(line.len() + 1);
    framed.extend_from_slice(line.as_bytes());
    framed.push(b'\n');
    stream.write_all(&framed)?;
    stream.flush()
}

/// Byte-capped, stop-aware line reader. Keeps leftover bytes between
/// calls so pipelined requests in one TCP segment all surface.
struct LineReader {
    buf: Vec<u8>,
}

impl LineReader {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// `Ok(None)` on EOF or server stop; `Ok(Some(Err(..)))` on an
    /// oversized or non-UTF-8 line (protocol error — the caller replies
    /// and closes); `Err` on a fatal transport error.
    fn next_line<S: Read>(
        &mut self,
        stream: &mut S,
        stop: &AtomicBool,
    ) -> io::Result<Option<Result<String, WireError>>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                if pos > MAX_LINE_BYTES {
                    return Ok(Some(Err(WireError::input(format!(
                        "request line exceeds {MAX_LINE_BYTES} bytes"
                    )))));
                }
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(
                    String::from_utf8(line)
                        .map_err(|_| WireError::input("request line is not valid UTF-8")),
                ));
            }
            // No newline yet: bound the buffer so a client cannot stream
            // an endless line into memory.
            if self.buf.len() > MAX_LINE_BYTES {
                return Ok(Some(Err(WireError::input(format!(
                    "request line exceeds {MAX_LINE_BYTES} bytes"
                )))));
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn conn_loop<S: Read + Write>(shared: &Arc<Shared>, mut stream: S) {
    let faults = build_faults(&shared.config);
    let opts = SessionOptions {
        drift_threshold: shared.config.drift_threshold,
        what_if_budget: shared.config.what_if_budget,
        jobs: shared.config.jobs,
        faults,
    };
    let mut session = ServerSession::new(&opts);
    let mut reader = LineReader::new();
    loop {
        let line = match reader.next_line(&mut stream, &shared.stop) {
            Ok(Some(Ok(line))) => line,
            Ok(Some(Err(protocol_err))) => {
                // Framing is lost (oversized/undecodable line): reply,
                // then close the connection.
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_line(&mut stream, &protocol_err.render());
                return;
            }
            Ok(None) | Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let reply = match parse_request(&line) {
            Err(e) => {
                // The line framed correctly; a malformed request does not
                // cost the client its connection.
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                e.render()
            }
            Ok(Request::Shutdown) => {
                let _ = write_line(
                    &mut stream,
                    &ok_reply(vec![("stopping".into(), Json::Bool(true))]),
                );
                shared.stop.store(true, Ordering::SeqCst);
                return;
            }
            Ok(req) => {
                let mut db = shared.lock_db();
                let outcome = dispatch(&mut session, &mut db, &req, shared);
                if session.faults_enabled() {
                    // Faulted requests may leave statistics stale in the
                    // shared database; restore the canonical all-fresh
                    // state so the next request (from any session) sees
                    // the same starting point in every interleaving.
                    db.set_faults(&FaultInjector::off());
                    db.runstats_all();
                }
                drop(db);
                match outcome {
                    Ok(reply) => reply,
                    Err(e) => {
                        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                        e.render()
                    }
                }
            }
        };
        if write_line(&mut stream, &reply).is_err() {
            return;
        }
    }
}

fn dispatch(
    session: &mut ServerSession,
    db: &mut Database,
    req: &Request,
    shared: &Shared,
) -> Result<String, WireError> {
    match req {
        Request::Hello => Ok(session.hello_reply()),
        Request::Ping => Ok(session.ping_reply()),
        Request::Observe { statements } => session.observe(db, statements),
        Request::Recommend { budget, algorithm } => {
            session.recommend_reply(db, *budget, *algorithm)
        }
        Request::Stats => Ok(ok_reply(vec![
            ("session".into(), session.stats_json()),
            ("server".into(), shared.stats_json()),
        ])),
        Request::Journal => Ok(session.journal_reply()),
        Request::Reset => Ok(session.reset_reply()),
        // Handled by the connection loop before dispatch.
        Request::Shutdown => Ok(ok_reply(vec![("stopping".into(), Json::Bool(true))])),
    }
}

/// Each session derives its fault injector from the same seed and specs,
/// so a session's injection sequence depends only on its own operations —
/// never on how connections interleave.
fn build_faults(config: &ServerConfig) -> FaultInjector {
    if config.fault_specs.is_empty() {
        return FaultInjector::off();
    }
    let mut f = FaultInjector::seeded(config.fault_seed);
    for spec in &config.fault_specs {
        match f.with_spec(spec) {
            Ok(armed) => f = armed,
            Err(_) => return FaultInjector::off(),
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpStream;

    fn tpox_db() -> Database {
        let mut db = Database::new();
        xia_workloads::tpox::generate(&mut db, &xia_workloads::tpox::TpoxConfig::tiny());
        db
    }

    fn connect(handle: &ServerHandle) -> TcpStream {
        let addr = handle.tcp_addr().expect("tcp listener");
        TcpStream::connect(addr).expect("connect")
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
        let mut s = stream.try_clone().expect("clone");
        write_line(&mut s, line).expect("write");
        let mut reader = std::io::BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        reply.trim_end().to_string()
    }

    fn start_tcp(config: ServerConfig) -> ServerHandle {
        let config = ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            ..config
        };
        start(config, tpox_db()).expect("start")
    }

    #[test]
    fn ping_hello_shutdown_over_tcp() {
        let handle = start_tcp(ServerConfig::default());
        let mut c = connect(&handle);
        let pong = roundtrip(&mut c, r#"{"verb":"ping"}"#);
        assert_eq!(pong, r#"{"ok":true,"pong":true}"#);
        let hello = roundtrip(&mut c, r#"{"verb":"hello"}"#);
        let v = Json::parse(&hello).expect("hello json");
        assert_eq!(v.get("server").unwrap().as_str(), Some("xia-server"));
        let bye = roundtrip(&mut c, r#"{"verb":"shutdown"}"#);
        assert!(bye.contains("stopping"), "{bye}");
        handle.join();
    }

    #[test]
    fn start_requires_a_listener() {
        let Err(err) = start(ServerConfig::default(), Database::new()) else {
            panic!("expected an error without listeners");
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn admission_cap_rejects_with_busy() {
        let handle = start_tcp(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        });
        let mut first = connect(&handle);
        // A round trip guarantees the accept loop admitted this
        // connection before the second one arrives.
        let _ = roundtrip(&mut first, r#"{"verb":"ping"}"#);
        let mut second = connect(&handle);
        let mut reader = std::io::BufReader::new(&mut second);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("busy reply");
        let v = Json::parse(reply.trim_end()).expect("busy json");
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            v.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("busy")
        );
        drop(second);
        handle.stop();
    }

    #[test]
    fn malformed_requests_get_typed_errors_and_keep_the_connection() {
        let handle = start_tcp(ServerConfig::default());
        let mut c = connect(&handle);
        let bad = roundtrip(&mut c, "this is not json");
        let v = Json::parse(&bad).expect("error json");
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            v.get("error").unwrap().get("code").unwrap().as_num(),
            Some(3.0)
        );
        // Connection survives: the next request succeeds.
        let pong = roundtrip(&mut c, r#"{"verb":"ping"}"#);
        assert!(pong.contains("pong"), "{pong}");
        handle.stop();
    }

    #[test]
    fn oversized_lines_error_and_close() {
        let handle = start_tcp(ServerConfig::default());
        let mut c = connect(&handle);
        let huge = format!(
            r#"{{"verb":"observe","statements":["{}"]}}"#,
            "x".repeat(MAX_LINE_BYTES + 16)
        );
        let reply = roundtrip(&mut c, &huge);
        let v = Json::parse(&reply).expect("error json");
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert!(v
            .get("error")
            .unwrap()
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("exceeds"));
        // The server closed this connection; the next read is EOF.
        let mut rest = String::new();
        let n = std::io::BufReader::new(&mut c)
            .read_line(&mut rest)
            .expect("read after close");
        assert_eq!(n, 0, "connection must be closed, got {rest:?}");
        handle.stop();
    }

    #[test]
    fn observe_and_recommend_stay_warm_across_requests() {
        let handle = start_tcp(ServerConfig::default());
        let mut c = connect(&handle);
        let observe = r#"{"verb":"observe","statements":["collection('SDOC')/Security[Symbol = \"SYM00001\"]"]}"#;
        let v = Json::parse(&roundtrip(&mut c, observe)).expect("observe json");
        assert_eq!(v.get("observed").unwrap().as_num(), Some(1.0));
        let rec_req = r#"{"verb":"recommend","budget":1000000000,"algo":"heuristics"}"#;
        let r1 = roundtrip(&mut c, rec_req);
        let r2 = roundtrip(&mut c, rec_req);
        assert_eq!(r1, r2, "warm repeat must be byte-identical");
        let v = Json::parse(&r1).expect("recommend json");
        assert!(v.get("recommendation").is_some());
        handle.stop();
    }

    #[test]
    fn sessions_are_isolated_per_connection() {
        let handle = start_tcp(ServerConfig::default());
        let mut a = connect(&handle);
        let observe =
            r#"{"verb":"observe","statements":["collection('SDOC')/Security[Yield > 4]"]}"#;
        let _ = roundtrip(&mut a, observe);
        let mut b = connect(&handle);
        let stats = Json::parse(&roundtrip(&mut b, r#"{"verb":"stats"}"#)).expect("stats");
        assert_eq!(
            stats
                .get("session")
                .unwrap()
                .get("observed")
                .unwrap()
                .as_num(),
            Some(0.0),
            "b must not see a's observations"
        );
        handle.stop();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path =
            std::env::temp_dir().join(format!("xia-server-test-{}.sock", std::process::id()));
        let handle = start(
            ServerConfig {
                socket: Some(path.clone()),
                ..ServerConfig::default()
            },
            tpox_db(),
        )
        .expect("start");
        let mut stream =
            std::os::unix::net::UnixStream::connect(&path).expect("connect unix socket");
        write_line(&mut stream, r#"{"verb":"ping"}"#).expect("write");
        let mut reply = String::new();
        std::io::BufReader::new(&stream)
            .read_line(&mut reply)
            .expect("read");
        assert_eq!(reply.trim_end(), r#"{"ok":true,"pong":true}"#);
        handle.stop();
        assert!(!path.exists(), "socket file must be cleaned up");
    }
}
