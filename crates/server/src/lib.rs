//! # xia-server
//!
//! The warm advisor service: a long-lived daemon that keeps one
//! [`Database`](xia_storage::Database) — statistics, columnar stores,
//! prepared candidates, and warm what-if cost caches — resident across
//! requests, instead of paying the cold-start tax (load, RUNSTATS,
//! enumeration, generalization, benefit fan-out) on every `xia recommend`
//! invocation.
//!
//! Three layers:
//!
//! * [`protocol`] — line-delimited JSON over TCP and/or a unix socket:
//!   verbs `hello`, `ping`, `observe`, `recommend`, `stats`, `journal`,
//!   `reset`, `shutdown`; hostile-input caps; typed error replies mapped
//!   to the CLI's exit-code taxonomy.
//! * [`session`] — one [`ServerSession`] per connection: an incremental
//!   [`TuningSession`](xia_advisor::TuningSession) with drift-triggered
//!   incremental re-advise over compressed-template mass.
//! * [`server`] — listeners, thread-per-connection with an admission
//!   cap, shared-database locking, and deterministic cleanup.
//!
//! Every session is a pure function of its own request stream, so N
//! concurrent clients get byte-identical replies to the same requests
//! replayed serially — the property the `server_determinism` test suite
//! and the `server_overhead_gate` release gate pin.

pub mod protocol;
pub mod server;
pub mod session;

pub use protocol::{
    parse_request, render_recommendation, Request, WireError, MAX_LINE_BYTES,
    MAX_STATEMENTS_PER_REQUEST,
};
pub use server::{start, ServerConfig, ServerCounters, ServerHandle};
pub use session::{ServerSession, SessionOptions};
