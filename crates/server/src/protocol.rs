//! Wire protocol: line-delimited JSON requests and replies.
//!
//! One request per line, one reply per line. Every request is a JSON
//! object with a `verb` field; every reply is a JSON object whose first
//! field is `ok`. Error replies carry a typed error object mapped to the
//! CLI's exit-code taxonomy, so a scripted client can react the same way
//! it would to `xia` exit codes:
//!
//! ```text
//! {"ok":false,"error":{"kind":"input","code":3,"message":"..."}}
//! ```
//!
//! The parser is deliberately hostile-input proof: byte-capped lines
//! (enforced by the connection reader, [`MAX_LINE_BYTES`]), a cap on
//! statements per request ([`MAX_STATEMENTS_PER_REQUEST`]), and typed
//! errors for malformed JSON, wrong shapes, and unknown verbs. Nothing in
//! this module panics on untrusted input.

use xia_advisor::{Recommendation, SearchAlgorithm, XiaError};
use xia_obs::json::Json;

/// Hard cap on one request line, in bytes. Longer lines get an `input`
/// error and the connection is closed (the remainder of an oversized line
/// is not resynchronized).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Hard cap on statements in one `observe` request.
pub const MAX_STATEMENTS_PER_REQUEST: usize = 1024;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: server identity, limits, verbs.
    Hello,
    /// Liveness probe.
    Ping,
    /// Stream workload statements into the session.
    Observe {
        /// `(statement text, frequency)` pairs.
        statements: Vec<(String, f64)>,
    },
    /// Produce a recommendation for the observed workload.
    Recommend {
        /// Disk-space budget in bytes.
        budget: u64,
        /// Search algorithm.
        algorithm: SearchAlgorithm,
    },
    /// Session + server counters snapshot.
    Stats,
    /// The session's decision-provenance journal as JSONL.
    Journal,
    /// Discard all session state (workload, caches, drift baseline).
    Reset,
    /// Stop the whole server.
    Shutdown,
}

/// A typed wire error: taxonomy kind, CLI-style exit code, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Taxonomy bucket: `usage`, `input`, `corrupt`, `internal`, `busy`.
    pub kind: &'static str,
    /// The exit code the `xia` CLI would use for this class of failure.
    pub code: i64,
    /// Human-readable message.
    pub message: String,
}

impl WireError {
    /// Malformed request shape: unknown verb, missing/ill-typed field.
    /// Mirrors CLI exit code 2.
    pub fn usage(message: impl Into<String>) -> Self {
        Self {
            kind: "usage",
            code: 2,
            message: message.into(),
        }
    }

    /// Bad payload: malformed JSON, oversized line, unparseable
    /// statement batch. Mirrors CLI exit code 3.
    pub fn input(message: impl Into<String>) -> Self {
        Self {
            kind: "input",
            code: 3,
            message: message.into(),
        }
    }

    /// Internal failure. Mirrors CLI exit code 5.
    pub fn internal(message: impl Into<String>) -> Self {
        Self {
            kind: "internal",
            code: 5,
            message: message.into(),
        }
    }

    /// Admission control rejected the connection (over the concurrent
    /// session cap). Uses the internal-class code: the request was valid,
    /// the server just cannot take it now.
    pub fn busy(message: impl Into<String>) -> Self {
        Self {
            kind: "busy",
            code: 5,
            message: message.into(),
        }
    }

    /// Maps an advisor error to the taxonomy the CLI uses for its exit
    /// code (bad workload input vs. corrupt database vs. internal).
    pub fn from_xia(e: &XiaError) -> Self {
        let message = e.chain().join(": ");
        match e.root() {
            XiaError::Persist(p) => match p {
                xia_storage::PersistError::Corrupt { .. }
                | xia_storage::PersistError::Format(_) => Self {
                    kind: "corrupt",
                    code: 4,
                    message,
                },
                _ => Self::input(message),
            },
            XiaError::Parse(_)
            | XiaError::Xml(_)
            | XiaError::EmptyWorkload
            | XiaError::AllStatementsQuarantined { .. }
            | XiaError::UnknownCollection(_) => Self::input(message),
            _ => Self::internal(message),
        }
    }

    /// Renders the one-line error reply.
    pub fn render(&self) -> String {
        Json::Obj(vec![
            ("ok".into(), Json::Bool(false)),
            (
                "error".into(),
                Json::Obj(vec![
                    ("kind".into(), Json::Str(self.kind.into())),
                    ("code".into(), Json::Num(self.code as f64)),
                    ("message".into(), Json::Str(self.message.clone())),
                ]),
            ),
        ])
        .render()
    }
}

/// Renders a success reply: `{"ok":true, ...fields}`.
pub fn ok_reply(fields: Vec<(String, Json)>) -> String {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields);
    Json::Obj(all).render()
}

/// Parses one request line. Every failure mode returns a typed error —
/// the caller renders it as the reply and decides whether to keep the
/// connection.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let value = Json::parse(line).map_err(|e| WireError::input(format!("malformed JSON: {e}")))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(WireError::usage("request must be a JSON object"));
    }
    let verb = value
        .get("verb")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::usage("missing string field `verb`"))?;
    match verb {
        "hello" => Ok(Request::Hello),
        "ping" => Ok(Request::Ping),
        "observe" => parse_observe(&value),
        "recommend" => parse_recommend(&value),
        "stats" => Ok(Request::Stats),
        "journal" => Ok(Request::Journal),
        "reset" => Ok(Request::Reset),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(WireError::usage(format!("unknown verb `{other}`"))),
    }
}

fn parse_observe(value: &Json) -> Result<Request, WireError> {
    let items = value
        .get("statements")
        .and_then(Json::as_arr)
        .ok_or_else(|| WireError::usage("observe requires an array field `statements`"))?;
    if items.len() > MAX_STATEMENTS_PER_REQUEST {
        return Err(WireError::input(format!(
            "too many statements in one request: {} (max {MAX_STATEMENTS_PER_REQUEST})",
            items.len()
        )));
    }
    let mut statements = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match item {
            Json::Str(text) => statements.push((text.clone(), 1.0)),
            Json::Obj(_) => {
                let text = item.get("text").and_then(Json::as_str).ok_or_else(|| {
                    WireError::usage(format!("statement #{i} needs a string field `text`"))
                })?;
                let freq = match item.get("freq") {
                    None => 1.0,
                    Some(f) => f
                        .as_num()
                        .filter(|f| f.is_finite() && *f >= 0.0)
                        .ok_or_else(|| {
                            WireError::usage(format!(
                                "statement #{i} has a bad `freq` (finite number >= 0 expected)"
                            ))
                        })?,
                };
                statements.push((text.to_string(), freq));
            }
            _ => {
                return Err(WireError::usage(format!(
                    "statement #{i} must be a string or an object with `text`"
                )))
            }
        }
    }
    Ok(Request::Observe { statements })
}

fn parse_recommend(value: &Json) -> Result<Request, WireError> {
    let budget = value
        .get("budget")
        .and_then(Json::as_num)
        .filter(|b| b.is_finite() && *b >= 0.0 && *b <= 9.0e15)
        .ok_or_else(|| {
            WireError::usage("recommend requires a numeric field `budget` (bytes, >= 0)")
        })? as u64;
    let algorithm = match value.get("algo") {
        None => SearchAlgorithm::TopDownFull,
        Some(a) => {
            let name = a
                .as_str()
                .ok_or_else(|| WireError::usage("`algo` must be a string"))?;
            SearchAlgorithm::ALL
                .iter()
                .copied()
                .find(|a| a.name() == name)
                .ok_or_else(|| {
                    let known: Vec<&str> = SearchAlgorithm::ALL.iter().map(|a| a.name()).collect();
                    WireError::usage(format!(
                        "unknown algorithm `{name}` (expected one of {})",
                        known.join(", ")
                    ))
                })?
        }
    };
    Ok(Request::Recommend { budget, algorithm })
}

/// Renders a recommendation for a reply. Wall-clock fields
/// (`advisor_time`) are deliberately excluded so replies are byte-stable
/// across runs and machines; everything included is a deterministic
/// function of the request stream.
pub fn render_recommendation(rec: &Recommendation) -> Json {
    let indexes = rec
        .indexes
        .iter()
        .map(|ix| {
            Json::Obj(vec![
                ("collection".into(), Json::Str(ix.collection.clone())),
                ("pattern".into(), Json::Str(ix.pattern.clone())),
                ("kind".into(), Json::Str(ix.kind.to_string())),
                ("size".into(), Json::Num(ix.size as f64)),
                ("general".into(), Json::Bool(ix.general)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("indexes".into(), Json::Arr(indexes)),
        ("ddl".into(), Json::Str(rec.ddl())),
        ("est_benefit".into(), Json::Num(rec.est_benefit)),
        ("baseline_cost".into(), Json::Num(rec.baseline_cost)),
        ("workload_cost".into(), Json::Num(rec.workload_cost)),
        ("speedup".into(), Json::Num(rec.speedup)),
        ("total_size".into(), Json::Num(rec.total_size as f64)),
        ("general_count".into(), Json::Num(rec.general_count as f64)),
        (
            "specific_count".into(),
            Json::Num(rec.specific_count as f64),
        ),
        (
            "candidates_basic".into(),
            Json::Num(rec.candidates_basic as f64),
        ),
        (
            "candidates_total".into(),
            Json::Num(rec.candidates_total as f64),
        ),
        (
            "quarantined".into(),
            Json::Num(rec.quarantined.len() as f64),
        ),
        ("degraded".into(), Json::Bool(rec.degraded)),
        (
            "cost_fallbacks".into(),
            Json::Num(rec.cost_fallbacks as f64),
        ),
        ("complete".into(), Json::Bool(rec.complete)),
    ];
    if let Some(stop) = &rec.stop {
        fields.push(("stop".into(), Json::Str(format!("{stop:?}"))));
    }
    if !rec.warnings.is_empty() {
        fields.push((
            "warnings".into(),
            Json::Arr(rec.warnings.iter().cloned().map(Json::Str).collect()),
        ));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_plain_verb() {
        for (verb, want) in [
            ("hello", Request::Hello),
            ("ping", Request::Ping),
            ("stats", Request::Stats),
            ("journal", Request::Journal),
            ("reset", Request::Reset),
            ("shutdown", Request::Shutdown),
        ] {
            let req = parse_request(&format!(r#"{{"verb":"{verb}"}}"#)).unwrap();
            assert_eq!(req, want);
        }
    }

    #[test]
    fn parses_observe_with_mixed_statement_shapes() {
        let req = parse_request(
            r#"{"verb":"observe","statements":["q1",{"text":"q2","freq":2.5},{"text":"q3"}]}"#,
        )
        .unwrap();
        let Request::Observe { statements } = req else {
            panic!("wrong verb");
        };
        assert_eq!(
            statements,
            vec![
                ("q1".to_string(), 1.0),
                ("q2".to_string(), 2.5),
                ("q3".to_string(), 1.0)
            ]
        );
    }

    #[test]
    fn parses_recommend_with_default_algorithm() {
        let req = parse_request(r#"{"verb":"recommend","budget":1048576}"#).unwrap();
        assert_eq!(
            req,
            Request::Recommend {
                budget: 1_048_576,
                algorithm: SearchAlgorithm::TopDownFull
            }
        );
        let req = parse_request(r#"{"verb":"recommend","budget":10,"algo":"heuristics"}"#).unwrap();
        assert_eq!(
            req,
            Request::Recommend {
                budget: 10,
                algorithm: SearchAlgorithm::GreedyHeuristics
            }
        );
    }

    #[test]
    fn malformed_json_is_an_input_error() {
        let e = parse_request("{not json").unwrap_err();
        assert_eq!(e.kind, "input");
        assert_eq!(e.code, 3);
        assert!(e.message.contains("malformed JSON"), "{}", e.message);
    }

    #[test]
    fn shape_errors_are_usage_errors() {
        for line in [
            "[1,2,3]",
            r#"{"verb":42}"#,
            r#"{"noverb":true}"#,
            r#"{"verb":"frobnicate"}"#,
            r#"{"verb":"observe"}"#,
            r#"{"verb":"observe","statements":[42]}"#,
            r#"{"verb":"observe","statements":[{"freq":1}]}"#,
            r#"{"verb":"recommend"}"#,
            r#"{"verb":"recommend","budget":"big"}"#,
            r#"{"verb":"recommend","budget":10,"algo":"quantum"}"#,
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.kind, "usage", "line: {line}");
            assert_eq!(e.code, 2, "line: {line}");
        }
    }

    #[test]
    fn hostile_numbers_are_rejected() {
        for line in [
            r#"{"verb":"recommend","budget":-1}"#,
            r#"{"verb":"recommend","budget":1e300}"#,
            r#"{"verb":"observe","statements":[{"text":"q","freq":-2}]}"#,
            r#"{"verb":"observe","statements":[{"text":"q","freq":1e999}]}"#,
        ] {
            assert!(parse_request(line).is_err(), "line: {line}");
        }
    }

    #[test]
    fn statement_cap_is_enforced() {
        let stmts: Vec<String> = (0..=MAX_STATEMENTS_PER_REQUEST)
            .map(|i| format!(r#""q{i}""#))
            .collect();
        let line = format!(r#"{{"verb":"observe","statements":[{}]}}"#, stmts.join(","));
        let e = parse_request(&line).unwrap_err();
        assert_eq!(e.kind, "input");
        assert!(e.message.contains("too many statements"), "{}", e.message);
    }

    #[test]
    fn error_replies_render_the_taxonomy() {
        let text = WireError::input("bad payload").render();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("input"));
        assert_eq!(err.get("code").unwrap().as_num(), Some(3.0));
        assert_eq!(err.get("message").unwrap().as_str(), Some("bad payload"));
    }

    #[test]
    fn xia_errors_map_like_cli_exit_codes() {
        assert_eq!(
            WireError::from_xia(&XiaError::EmptyWorkload).code,
            3,
            "input class"
        );
        assert_eq!(
            WireError::from_xia(&XiaError::Internal("bug".into())).code,
            5,
            "internal class"
        );
        let wrapped = XiaError::UnknownCollection("X".into()).context("while advising");
        let e = WireError::from_xia(&wrapped);
        assert_eq!(e.code, 3);
        assert!(e.message.contains("while advising"), "{}", e.message);
    }

    #[test]
    fn ok_reply_leads_with_ok_true() {
        let line = ok_reply(vec![("pong".into(), Json::Bool(true))]);
        assert_eq!(line, r#"{"ok":true,"pong":true}"#);
    }
}
