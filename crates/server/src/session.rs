//! Per-connection advisor sessions.
//!
//! Each client connection owns one [`ServerSession`]: an incremental
//! [`TuningSession`] (prepared candidates + warm benefit costs that
//! persist across requests), a [`DriftTracker`] over compressed-template
//! mass, and a private telemetry sink + decision journal. Nothing in a
//! session references another connection, so every reply, counter, and
//! journal event is a pure function of the session's own request stream —
//! which is what makes N concurrent sessions byte-identical to the same
//! requests replayed serially.
//!
//! **Drift-triggered re-advise.** Once a session has produced a
//! recommendation, every `observe` batch is folded into the drift
//! histogram; when total-variation drift against the last
//! recommendation's baseline crosses the configured threshold, the
//! session emits a `drift_detected` journal event and re-runs the
//! advisor *incrementally* (prepared candidates extend, warm costs
//! replay) with the same budget and algorithm as the last explicit
//! `recommend`. The baseline then resets, so one crossing triggers
//! exactly one re-advise.

use crate::protocol::{
    ok_reply, render_recommendation, WireError, MAX_LINE_BYTES, MAX_STATEMENTS_PER_REQUEST,
};
use xia_advisor::{AdvisorParams, DriftTracker, Recommendation, SearchAlgorithm, TuningSession};
use xia_fault::FaultInjector;
use xia_obs::json::Json;
use xia_obs::{Event, EventJournal, Telemetry};
use xia_storage::Database;

/// Knobs a [`ServerSession`] is created with (from the server config).
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Total-variation drift that triggers an incremental re-advise.
    pub drift_threshold: f64,
    /// Optimizer-call budget per advisor run (0 = unlimited).
    pub what_if_budget: u64,
    /// What-if worker threads (`None` = advisor default / `XIA_JOBS`).
    pub jobs: Option<usize>,
    /// Fault injector for this session (each session gets an independent
    /// stream so injection stays deterministic per connection).
    pub faults: FaultInjector,
}

impl Default for SessionOptions {
    fn default() -> Self {
        Self {
            drift_threshold: 0.25,
            what_if_budget: 0,
            jobs: None,
            faults: FaultInjector::off(),
        }
    }
}

/// One connection's warm advisor state. See the module docs.
pub struct ServerSession {
    tuning: TuningSession,
    drift: DriftTracker,
    params: AdvisorParams,
    drift_threshold: f64,
    /// Budget and algorithm of the last explicit `recommend`, reused by
    /// drift-triggered re-advises.
    last: Option<(u64, SearchAlgorithm)>,
    observed_total: u64,
    quarantined_total: u64,
    recommends: u64,
    readvises: u64,
}

impl ServerSession {
    /// Opens a session.
    pub fn new(opts: &SessionOptions) -> Self {
        let mut params = AdvisorParams {
            telemetry: Telemetry::new(),
            journal: EventJournal::new(),
            faults: opts.faults.clone(),
            ..AdvisorParams::default()
        };
        if opts.what_if_budget > 0 {
            params.what_if_budget = xia_advisor::WhatIfBudget::calls(opts.what_if_budget);
        }
        if let Some(jobs) = opts.jobs {
            params.jobs = jobs;
        }
        let mut tuning = TuningSession::new();
        tuning.set_params(params.clone());
        Self {
            tuning,
            drift: DriftTracker::new(),
            params,
            drift_threshold: opts.drift_threshold,
            last: None,
            observed_total: 0,
            quarantined_total: 0,
            recommends: 0,
            readvises: 0,
        }
    }

    /// Whether this session injects faults (the server re-canonicalizes
    /// shared database state after faulted requests).
    pub fn faults_enabled(&self) -> bool {
        self.params.faults.is_enabled()
    }

    /// Drift-triggered re-advises so far.
    pub fn readvises(&self) -> u64 {
        self.readvises
    }

    /// The `hello` reply: identity, protocol limits, verbs.
    pub fn hello_reply(&self) -> String {
        ok_reply(vec![
            ("server".into(), Json::Str("xia-server".into())),
            (
                "version".into(),
                Json::Str(env!("CARGO_PKG_VERSION").into()),
            ),
            ("protocol".into(), Json::Num(1.0)),
            ("max_line_bytes".into(), Json::Num(MAX_LINE_BYTES as f64)),
            (
                "max_statements_per_request".into(),
                Json::Num(MAX_STATEMENTS_PER_REQUEST as f64),
            ),
            (
                "verbs".into(),
                Json::Arr(
                    [
                        "hello",
                        "ping",
                        "observe",
                        "recommend",
                        "stats",
                        "journal",
                        "reset",
                        "shutdown",
                    ]
                    .iter()
                    .map(|v| Json::Str((*v).into()))
                    .collect(),
                ),
            ),
        ])
    }

    /// The `ping` reply.
    pub fn ping_reply(&self) -> String {
        ok_reply(vec![("pong".into(), Json::Bool(true))])
    }

    /// Handles `observe`: streams statements into the tuning session and
    /// the drift histogram (lenient — unparseable statements are counted
    /// and reported, not fatal), then re-advises incrementally if drift
    /// crossed the threshold since the last recommendation.
    pub fn observe(
        &mut self,
        db: &mut Database,
        statements: &[(String, f64)],
    ) -> Result<String, WireError> {
        let mut accepted = 0u64;
        let mut quarantined = 0u64;
        let mut diagnostics = Vec::new();
        for (i, (text, freq)) in statements.iter().enumerate() {
            match xia_xpath::parse_statement(text) {
                Ok(statement) => {
                    self.drift.observe(&statement, *freq);
                    match self.tuning.observe_with_freq(text, *freq) {
                        Ok(()) => accepted += 1,
                        Err(e) => {
                            quarantined += 1;
                            if diagnostics.len() < 8 {
                                diagnostics.push((i, e.to_string()));
                            }
                        }
                    }
                }
                Err(e) => {
                    quarantined += 1;
                    if diagnostics.len() < 8 {
                        diagnostics.push((i, e.to_string()));
                    }
                }
            }
        }
        self.observed_total += accepted;
        self.quarantined_total += quarantined;

        let drift = self.drift.drift();
        let mut fields = vec![
            ("observed".into(), Json::Num(accepted as f64)),
            ("quarantined".into(), Json::Num(quarantined as f64)),
            (
                "total_observed".into(),
                Json::Num(self.observed_total as f64),
            ),
            ("drift".into(), Json::Num(drift)),
            ("templates".into(), Json::Num(self.drift.templates() as f64)),
        ];
        if !diagnostics.is_empty() {
            fields.push((
                "errors".into(),
                Json::Arr(
                    diagnostics
                        .into_iter()
                        .map(|(i, m)| {
                            Json::Obj(vec![
                                ("index".into(), Json::Num(i as f64)),
                                ("message".into(), Json::Str(m)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }

        // Re-advise only when a previous recommendation exists to go
        // stale: drift before the first `recommend` is just warm-up.
        let crossed = self.last.is_some() && drift > self.drift_threshold;
        fields.push(("readvised".into(), Json::Bool(crossed)));
        if crossed {
            let (budget, algorithm) = self.last.unwrap_or((0, SearchAlgorithm::TopDownFull));
            let templates = self.drift.templates() as u64;
            let threshold = self.drift_threshold;
            self.params.journal.emit(|| Event::DriftDetected {
                drift,
                threshold,
                templates,
            });
            match self.recommend_inner(db, budget, algorithm) {
                Ok(rec) => {
                    self.readvises += 1;
                    fields.push(("recommendation".into(), render_recommendation(&rec)));
                }
                Err(e) => {
                    // The observations were accepted; a failed re-advise
                    // is reported inside the ok reply, not as a wire
                    // error.
                    let we = WireError::from_xia(&e);
                    fields.push((
                        "readvise_error".into(),
                        Json::Obj(vec![
                            ("kind".into(), Json::Str(we.kind.into())),
                            ("code".into(), Json::Num(we.code as f64)),
                            ("message".into(), Json::Str(we.message)),
                        ]),
                    ));
                }
            }
        }
        Ok(ok_reply(fields))
    }

    /// Handles `recommend`.
    pub fn recommend_reply(
        &mut self,
        db: &mut Database,
        budget: u64,
        algorithm: SearchAlgorithm,
    ) -> Result<String, WireError> {
        let rec = self
            .recommend_inner(db, budget, algorithm)
            .map_err(|e| WireError::from_xia(&e))?;
        Ok(ok_reply(vec![
            ("recommendation".into(), render_recommendation(&rec)),
            (
                "warm_costings".into(),
                Json::Num(self.tuning.warm_costings() as f64),
            ),
        ]))
    }

    /// Runs the advisor over the accumulated workload, then rebaselines
    /// drift and memorizes the request shape for future re-advises.
    fn recommend_inner(
        &mut self,
        db: &mut Database,
        budget: u64,
        algorithm: SearchAlgorithm,
    ) -> Result<Recommendation, xia_advisor::XiaError> {
        let rec = self.tuning.recommend(db, budget, algorithm)?;
        self.drift.rebaseline();
        self.last = Some((budget, algorithm));
        self.recommends += 1;
        Ok(rec)
    }

    /// The session half of a `stats` reply: observation totals, drift
    /// state, warm-cache occupancy, and the full telemetry counter set.
    /// Every field is a deterministic function of this session's own
    /// request stream.
    pub fn stats_json(&self) -> Json {
        let counters = self
            .params
            .telemetry
            .counters()
            .into_iter()
            .map(|(name, v)| (name.to_string(), Json::Num(v as f64)))
            .collect();
        Json::Obj(vec![
            ("observed".into(), Json::Num(self.observed_total as f64)),
            (
                "quarantined".into(),
                Json::Num(self.quarantined_total as f64),
            ),
            (
                "distinct_statements".into(),
                Json::Num(self.tuning.workload().len() as f64),
            ),
            (
                "warm_costings".into(),
                Json::Num(self.tuning.warm_costings() as f64),
            ),
            ("drift".into(), Json::Num(self.drift.drift())),
            ("templates".into(), Json::Num(self.drift.templates() as f64)),
            ("recommends".into(), Json::Num(self.recommends as f64)),
            ("readvises".into(), Json::Num(self.readvises as f64)),
            (
                "journal_events".into(),
                Json::Num(self.params.journal.len() as f64),
            ),
            ("counters".into(), Json::Obj(counters)),
        ])
    }

    /// Handles `journal`: the session's decision-provenance journal as
    /// JSONL (same format `xia recommend --journal` writes).
    pub fn journal_reply(&self) -> String {
        ok_reply(vec![
            ("events".into(), Json::Num(self.params.journal.len() as f64)),
            (
                "dropped".into(),
                Json::Num(self.params.journal.dropped() as f64),
            ),
            ("jsonl".into(), Json::Str(self.params.journal.to_jsonl())),
        ])
    }

    /// Handles `reset`: discards all session state (workload, prepared
    /// candidates, warm costs, drift baseline, telemetry, journal).
    pub fn reset_reply(&mut self) -> String {
        self.params.telemetry.reset();
        self.params.journal.reset();
        let mut tuning = TuningSession::new();
        tuning.set_params(self.params.clone());
        self.tuning = tuning;
        self.drift = DriftTracker::new();
        self.last = None;
        self.observed_total = 0;
        self.quarantined_total = 0;
        self.recommends = 0;
        self.readvises = 0;
        ok_reply(vec![("reset".into(), Json::Bool(true))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_workloads::tpox::{self, TpoxConfig};

    fn db() -> Database {
        let mut db = Database::new();
        tpox::generate(&mut db, &TpoxConfig::tiny());
        db
    }

    fn observe_lines(s: &mut ServerSession, db: &mut Database, texts: &[&str]) -> Json {
        let stmts: Vec<(String, f64)> = texts.iter().map(|t| (t.to_string(), 1.0)).collect();
        let reply = s.observe(db, &stmts).unwrap();
        Json::parse(&reply).unwrap()
    }

    const Q_SYMBOL: &str = r#"collection('SDOC')/Security[Symbol = "SYM00001"]"#;
    const Q_YIELD: &str = r#"collection('SDOC')/Security[Yield > 4.5]"#;

    #[test]
    fn observe_then_recommend_round_trip() {
        let mut db = db();
        let mut s = ServerSession::new(&SessionOptions::default());
        let v = observe_lines(&mut s, &mut db, &[Q_SYMBOL]);
        assert_eq!(v.get("observed").unwrap().as_num(), Some(1.0));
        assert_eq!(v.get("readvised"), Some(&Json::Bool(false)));
        let reply = s
            .recommend_reply(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        let v = Json::parse(&reply).unwrap();
        let rec = v.get("recommendation").unwrap();
        assert!(!rec.get("indexes").unwrap().as_arr().unwrap().is_empty());
        assert!(rec
            .get("ddl")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("CREATE INDEX"));
        // Wall-clock fields must not leak into replies.
        assert!(rec.get("advisor_time").is_none());
    }

    #[test]
    fn unparseable_statements_quarantine_leniently() {
        let mut db = db();
        let mut s = ServerSession::new(&SessionOptions::default());
        let v = observe_lines(&mut s, &mut db, &[Q_SYMBOL, "NOT A STATEMENT ((("]);
        assert_eq!(v.get("observed").unwrap().as_num(), Some(1.0));
        assert_eq!(v.get("quarantined").unwrap().as_num(), Some(1.0));
        assert!(!v.get("errors").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn drift_crossing_readvises_exactly_once() {
        let mut db = db();
        let mut s = ServerSession::new(&SessionOptions {
            drift_threshold: 0.3,
            ..SessionOptions::default()
        });
        observe_lines(&mut s, &mut db, &[Q_SYMBOL]);
        s.recommend_reply(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        assert_eq!(s.readvises(), 0);
        // Shift all new mass onto a different template: drift crosses the
        // threshold on this batch.
        let v = observe_lines(&mut s, &mut db, &[Q_YIELD, Q_YIELD, Q_YIELD]);
        assert_eq!(v.get("readvised"), Some(&Json::Bool(true)));
        assert!(v.get("recommendation").is_some());
        assert_eq!(s.readvises(), 1);
        // The baseline reset: the same mix again does not re-trigger.
        let v = observe_lines(&mut s, &mut db, &[Q_YIELD]);
        assert_eq!(v.get("readvised"), Some(&Json::Bool(false)));
        assert_eq!(s.readvises(), 1);
        // Exactly one drift_detected event in the journal.
        let journal = s.params.journal.to_jsonl();
        assert_eq!(
            journal.matches("\"drift_detected\"").count(),
            1,
            "journal:\n{journal}"
        );
    }

    #[test]
    fn no_readvise_before_first_recommend() {
        let mut db = db();
        let mut s = ServerSession::new(&SessionOptions {
            drift_threshold: 0.01,
            ..SessionOptions::default()
        });
        let v = observe_lines(&mut s, &mut db, &[Q_SYMBOL, Q_YIELD]);
        assert_eq!(v.get("readvised"), Some(&Json::Bool(false)));
        assert_eq!(s.readvises(), 0);
    }

    #[test]
    fn repeat_recommend_is_byte_identical_and_warm() {
        let mut db = db();
        let mut s = ServerSession::new(&SessionOptions::default());
        observe_lines(&mut s, &mut db, &[Q_SYMBOL, Q_YIELD]);
        let r1 = s
            .recommend_reply(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        let r2 = s
            .recommend_reply(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        assert_eq!(r1, r2, "warm replay must reproduce the reply bytes");
        let v = Json::parse(&r2).unwrap();
        assert!(v.get("warm_costings").unwrap().as_num().unwrap() > 0.0);
    }

    #[test]
    fn reset_returns_the_session_to_cold() {
        let mut db = db();
        let mut s = ServerSession::new(&SessionOptions::default());
        observe_lines(&mut s, &mut db, &[Q_SYMBOL]);
        s.recommend_reply(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        s.reset_reply();
        let v = s.stats_json();
        assert_eq!(v.get("observed").unwrap().as_num(), Some(0.0));
        assert_eq!(v.get("recommends").unwrap().as_num(), Some(0.0));
        assert_eq!(v.get("journal_events").unwrap().as_num(), Some(0.0));
        let e = s
            .recommend_reply(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap_err();
        assert_eq!(e.code, 3, "empty workload after reset is an input error");
    }

    #[test]
    fn stats_reply_is_a_pure_function_of_the_request_stream() {
        let mut db1 = db();
        let mut db2 = db();
        let mut s1 = ServerSession::new(&SessionOptions::default());
        let mut s2 = ServerSession::new(&SessionOptions::default());
        for s_db in [(&mut s1, &mut db1), (&mut s2, &mut db2)] {
            observe_lines(s_db.0, s_db.1, &[Q_SYMBOL, Q_YIELD]);
            s_db.0
                .recommend_reply(s_db.1, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
                .unwrap();
        }
        assert_eq!(s1.stats_json().render(), s2.stats_json().render());
        assert_eq!(s1.journal_reply(), s2.journal_reply());
    }
}
