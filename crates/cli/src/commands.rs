//! Command implementations. Each returns the text to print.

use crate::workload_file::parse_workload;
use crate::CliError;
use std::fmt::Write as _;
use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_optimizer::{execute_query, Optimizer};
use xia_storage::{load_database, save_database, Database};
use xia_xpath::parse_statement;

fn require<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, CliError> {
    args.get(i)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::usage(format!("missing {what}\n\n{}", crate::USAGE)))
}

fn open(db_path: Option<&str>) -> Result<(String, Database), CliError> {
    let path = db_path.ok_or_else(|| CliError::usage("missing <db> argument"))?;
    let db = load_database(path).map_err(|e| {
        let inner: CliError = e.into();
        CliError::with_kind(format!("cannot open {path}: {inner}"), inner.kind)
    })?;
    Ok((path.to_string(), db))
}

/// Lenient open for the advisor path: a corrupt record skips that document
/// (reported in the returned [`xia_storage::LoadReport`]) instead of
/// failing the whole run.
fn open_lenient(
    db_path: Option<&str>,
    faults: &xia_fault::FaultInjector,
) -> Result<(String, Database, xia_storage::LoadReport), CliError> {
    let path = db_path.ok_or_else(|| CliError::usage("missing <db> argument"))?;
    let (db, report) = xia_storage::load_database_lenient_faulted(path, faults).map_err(|e| {
        let inner: CliError = e.into();
        CliError::with_kind(format!("cannot open {path}: {inner}"), inner.kind)
    })?;
    Ok((path.to_string(), db, report))
}

/// `xia init <db>`
pub fn init(db_path: Option<&str>) -> Result<String, CliError> {
    let path = db_path.ok_or_else(|| CliError::new("missing <db> argument"))?;
    if std::path::Path::new(path).exists() {
        return Err(CliError::new(format!("{path} already exists")));
    }
    let db = Database::new();
    save_database(&db, path)?;
    Ok(format!("created empty database {path}\n"))
}

/// `xia load <db> <collection> <file...> [--jobs <n>] [--no-stream]`
pub fn load(args: &[String]) -> Result<String, CliError> {
    let (path, mut db) = open(args.first().map(|s| s.as_str()))?;
    let collection = require(args, 1, "<collection>")?.to_string();
    let mut files: Vec<&str> = Vec::new();
    let mut opts = xia_storage::IngestOptions::default();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "-j" | "--jobs" => {
                let v = require(args, i + 1, "worker count after --jobs")?;
                opts.jobs = v.parse().map_err(|_| {
                    CliError::usage(format!("bad job count `{v}` (expected a number; 0 = auto)"))
                })?;
                i += 2;
            }
            "--no-stream" => {
                opts.use_dom = true;
                i += 1;
            }
            other if other.starts_with('-') => {
                return Err(CliError::usage(format!("unknown load flag `{other}`")));
            }
            file => {
                files.push(file);
                i += 1;
            }
        }
    }
    if files.is_empty() {
        return Err(CliError::new("no XML files given"));
    }
    let mut texts = Vec::with_capacity(files.len());
    for file in &files {
        texts.push(
            std::fs::read_to_string(file)
                .map_err(|e| CliError::new(format!("cannot read {file}: {e}")))?,
        );
    }
    // All-or-nothing batch: on a parse error nothing is inserted and the
    // failing *file* is named, not just its batch index.
    let coll = db.create_collection(&collection);
    let report = xia_storage::ingest_batch(coll, &texts, opts)
        .map_err(|e| CliError::new(format!("{}: {}", files[e.index], e.error)))?;
    db.runstats_all();
    save_database(&db, &path)?;
    Ok(format!(
        "loaded {} document(s) ({} nodes) into {collection} with {} worker(s); {path} saved\n",
        report.doc_ids.len(),
        report.nodes,
        report.workers,
    ))
}

/// `xia stats <db>`
pub fn stats(db_path: Option<&str>) -> Result<String, CliError> {
    let (_, mut db) = open(db_path)?;
    db.runstats_all();
    let mut out = String::new();
    for name in db.collection_names().iter().map(|s| s.to_string()) {
        let coll = db.collection(&name).expect("listed collection");
        let Some(stats) = db.stats_cached(&name) else {
            let _ = writeln!(out, "collection {name}: statistics unavailable");
            continue;
        };
        let _ = writeln!(
            out,
            "collection {name}: {} docs, {} nodes, {} distinct paths, {:.1} KiB of values",
            stats.doc_count,
            stats.node_count,
            coll.vocab().paths.len(),
            stats.value_bytes as f64 / 1024.0
        );
        // Top paths by node count.
        let mut paths: Vec<_> = coll.vocab().paths.iter().map(|(id, _)| id).collect();
        paths.sort_by_key(|&id| std::cmp::Reverse(stats.path(id).node_count));
        for &id in paths.iter().take(8) {
            let ps = stats.path(id);
            let _ = writeln!(
                out,
                "  {:<50} nodes={:<7} distinct={:<6}",
                coll.vocab().path_string(id),
                ps.node_count,
                ps.distinct_values
            );
        }
    }
    if out.is_empty() {
        out.push_str("database is empty\n");
    }
    Ok(out)
}

/// First line of a statement, for one-line trace rows.
fn first_line(text: &str) -> &str {
    text.lines().next().unwrap_or("").trim()
}

/// Builds the trace report for a finished advisor run: a snapshot of the
/// telemetry sink plus per-statement what-if costs. The snapshot is taken
/// *before* [`xia_advisor::TuningReport::build`] so its extra optimizer
/// calls do not pollute the counters being reported.
fn trace_report(
    db: &mut Database,
    workload: &xia_workloads::Workload,
    set: &xia_advisor::CandidateSet,
    rec: &xia_advisor::Recommendation,
    telemetry: &xia_obs::Telemetry,
    journal: &xia_obs::EventJournal,
) -> xia_obs::TraceReport {
    let mut tr = telemetry.report();
    tr.dropped_events = journal.dropped();
    let full = xia_advisor::TuningReport::build(db, workload, set, rec);
    for s in &full.statements {
        tr.push_statement(first_line(&s.text), s.cost_before, s.cost_after);
    }
    tr
}

/// `xia explain <db> <statement>` (plan mode) or
/// `xia explain <db> -w <workload> -b <budget> [-a <algo>]` (advisor mode).
pub fn explain(args: &[String]) -> Result<String, CliError> {
    if args.len() >= 2 && args[1].starts_with('-') {
        return explain_advisor(args);
    }
    let (_, mut db) = open(args.first().map(|s| s.as_str()))?;
    let text = require(args, 1, "<statement>")?;
    let stmt = parse_statement(text).map_err(CliError::new)?;
    db.runstats_all();
    let coll = stmt.collection().to_string();
    let (collection, catalog, stats) = db
        .parts(&coll)
        .ok_or_else(|| CliError::new(format!("no collection named {coll}")))?;
    let optimizer = Optimizer::new(collection, stats, catalog);
    let plan = optimizer.optimize(&stmt);
    let mut out = String::new();
    let _ = writeln!(out, "{}", xia_optimizer::plan::render_plan(&plan, catalog));
    let candidates = optimizer.enumerate_indexes(&stmt);
    if !candidates.is_empty() {
        let _ = writeln!(out, "indexable patterns:");
        for c in candidates {
            let _ = writeln!(out, "  {} [{}]", c.pattern, c.kind);
        }
    }
    Ok(out)
}

/// Advisor-mode explain: run the full pipeline and print a structured
/// breakdown — phase timings, what-if call accounting, and per-statement
/// cost deltas — instead of a single statement's plan. `--why <pattern>`
/// additionally replays the decision journal and prints the derivation
/// chain (generation → prunes → benefit deltas → final decision) for the
/// given index pattern, recursing to the basics it generalizes.
fn explain_advisor(args: &[String]) -> Result<String, CliError> {
    let (_, mut db) = open(args.first().map(|s| s.as_str()))?;
    let mut workload_file = None;
    let mut budget: Option<u64> = None;
    let mut algo = SearchAlgorithm::TopDownFull;
    let mut jobs: Option<usize> = None;
    let mut prune = true;
    let mut fastpath = true;
    let mut compress = true;
    let mut why: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-w" | "--workload" => {
                workload_file = Some(require(args, i + 1, "workload file after -w")?.to_string());
                i += 2;
            }
            "-b" | "--budget" => {
                let v = require(args, i + 1, "budget after -b")?;
                budget =
                    Some(parse_size(v).ok_or_else(|| CliError::new(format!("bad budget `{v}`")))?);
                i += 2;
            }
            "-a" | "--algo" => {
                algo = parse_algo(require(args, i + 1, "algorithm after -a")?)?;
                i += 2;
            }
            "-j" | "--jobs" => {
                let v = require(args, i + 1, "worker count after --jobs")?;
                jobs = Some(v.parse().map_err(|_| {
                    CliError::usage(format!("bad job count `{v}` (expected a number; 0 = auto)"))
                })?);
                i += 2;
            }
            "--no-prune" => {
                prune = false;
                i += 1;
            }
            "--no-fastpath" => {
                fastpath = false;
                i += 1;
            }
            "--compress" => {
                compress = true;
                i += 1;
            }
            "--no-compress" => {
                compress = false;
                i += 1;
            }
            "--why" => {
                why.push(require(args, i + 1, "index pattern after --why")?.to_string());
                i += 2;
            }
            other => return Err(CliError::usage(format!("unknown flag `{other}`"))),
        }
    }
    let workload_file =
        workload_file.ok_or_else(|| CliError::usage("missing -w <workload-file>"))?;
    let budget = budget.ok_or_else(|| CliError::usage("missing -b <budget>"))?;
    let text = std::fs::read_to_string(&workload_file)
        .map_err(|e| CliError::new(format!("cannot read {workload_file}: {e}")))?;
    let workload = parse_workload(&text).map_err(CliError::new)?;
    if workload.is_empty() {
        return Err(CliError::new("workload file contains no statements"));
    }

    let mut params = AdvisorParams {
        prune,
        fastpath,
        ..AdvisorParams::default()
    };
    if let Some(jobs) = jobs {
        params.jobs = jobs;
    }
    if !why.is_empty() {
        params.journal = xia_obs::EventJournal::new();
    }
    // CoPhy compression happens before candidate enumeration, exactly as
    // in `Advisor::recommend`, so the explained run is the real run.
    let workload = if algo == SearchAlgorithm::Cophy && compress {
        xia_advisor::compress_workload(&workload, &params.telemetry, &params.journal).workload
    } else {
        workload
    };
    let set = Advisor::prepare(&mut db, &workload, &params);
    let rec = Advisor::recommend_prepared(&mut db, &workload, &set, budget, algo, &params)?;
    let tr = trace_report(
        &mut db,
        &workload,
        &set,
        &rec,
        &params.telemetry,
        &params.journal,
    );

    let mut out = String::new();
    let _ = writeln!(
        out,
        "advisor run: {} statements, {} candidates ({} basic), algorithm {}",
        workload.len(),
        rec.candidates_total,
        rec.candidates_basic,
        algo.name()
    );
    let _ = writeln!(
        out,
        "recommended {} index(es), {} bytes, estimated speedup {:.2}x, {:.1} ms",
        rec.indexes.len(),
        rec.total_size,
        rec.speedup,
        rec.advisor_time.as_secs_f64() * 1e3
    );
    out.push_str(&tr.to_text());
    if !why.is_empty() {
        let events = params.journal.events();
        // If the journal ring dropped events, any derivation chain below
        // may be missing links — say so up front.
        if let Some(note) = xia_obs::provenance::incompleteness_note(params.journal.dropped()) {
            let _ = writeln!(out, "{note}");
        }
        for pattern in &why {
            let _ = writeln!(out, "--- why {pattern} ---");
            out.push_str(&xia_obs::provenance::explain_why(&events, pattern));
        }
    }
    Ok(out)
}

/// `xia exec <db> <statement>`
pub fn exec(args: &[String]) -> Result<String, CliError> {
    let (path, mut db) = open(args.first().map(|s| s.as_str()))?;
    let text = require(args, 1, "<statement>")?;
    let stmt = parse_statement(text).map_err(CliError::new)?;
    db.runstats_all();
    let coll = stmt.collection().to_string();
    let mut out = String::new();
    if stmt.is_modification() {
        match &stmt {
            xia_xpath::Statement::Insert { xml, .. } => {
                let xml = xml.clone();
                db.create_collection(&coll);
                let (collection, catalog) = db
                    .collection_and_catalog_mut(&coll)
                    .expect("collection just created");
                xia_optimizer::exec::apply_insert(&xml, collection, catalog)
                    .map_err(CliError::new)?;
                let _ = writeln!(out, "1 document inserted");
            }
            xia_xpath::Statement::Delete { .. } => {
                let (collection, catalog) = db
                    .collection_and_catalog_mut(&coll)
                    .ok_or_else(|| CliError::new(format!("no collection named {coll}")))?;
                let victims = xia_optimizer::exec::apply_delete(&stmt, collection, catalog)
                    .map_err(CliError::new)?;
                let _ = writeln!(out, "{} document(s) deleted", victims.len());
            }
            xia_xpath::Statement::Update { .. } => {
                let (collection, catalog) = db
                    .collection_and_catalog_mut(&coll)
                    .ok_or_else(|| CliError::new(format!("no collection named {coll}")))?;
                let updated = xia_optimizer::exec::apply_update(&stmt, collection, catalog)
                    .map_err(CliError::new)?;
                let _ = writeln!(out, "{updated} node(s) updated");
            }
            xia_xpath::Statement::Query(_) => unreachable!("is_modification checked"),
        }
        db.runstats_all();
        save_database(&db, &path)?;
        return Ok(out);
    }
    let (collection, catalog, stats) = db
        .parts(&coll)
        .ok_or_else(|| CliError::new(format!("no collection named {coll}")))?;
    let optimizer = Optimizer::new(collection, stats, catalog);
    let plan = optimizer.optimize(&stmt);
    let result = execute_query(&stmt, &plan, collection, catalog).map_err(CliError::new)?;
    let _ = writeln!(
        out,
        "{} document(s) matched, {} item(s); plan: {plan}",
        result.docs_matched, result.items
    );
    // Show a result sample.
    let items = xia_optimizer::execute_query_items(&stmt, &plan, collection, catalog)
        .map_err(CliError::new)?;
    const SAMPLE: usize = 5;
    for item in items.iter().take(SAMPLE) {
        let _ = writeln!(out, "  {item}");
    }
    if items.len() > SAMPLE {
        let _ = writeln!(out, "  ... {} more", items.len() - SAMPLE);
    }
    Ok(out)
}

fn parse_algo(s: &str) -> Result<SearchAlgorithm, CliError> {
    SearchAlgorithm::ALL
        .into_iter()
        .find(|a| a.name() == s)
        .ok_or_else(|| {
            CliError::new(format!(
                "unknown algorithm `{s}` (expected one of: greedy, heuristics, topdown-lite, topdown-full, dp, cophy)"
            ))
        })
}

/// How `--trace` output should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Text,
    Json,
}

/// `xia recommend <db> -w <file> -b <bytes> [-a <algo>] [--apply]
/// [--report] [--trace[=json|text]] [--strict] [--journal <path>]
/// [--what-if-budget <calls>] [--jobs <n>] [--no-prune] [--no-fastpath]
/// [--compress] [--no-compress] [--inject <site>:<rate>]
/// [--fault-seed <n>] [--deadline-ms <n>] [--checkpoint <path>]
/// [--resume <path>] [--mem-budget <bytes>] [--cancel-after-polls <k>]`
pub fn recommend(args: &[String]) -> Result<crate::CmdOutput, CliError> {
    let mut workload_file = None;
    let mut budget: Option<u64> = None;
    let mut algo = SearchAlgorithm::TopDownFull;
    let mut apply = false;
    let mut report = false;
    let mut strict = false;
    let mut what_if_calls: u64 = 0;
    let mut jobs: Option<usize> = None;
    let mut prune = true;
    let mut fastpath = true;
    let mut compress = true;
    let mut fault_seed: u64 = 0;
    let mut inject_specs: Vec<String> = Vec::new();
    let mut trace: Option<TraceFormat> = None;
    let mut journal_path: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut mem_budget: Option<u64> = None;
    let mut cancel_after_polls: Option<u64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-w" | "--workload" => {
                workload_file = Some(require(args, i + 1, "workload file after -w")?.to_string());
                i += 2;
            }
            "-b" | "--budget" => {
                let v = require(args, i + 1, "budget after -b")?;
                budget = Some(
                    parse_size(v).ok_or_else(|| CliError::usage(format!("bad budget `{v}`")))?,
                );
                i += 2;
            }
            "-a" | "--algo" => {
                algo = parse_algo(require(args, i + 1, "algorithm after -a")?)?;
                i += 2;
            }
            "--apply" => {
                apply = true;
                i += 1;
            }
            "--report" => {
                report = true;
                i += 1;
            }
            "--strict" => {
                strict = true;
                i += 1;
            }
            "--what-if-budget" => {
                let v = require(args, i + 1, "call count after --what-if-budget")?;
                what_if_calls = v.parse().map_err(|_| {
                    CliError::usage(format!("bad what-if budget `{v}` (expected a call count)"))
                })?;
                i += 2;
            }
            "-j" | "--jobs" => {
                let v = require(args, i + 1, "worker count after --jobs")?;
                jobs = Some(v.parse().map_err(|_| {
                    CliError::usage(format!("bad job count `{v}` (expected a number; 0 = auto)"))
                })?);
                i += 2;
            }
            "--no-prune" => {
                prune = false;
                i += 1;
            }
            "--no-fastpath" => {
                fastpath = false;
                i += 1;
            }
            "--compress" => {
                compress = true;
                i += 1;
            }
            "--no-compress" => {
                compress = false;
                i += 1;
            }
            "--inject" => {
                inject_specs.push(require(args, i + 1, "spec after --inject")?.to_string());
                i += 2;
            }
            "--fault-seed" => {
                let v = require(args, i + 1, "seed after --fault-seed")?;
                fault_seed = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad fault seed `{v}`")))?;
                i += 2;
            }
            "--journal" => {
                journal_path =
                    Some(require(args, i + 1, "output path after --journal")?.to_string());
                i += 2;
            }
            "--deadline-ms" => {
                let v = require(args, i + 1, "milliseconds after --deadline-ms")?;
                deadline_ms = Some(v.parse().map_err(|_| {
                    CliError::usage(format!("bad deadline `{v}` (expected milliseconds)"))
                })?);
                i += 2;
            }
            "--checkpoint" => {
                checkpoint_path =
                    Some(require(args, i + 1, "output path after --checkpoint")?.to_string());
                i += 2;
            }
            "--resume" => {
                resume_path =
                    Some(require(args, i + 1, "checkpoint path after --resume")?.to_string());
                i += 2;
            }
            "--mem-budget" => {
                let v = require(args, i + 1, "size after --mem-budget")?;
                mem_budget = Some(
                    parse_size(v)
                        .ok_or_else(|| CliError::usage(format!("bad memory budget `{v}`")))?,
                );
                i += 2;
            }
            "--cancel-after-polls" => {
                let v = require(args, i + 1, "poll count after --cancel-after-polls")?;
                cancel_after_polls = Some(v.parse().map_err(|_| {
                    CliError::usage(format!("bad poll count `{v}` (expected a number)"))
                })?);
                i += 2;
            }
            other if other == "--trace" || other.starts_with("--trace=") => {
                trace = Some(match other.strip_prefix("--trace=") {
                    None | Some("text") => TraceFormat::Text,
                    Some("json") => TraceFormat::Json,
                    Some(bad) => {
                        return Err(CliError::usage(format!(
                            "bad trace format `{bad}` (expected json or text)"
                        )))
                    }
                });
                i += 1;
            }
            other => return Err(CliError::usage(format!("unknown flag `{other}`"))),
        }
    }
    let workload_file =
        workload_file.ok_or_else(|| CliError::usage("missing -w <workload-file>"))?;
    let budget = budget.ok_or_else(|| CliError::usage("missing -b <budget>"))?;

    let mut faults = xia_fault::FaultInjector::off();
    if !inject_specs.is_empty() {
        let mut f = xia_fault::FaultInjector::seeded(fault_seed);
        for spec in &inject_specs {
            f = f.with_spec(spec).map_err(CliError::usage)?;
        }
        faults = f;
    }

    let (path, mut db, load_report) = open_lenient(args.first().map(|s| s.as_str()), &faults)?;
    let mut out = String::new();
    if !load_report.is_clean() {
        for d in &load_report.diagnostics {
            let _ = writeln!(out, "warning: {path}: {d}");
        }
        let _ = writeln!(
            out,
            "warning: {path}: loaded {} document(s), skipped {} (degraded database)",
            load_report.docs_loaded, load_report.docs_skipped
        );
    }

    let text = std::fs::read_to_string(&workload_file)
        .map_err(|e| CliError::new(format!("cannot read {workload_file}: {e}")))?;
    // Lenient workload parse: malformed statements are quarantined with a
    // diagnostic instead of rejecting the whole file.
    let mut workload = xia_workloads::Workload::new();
    let mut parse_quarantined = 0usize;
    for (freq, stmt) in crate::workload_file::split_statements(&text) {
        if let Some(e) = workload.try_push_with_freq(&stmt, freq) {
            parse_quarantined += 1;
            let _ = writeln!(
                out,
                "warning: statement quarantined (parse): {e}: {}",
                first_line(&stmt)
            );
        }
    }
    if workload.is_empty() {
        if parse_quarantined > 0 {
            return Err(CliError::new(format!(
                "all {parse_quarantined} statement(s) in {workload_file} failed to parse"
            )));
        }
        return Err(CliError::new("workload file contains no statements"));
    }
    if strict && parse_quarantined > 0 {
        return Err(CliError::internal(format!(
            "strict mode: {parse_quarantined} statement(s) quarantined at parse stage"
        )));
    }

    // Lifecycle controller: enabled only when one of the lifecycle flags
    // is present, so the plain path keeps a single-branch off() handle.
    let lifecycle = deadline_ms.is_some()
        || checkpoint_path.is_some()
        || resume_path.is_some()
        || mem_budget.is_some()
        || cancel_after_polls.is_some();
    let mut ctl = xia_advisor::RunController::off();
    if lifecycle {
        let mut c = xia_advisor::RunController::new();
        if let Some(ms) = deadline_ms {
            c = c.with_deadline_ms(ms);
        }
        if let Some(k) = cancel_after_polls {
            c = c.with_cancel_after_polls(k);
        }
        if let Some(p) = &checkpoint_path {
            c = c.with_checkpoint(p, 1);
        }
        if let Some(b) = mem_budget {
            c = c.with_mem_budget(b);
        }
        ctl = c;
    }

    let mut params = AdvisorParams {
        faults,
        what_if_budget: xia_advisor::WhatIfBudget::calls(what_if_calls),
        strict,
        prune,
        fastpath,
        ctl,
        ..AdvisorParams::default()
    };
    if let Some(jobs) = jobs {
        params.jobs = jobs;
    }
    if journal_path.is_some() {
        params.journal = xia_obs::EventJournal::new();
    }
    // CoPhy-style workload compression (cophy only, on by default): advise
    // over weighted cost-identity templates instead of raw statements.
    // Coordinator-side and deterministic in the workload alone, so the
    // output stays byte-identical across --jobs values; --no-compress
    // reproduces the uncompressed run bitwise.
    let workload = if algo == SearchAlgorithm::Cophy && compress {
        let compressed =
            xia_advisor::compress_workload(&workload, &params.telemetry, &params.journal);
        let _ = writeln!(
            out,
            "workload compressed: {} statement(s) -> {} weighted template(s)",
            compressed.original_statements,
            compressed.workload.len()
        );
        compressed.workload
    } else {
        workload
    };
    let set = Advisor::prepare(&mut db, &workload, &params);
    // Resume: load the warm store once the candidate set (and hence the
    // digest the checkpoint must match) is known. A stale or corrupt
    // checkpoint degrades to a cold start with a warning — never an error.
    if let Some(rpath) = &resume_path {
        match xia_advisor::load_checkpoint(
            rpath,
            xia_advisor::candidate_digest(&set),
            &params.faults,
        ) {
            Ok(entries) => {
                params.ctl.install_warm(entries);
                let _ = writeln!(out, "resumed from checkpoint {rpath}");
            }
            Err(e) => {
                let _ = writeln!(
                    out,
                    "warning: cannot resume from {rpath}: {e}; starting cold"
                );
            }
        }
    }
    let rec = Advisor::recommend_prepared(&mut db, &workload, &set, budget, algo, &params)?;
    // Write the journal before any follow-up optimizer work; all events
    // are coordinator-side, so the file is byte-identical for every
    // --jobs value.
    if let Some(jpath) = &journal_path {
        std::fs::write(jpath, params.journal.to_jsonl())
            .map_err(|e| CliError::new(format!("cannot write {jpath}: {e}")))?;
        let _ = writeln!(
            out,
            "journal: {} event(s) written to {jpath}",
            params.journal.len()
        );
    }
    // Snapshot the trace before any follow-up optimizer work (the tuning
    // report re-costs the workload) can inflate the counters.
    let traced = trace.map(|fmt| {
        (
            fmt,
            trace_report(
                &mut db,
                &workload,
                &set,
                &rec,
                &params.telemetry,
                &params.journal,
            ),
        )
    });

    for q in &rec.quarantined {
        let _ = writeln!(out, "warning: {q}");
    }
    for w in &rec.warnings {
        let _ = writeln!(out, "warning: {w}");
    }
    if let Some(p) = rec.partial() {
        let _ = writeln!(
            out,
            "warning: run stopped early ({}); the recommendation below is the best \
             configuration found so far, not necessarily the final answer",
            p.reason
        );
    }
    if rec.degraded {
        let _ = writeln!(
            out,
            "warning: degraded recommendation ({} statement(s) quarantined, {} heuristic cost fallback(s))",
            rec.quarantined.len(),
            rec.cost_fallbacks
        );
    }
    let _ = writeln!(
        out,
        "workload: {} statements; candidates: {} basic, {} total",
        workload.len(),
        rec.candidates_basic,
        rec.candidates_total
    );
    let _ = writeln!(
        out,
        "algorithm {}: estimated speedup {:.2}x, {} indexes ({} general, {} specific), {} bytes, {} optimizer calls",
        algo.name(),
        rec.speedup,
        rec.indexes.len(),
        rec.general_count,
        rec.specific_count,
        rec.total_size,
        rec.eval_stats.optimizer_calls
    );
    for ix in &rec.indexes {
        let _ = writeln!(
            out,
            "CREATE INDEX ON {} PATTERN '{}' AS {};",
            ix.collection, ix.pattern, ix.kind
        );
    }
    if report {
        let full = xia_advisor::TuningReport::build(&mut db, &workload, &set, &rec);
        let _ = writeln!(
            out,
            "
{}",
            full.render()
        );
    }
    match traced {
        Some((TraceFormat::Json, tr)) => {
            let _ = writeln!(out, "{}", tr.to_json());
        }
        Some((TraceFormat::Text, tr)) => {
            out.push_str("--- trace ---\n");
            out.push_str(&tr.to_text());
        }
        None => {}
    }
    if apply {
        let n = Advisor::materialize(&mut db, &set, &rec.config);
        db.runstats_all();
        save_database(&db, &path)?;
        let _ = writeln!(out, "applied: {n} physical index(es) built; {path} saved");
    }
    // Lifecycle exit codes: a partial (deadline/cancelled) result outranks
    // a successful resume — scripts must know the answer is incomplete.
    let code = if !rec.complete {
        6
    } else if params.ctl.resumed() {
        7
    } else {
        0
    };
    Ok(crate::CmdOutput::with_code(out, code))
}

/// `xia whatif <db> -w <file> -i <collection>:<pattern>:<string|numerical> ...`
pub fn whatif(args: &[String]) -> Result<String, CliError> {
    let (_, mut db) = open(args.first().map(|s| s.as_str()))?;
    let mut workload_file = None;
    let mut specs: Vec<(String, xia_xpath::LinearPath, xia_xpath::ValueKind)> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-w" | "--workload" => {
                workload_file = Some(require(args, i + 1, "workload file after -w")?.to_string());
                i += 2;
            }
            "-i" | "--index" => {
                let spec = require(args, i + 1, "index spec after -i")?;
                specs.push(parse_index_spec(spec)?);
                i += 2;
            }
            other => return Err(CliError::new(format!("unknown flag `{other}`"))),
        }
    }
    let workload_file = workload_file.ok_or_else(|| CliError::new("missing -w <workload-file>"))?;
    if specs.is_empty() {
        return Err(CliError::new("missing -i <collection>:<pattern>:<kind>"));
    }
    let text = std::fs::read_to_string(&workload_file)
        .map_err(|e| CliError::new(format!("cannot read {workload_file}: {e}")))?;
    let workload = parse_workload(&text).map_err(CliError::new)?;
    let rec = Advisor::what_if(&mut db, &workload, &specs, &AdvisorParams::default())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "what-if configuration: estimated speedup {:.2}x, benefit {:.1}, {} bytes",
        rec.speedup, rec.est_benefit, rec.total_size
    );
    for ix in &rec.indexes {
        let _ = writeln!(
            out,
            "  {} '{}' [{}] {} bytes",
            ix.collection, ix.pattern, ix.kind, ix.size
        );
    }
    Ok(out)
}

/// Parses `collection:pattern:kind`, e.g. `SDOC:/Security/Symbol:string`.
pub fn parse_index_spec(
    spec: &str,
) -> Result<(String, xia_xpath::LinearPath, xia_xpath::ValueKind), CliError> {
    let (coll, rest) = spec.split_once(':').ok_or_else(|| {
        CliError::new(format!("bad index spec `{spec}` (collection:pattern:kind)"))
    })?;
    let (pattern, kind) = rest.rsplit_once(':').ok_or_else(|| {
        CliError::new(format!("bad index spec `{spec}` (collection:pattern:kind)"))
    })?;
    let kind = match kind {
        "string" | "str" => xia_xpath::ValueKind::Str,
        "numerical" | "num" | "double" => xia_xpath::ValueKind::Num,
        other => return Err(CliError::new(format!("bad index kind `{other}`"))),
    };
    let pattern = xia_xpath::parse_linear_path(pattern).map_err(CliError::new)?;
    Ok((coll.to_string(), pattern, kind))
}

/// `xia indexes <db>`
pub fn indexes(db_path: Option<&str>) -> Result<String, CliError> {
    let (_, db) = open(db_path)?;
    let mut out = String::new();
    for name in db.collection_names() {
        let catalog = db.catalog(name).expect("listed collection");
        for def in catalog.iter().filter(|d| !d.is_virtual()) {
            let _ = writeln!(
                out,
                "{name}: {} [{}] entries={} size={}B levels={}",
                def.pattern, def.kind, def.stats.entries, def.stats.size_bytes, def.stats.levels
            );
        }
    }
    if out.is_empty() {
        out.push_str("no physical indexes\n");
    }
    Ok(out)
}

/// `xia serve <db> [--tcp <addr>] [--socket <path>] [--max-conns <n>]
/// [--drift-threshold <x>] [--what-if-budget <calls>] [--jobs <n>]
/// [--inject <site>:<rate>] [--fault-seed <n>] [--no-prewarm]`
///
/// Starts the warm advisor service over the given database and blocks
/// until a client sends the `shutdown` verb (or the process is killed).
/// The listening endpoints are printed before the server starts
/// accepting, so wrappers can wait for that line.
pub fn serve(args: &[String]) -> Result<String, CliError> {
    let (path, db) = open(args.first().map(|s| s.as_str()))?;
    let mut config = xia_server::ServerConfig::default();
    let mut fault_seed: u64 = 0;
    let mut inject_specs: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--tcp" => {
                config.tcp = Some(require(args, i + 1, "address after --tcp")?.to_string());
                i += 2;
            }
            "--socket" => {
                config.socket = Some(
                    require(args, i + 1, "path after --socket")?
                        .to_string()
                        .into(),
                );
                i += 2;
            }
            "--max-conns" => {
                let v = require(args, i + 1, "count after --max-conns")?;
                config.max_connections = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad connection cap `{v}`")))?;
                i += 2;
            }
            "--drift-threshold" => {
                let v = require(args, i + 1, "value after --drift-threshold")?;
                config.drift_threshold = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && (0.0..=1.0).contains(t))
                    .ok_or_else(|| {
                        CliError::usage(format!("bad drift threshold `{v}` (expected 0..=1)"))
                    })?;
                i += 2;
            }
            "--what-if-budget" => {
                let v = require(args, i + 1, "call count after --what-if-budget")?;
                config.what_if_budget = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad what-if budget `{v}`")))?;
                i += 2;
            }
            "-j" | "--jobs" => {
                let v = require(args, i + 1, "worker count after --jobs")?;
                config.jobs = Some(v.parse().map_err(|_| {
                    CliError::usage(format!("bad job count `{v}` (expected a number; 0 = auto)"))
                })?);
                i += 2;
            }
            "--inject" => {
                inject_specs.push(require(args, i + 1, "spec after --inject")?.to_string());
                i += 2;
            }
            "--fault-seed" => {
                let v = require(args, i + 1, "seed after --fault-seed")?;
                fault_seed = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad fault seed `{v}`")))?;
                i += 2;
            }
            "--no-prewarm" => {
                config.prewarm = false;
                i += 1;
            }
            other => return Err(CliError::usage(format!("unknown serve flag `{other}`"))),
        }
    }
    if config.tcp.is_none() && config.socket.is_none() {
        return Err(CliError::usage(
            "serve needs at least one of --tcp <addr> / --socket <path>",
        ));
    }
    // Validate injection specs up front (the server falls back to
    // fault-free on a bad spec; the CLI should reject it loudly instead).
    if !inject_specs.is_empty() {
        let mut f = xia_fault::FaultInjector::seeded(fault_seed);
        for spec in &inject_specs {
            f = f.with_spec(spec).map_err(CliError::usage)?;
        }
        config.fault_specs = inject_specs;
        config.fault_seed = fault_seed;
    }
    let handle = xia_server::start(config, db)
        .map_err(|e| CliError::internal(format!("cannot start server: {e}")))?;
    // Print endpoints immediately: the process now blocks until shutdown,
    // and wrappers poll for this banner.
    println!("serving {path}");
    if let Some(addr) = handle.tcp_addr() {
        println!("listening on tcp {addr}");
    }
    if let Some(sock) = handle.socket_path() {
        println!("listening on socket {}", sock.display());
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    Ok("server stopped\n".to_string())
}

/// `xia client (--tcp <addr> | --socket <path>) <verb> [...]`
///
/// Verbs: `ping`, `hello`, `stats`, `journal`, `reset`, `shutdown`,
/// `observe (-w <workload-file> | <statement>...)`,
/// `recommend -b <budget> [-a <algo>]`. Prints the server's JSON reply;
/// an error reply maps to the same exit code the equivalent local
/// command would use.
pub fn client(args: &[String]) -> Result<String, CliError> {
    let mut tcp: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tcp" => {
                tcp = Some(require(args, i + 1, "address after --tcp")?.to_string());
                i += 2;
            }
            "--socket" => {
                socket = Some(require(args, i + 1, "path after --socket")?.to_string());
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    if tcp.is_none() && socket.is_none() {
        return Err(CliError::usage(
            "client needs one of --tcp <addr> / --socket <path>",
        ));
    }
    let verb = rest
        .first()
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::usage("missing client verb"))?;
    let lines = build_client_requests(verb, &rest[1..])?;
    let replies = client_exchange(tcp.as_deref(), socket.as_deref(), &lines)?;
    let mut out = String::new();
    for reply in replies {
        // Map an error reply to the exit code the CLI taxonomy assigns it.
        if let Ok(v) = xia_obs::json::Json::parse(&reply) {
            if v.get("ok") == Some(&xia_obs::json::Json::Bool(false)) {
                let code = v
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(xia_obs::json::Json::as_num)
                    .unwrap_or(5.0) as i32;
                let message = v
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(xia_obs::json::Json::as_str)
                    .unwrap_or("server error")
                    .to_string();
                let kind = match code {
                    2 => crate::ErrorKind::Usage,
                    3 => crate::ErrorKind::Input,
                    4 => crate::ErrorKind::CorruptDb,
                    _ => crate::ErrorKind::Internal,
                };
                return Err(CliError::with_kind(format!("server: {message}"), kind));
            }
        }
        let _ = writeln!(out, "{reply}");
    }
    Ok(out)
}

/// Reads a workload file into wire-shaped `{text, freq}` statement objects.
fn workload_statements(file: &str) -> Result<Vec<xia_obs::json::Json>, CliError> {
    use xia_obs::json::Json;
    let text = std::fs::read_to_string(file)
        .map_err(|e| CliError::new(format!("cannot read {file}: {e}")))?;
    Ok(crate::workload_file::split_statements(&text)
        .into_iter()
        .map(|(freq, stmt)| {
            Json::Obj(vec![
                ("text".into(), Json::Str(stmt)),
                ("freq".into(), Json::Num(freq)),
            ])
        })
        .collect())
}

/// Builds the request lines for a client verb. Sessions live exactly as
/// long as their connection, so a verb that needs prior observations
/// (`recommend -w`) expands to several requests sent over one connection.
fn build_client_requests(verb: &str, args: &[String]) -> Result<Vec<String>, CliError> {
    use xia_obs::json::Json;
    match verb {
        "ping" | "hello" | "stats" | "journal" | "reset" | "shutdown" => {
            Ok(vec![Json::Obj(vec![(
                "verb".into(),
                Json::Str(verb.into()),
            )])
            .render()])
        }
        "observe" => {
            let mut statements: Vec<Json> = Vec::new();
            let mut i = 0;
            while i < args.len() {
                match args[i].as_str() {
                    "-w" | "--workload" => {
                        let file = require(args, i + 1, "workload file after -w")?;
                        statements.extend(workload_statements(file)?);
                        i += 2;
                    }
                    other if other.starts_with('-') => {
                        return Err(CliError::usage(format!("unknown observe flag `{other}`")));
                    }
                    stmt => {
                        statements.push(Json::Str(stmt.to_string()));
                        i += 1;
                    }
                }
            }
            if statements.is_empty() {
                return Err(CliError::usage(
                    "observe needs -w <workload-file> or statement arguments",
                ));
            }
            Ok(vec![Json::Obj(vec![
                ("verb".into(), Json::Str("observe".into())),
                ("statements".into(), Json::Arr(statements)),
            ])
            .render()])
        }
        "recommend" => {
            let mut budget: Option<u64> = None;
            let mut algo: Option<String> = None;
            let mut statements: Vec<Json> = Vec::new();
            let mut i = 0;
            while i < args.len() {
                match args[i].as_str() {
                    "-b" | "--budget" => {
                        let v = require(args, i + 1, "budget after -b")?;
                        budget = Some(
                            parse_size(v)
                                .ok_or_else(|| CliError::usage(format!("bad budget `{v}`")))?,
                        );
                        i += 2;
                    }
                    "-a" | "--algo" => {
                        // Validated here for a fast local error; the
                        // server validates again.
                        let a = require(args, i + 1, "algorithm after -a")?;
                        parse_algo(a)?;
                        algo = Some(a.to_string());
                        i += 2;
                    }
                    "-w" | "--workload" => {
                        let file = require(args, i + 1, "workload file after -w")?;
                        statements.extend(workload_statements(file)?);
                        i += 2;
                    }
                    other => {
                        return Err(CliError::usage(format!("unknown recommend flag `{other}`")))
                    }
                }
            }
            let budget = budget.ok_or_else(|| CliError::usage("missing -b <budget>"))?;
            let mut lines = Vec::new();
            if !statements.is_empty() {
                lines.push(
                    Json::Obj(vec![
                        ("verb".into(), Json::Str("observe".into())),
                        ("statements".into(), Json::Arr(statements)),
                    ])
                    .render(),
                );
            }
            let mut fields = vec![
                ("verb".into(), Json::Str("recommend".into())),
                ("budget".into(), Json::Num(budget as f64)),
            ];
            if let Some(a) = algo {
                fields.push(("algo".into(), Json::Str(a)));
            }
            lines.push(Json::Obj(fields).render());
            Ok(lines)
        }
        other => Err(CliError::usage(format!("unknown client verb `{other}`"))),
    }
}

/// Connects once, then sends each request line and reads its reply line
/// over that single connection (so all requests share one session).
fn client_exchange(
    tcp: Option<&str>,
    socket: Option<&str>,
    lines: &[String],
) -> Result<Vec<String>, CliError> {
    use std::io::{BufRead as _, BufReader};
    fn exchange<S: std::io::Read + std::io::Write>(
        stream: S,
        lines: &[String],
    ) -> std::io::Result<Vec<String>> {
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::with_capacity(lines.len());
        for line in lines {
            let stream = reader.get_mut();
            // One write per request: split small writes trip Nagle +
            // delayed-ACK stalls on TCP.
            stream.write_all(format!("{line}\n").as_bytes())?;
            stream.flush()?;
            let mut reply = String::new();
            if reader.read_line(&mut reply)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            replies.push(reply.trim_end().to_string());
        }
        Ok(replies)
    }
    let replies = if let Some(addr) = tcp {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| CliError::new(format!("cannot connect to tcp {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        exchange(stream, lines)
    } else if let Some(path) = socket {
        #[cfg(unix)]
        {
            let stream = std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| CliError::new(format!("cannot connect to socket {path}: {e}")))?;
            exchange(stream, lines)
        }
        #[cfg(not(unix))]
        {
            return Err(CliError::usage(
                "unix sockets are not available on this platform",
            ));
        }
    } else {
        return Err(CliError::usage(
            "client needs one of --tcp <addr> / --socket <path>",
        ));
    };
    replies.map_err(|e| CliError::new(format!("server connection failed: {e}")))
}

/// Parses sizes like `1048576`, `64k`, `10m`, `2g`.
pub fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim().to_ascii_lowercase();
    let (num, mult) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(prefix) => {
            let mult = match s.as_bytes()[s.len() - 1] {
                b'k' => 1024,
                b'm' => 1024 * 1024,
                b'g' => 1024 * 1024 * 1024,
                _ => unreachable!("strip_suffix matched"),
            };
            (prefix, mult)
        }
        None => (s.as_str(), 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xia_cli_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_size_suffixes() {
        assert_eq!(parse_size("1024"), Some(1024));
        assert_eq!(parse_size("64k"), Some(64 * 1024));
        assert_eq!(parse_size("10M"), Some(10 * 1024 * 1024));
        assert_eq!(parse_size("2g"), Some(2 * 1024 * 1024 * 1024));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn load_batch_is_all_or_nothing_and_names_the_bad_file() {
        let dir = tmpdir();
        let db = dir.join("batch.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        let mut args = vec![db.clone(), "C".to_string()];
        for i in 0..6 {
            let f = dir.join(format!("batch{i}.xml"));
            let body = if i == 4 {
                "<broken".to_string()
            } else {
                format!("<a><b>{i}</b></a>")
            };
            std::fs::write(&f, body).unwrap();
            args.push(f.to_string_lossy().to_string());
        }
        args.push("--jobs".to_string());
        args.push("3".to_string());
        let err = load(&args).unwrap_err();
        assert!(err.to_string().contains("batch4.xml"), "{err}");
        // Nothing was inserted.
        let out = stats(Some(&db)).unwrap();
        assert!(out.contains("database is empty"), "{out}");
        // Unknown flags are usage errors.
        let err = load(&s(&[&db, "C", "x.xml", "--frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown load flag"), "{err}");
    }

    #[test]
    fn init_load_stats_explain_exec_recommend_round_trip() {
        let dir = tmpdir();
        let db = dir.join("t.xiadb").to_string_lossy().to_string();

        // init
        let out = init(Some(&db)).unwrap();
        assert!(out.contains("created"));
        assert!(init(Some(&db)).is_err(), "init must refuse to overwrite");

        // load documents — enough data, with realistic bulk, that an index
        // pays off.
        let filler = "settlement clearing custodian tranche coupon ".repeat(40);
        let mut file_args = vec![db.clone(), "SDOC".to_string()];
        for i in 0..60 {
            let f = dir.join(format!("doc{i}.xml"));
            std::fs::write(
                &f,
                format!(
                    "<Security><Symbol>{}</Symbol><Yield>{}.5</Yield>\
                     <Prospectus>{filler}</Prospectus></Security>",
                    if i == 0 {
                        "IBM".to_string()
                    } else {
                        format!("S{i}")
                    },
                    i % 9
                ),
            )
            .unwrap();
            file_args.push(f.to_string_lossy().to_string());
        }
        let out = load(&file_args).unwrap();
        assert!(out.contains("loaded 60"));

        // Reloading the same corpus through the DOM escape hatch and with
        // parallel workers produces the same database surface.
        let db_dom = dir.join("t_dom.xiadb").to_string_lossy().to_string();
        init(Some(&db_dom)).unwrap();
        let mut dom_args = vec![db_dom.clone()];
        dom_args.extend(file_args[1..].iter().cloned());
        dom_args.push("--no-stream".to_string());
        dom_args.push("--jobs".to_string());
        dom_args.push("4".to_string());
        let out = load(&dom_args).unwrap();
        assert!(out.contains("loaded 60"), "{out}");
        assert!(out.contains("4 worker(s)"), "{out}");
        assert_eq!(stats(Some(&db)).unwrap(), stats(Some(&db_dom)).unwrap());

        // stats
        let out = stats(Some(&db)).unwrap();
        assert!(out.contains("collection SDOC: 60 docs"), "{out}");
        assert!(out.contains("/Security/Symbol"));

        // explain
        let out = explain(&s(&[
            &db,
            r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "IBM" return $s"#,
        ]))
        .unwrap();
        assert!(out.contains("SCAN"), "{out}");
        assert!(out.contains("/Security/Symbol"), "{out}");

        // exec query
        let out = exec(&s(&[
            &db,
            r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "IBM" return $s"#,
        ]))
        .unwrap();
        assert!(out.contains("1 document(s) matched"), "{out}");

        // exec insert persists
        let out = exec(&s(&[
            &db,
            "insert into SDOC <Security><Symbol>GE</Symbol></Security>",
        ]))
        .unwrap();
        assert!(out.contains("inserted"));
        let out = stats(Some(&db)).unwrap();
        assert!(out.contains("61 docs"), "{out}");

        // recommend + apply
        let wl = dir.join("w.xq");
        std::fs::write(
            &wl,
            "for $s in SECURITY('SDOC')/Security\nwhere $s/Symbol = \"IBM\"\nreturn $s\n",
        )
        .unwrap();
        let out = recommend(&s(&[
            &db,
            "-w",
            wl.to_str().unwrap(),
            "-b",
            "10m",
            "-a",
            "heuristics",
            "--report",
            "--apply",
        ]))
        .unwrap();
        assert!(out.contains("CREATE INDEX"), "{out}");
        assert!(out.contains("applied"), "{out}");
        assert!(out.contains("per-statement impact"), "{out}");

        // indexes now lists the materialized index
        let out = indexes(Some(&db)).unwrap();
        assert!(out.contains("/Security/Symbol"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exec_delete_and_update_persist() {
        let dir = tmpdir();
        let db = dir.join("du.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        let mut file_args = vec![db.clone(), "SDOC".to_string()];
        for i in 0..10 {
            let f = dir.join(format!("d{i}.xml"));
            std::fs::write(
                &f,
                format!("<Security><Symbol>S{i}</Symbol><Yield>{i}</Yield></Security>"),
            )
            .unwrap();
            file_args.push(f.to_string_lossy().to_string());
        }
        load(&file_args).unwrap();

        let out = exec(&s(&[
            &db,
            r#"update SDOC set /Security/Yield = 99 where /Security[Symbol = "S3"]"#,
        ]))
        .unwrap();
        assert!(out.contains("1 node(s) updated"), "{out}");
        let out = exec(&s(&[&db, r#"collection('SDOC')/Security[Yield = 99]"#])).unwrap();
        assert!(out.contains("1 document(s) matched"), "{out}");

        let out = exec(&s(&[
            &db,
            r#"delete from SDOC where /Security[Symbol = "S5"]"#,
        ]))
        .unwrap();
        assert!(out.contains("1 document(s) deleted"), "{out}");
        let out = stats(Some(&db)).unwrap();
        assert!(out.contains("9 docs"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_index_spec_variants() {
        let (c, p, k) = parse_index_spec("SDOC:/Security/Symbol:string").unwrap();
        assert_eq!(c, "SDOC");
        assert_eq!(p.to_string(), "/Security/Symbol");
        assert_eq!(k, xia_xpath::ValueKind::Str);
        let (_, p, k) = parse_index_spec("X://Yield:num").unwrap();
        assert_eq!(p.to_string(), "//Yield");
        assert_eq!(k, xia_xpath::ValueKind::Num);
        assert!(parse_index_spec("nocolons").is_err());
        assert!(parse_index_spec("C:/a/b:floating").is_err());
        assert!(parse_index_spec("C:[bad:string").is_err());
    }

    #[test]
    fn whatif_prices_a_config() {
        let dir = tmpdir();
        let db = dir.join("w.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        let filler = "lorem ipsum dolor ".repeat(60);
        let mut file_args = vec![db.clone(), "SDOC".to_string()];
        for i in 0..40 {
            let f = dir.join(format!("w{i}.xml"));
            std::fs::write(
                &f,
                format!("<Security><Symbol>S{i}</Symbol><Pad>{filler}</Pad></Security>"),
            )
            .unwrap();
            file_args.push(f.to_string_lossy().to_string());
        }
        load(&file_args).unwrap();
        let wl = dir.join("w.xq");
        std::fs::write(&wl, "collection('SDOC')/Security[Symbol = \"S3\"]\n").unwrap();
        let out = whatif(&s(&[
            &db,
            "-w",
            wl.to_str().unwrap(),
            "-i",
            "SDOC:/Security/Symbol:string",
        ]))
        .unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("/Security/Symbol"), "{out}");
        // Missing flags error.
        assert!(whatif(&s(&[&db, "-w", wl.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Builds a small database plus workload file for trace/explain tests;
    /// returns (db path, workload path).
    fn trace_fixture(dir: &std::path::Path) -> (String, String) {
        let db = dir.join("t.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        let filler = "prospectus filler text ".repeat(50);
        let mut file_args = vec![db.clone(), "SDOC".to_string()];
        for i in 0..50 {
            let f = dir.join(format!("tr{i}.xml"));
            std::fs::write(
                &f,
                format!(
                    "<Security><Symbol>S{i}</Symbol><Yield>{}.5</Yield>\
                     <Pad>{filler}</Pad></Security>",
                    i % 9
                ),
            )
            .unwrap();
            file_args.push(f.to_string_lossy().to_string());
        }
        load(&file_args).unwrap();
        let wl = dir.join("w.xq");
        std::fs::write(
            &wl,
            "collection('SDOC')/Security[Symbol = \"S3\"]\n\n\
             collection('SDOC')/Security[Yield > 4.5]\n",
        )
        .unwrap();
        (db, wl.to_string_lossy().to_string())
    }

    #[test]
    fn recommend_trace_json_is_parseable_and_complete() {
        let dir = tmpdir().join("trace_json");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let out = recommend(&s(&[&db, "-w", &wl, "-b", "10m", "--trace=json"])).unwrap();
        let json_line = out
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("a JSON trace line");
        let tr = xia_obs::TraceReport::from_json(json_line).unwrap();
        let nonzero = tr.counters.iter().filter(|&&(_, v)| v > 0).count();
        assert!(nonzero >= 8, "only {nonzero} non-zero counters: {tr:?}");
        assert!(tr.counter("optimizer_evaluate_calls").unwrap() > 0);
        assert_eq!(tr.counter("optimizer_enumerate_calls"), Some(2));
        // The phase tree covers the whole pipeline.
        let advise = tr
            .phases
            .iter()
            .find(|p| p.name == "advise")
            .expect("advise root span");
        {
            let phase = "search";
            assert!(
                advise.child(phase).is_some(),
                "missing {phase} under advise"
            );
        }
        for phase in ["enumerate", "generalize", "size"] {
            assert!(
                advise.child(phase).is_some() || tr.phases.iter().any(|p| p.name == phase),
                "missing {phase} phase"
            );
        }
        // Every algorithm records its own search-loop span (PR 9): the
        // default algorithm's evaluate phase nests under its name.
        let search = advise.child("search").unwrap();
        let algo_span = search.child("topdown-full").expect("per-algorithm span");
        assert!(algo_span.child("evaluate").is_some());
        // Per-statement what-if rows for both workload statements.
        assert_eq!(tr.statements.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_trace_text_and_bad_format() {
        let dir = tmpdir().join("trace_text");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let out = recommend(&s(&[&db, "-w", &wl, "-b", "10m", "--trace"])).unwrap();
        assert!(out.contains("--- trace ---"), "{out}");
        assert!(out.contains("phases:"), "{out}");
        assert!(out.contains("optimizer_evaluate_calls"), "{out}");
        let err = recommend(&s(&[&db, "-w", &wl, "-b", "10m", "--trace=xml"])).unwrap_err();
        assert!(err.message.contains("bad trace format"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_advisor_mode_prints_breakdown() {
        let dir = tmpdir().join("explain_adv");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let out = explain(&s(&[&db, "-w", &wl, "-b", "10m", "-a", "heuristics"])).unwrap();
        assert!(out.contains("advisor run: 2 statements"), "{out}");
        assert!(out.contains("phases:"), "{out}");
        assert!(out.contains("counters:"), "{out}");
        assert!(out.contains("statement what-if costs:"), "{out}");
        // Missing budget errors.
        assert!(explain(&s(&[&db, "-w", &wl])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_requires_flags() {
        let dir = tmpdir();
        let db = dir.join("r.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        assert!(recommend(&s(&[&db])).is_err());
        assert!(recommend(&s(&[&db, "-b", "1m"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_collection_errors() {
        let dir = tmpdir();
        let db = dir.join("u.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        let err = explain(&s(&[&db, "collection('NOPE')/a[b = 1]"])).unwrap_err();
        assert!(err.message.contains("NOPE"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_dispatches_and_reports_unknown() {
        assert!(crate::run(&s(&["help"])).unwrap().contains("USAGE"));
        assert!(crate::run(&s(&["bogus"])).is_err());
        assert!(crate::run(&[]).is_err());
    }

    #[test]
    fn exit_codes_follow_the_taxonomy() {
        use crate::ErrorKind;
        // Usage errors: exit 2.
        assert_eq!(
            crate::run(&s(&["bogus"])).unwrap_err().kind,
            ErrorKind::Usage
        );
        assert_eq!(crate::run(&[]).unwrap_err().exit_code(), 2);
        assert_eq!(stats(None).unwrap_err().kind, ErrorKind::Usage);
        // Input errors (missing file): exit 3.
        let err = stats(Some("/nonexistent/xia/none.xiadb")).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Input, "{err}");
        assert_eq!(err.exit_code(), 3);
        // Corrupt database: exit 4.
        let dir = tmpdir().join("exit_codes");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.xiadb");
        std::fs::write(&bad, "NOT A DATABASE\ngarbage\n").unwrap();
        let err = stats(Some(bad.to_str().unwrap())).unwrap_err();
        assert_eq!(err.kind, ErrorKind::CorruptDb, "{err}");
        assert_eq!(err.exit_code(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_output_is_byte_identical_across_jobs() {
        // --jobs changes only wall-clock time; the printed recommendation
        // (speedup, index list, optimizer-call count) must be identical for
        // every worker count, clean and under injected faults.
        let dir = tmpdir().join("jobs_identical");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let run = |jobs: &str, extra: &[&str]| {
            let mut args = vec![
                db.as_str(),
                "-w",
                wl.as_str(),
                "-b",
                "10m",
                "-a",
                "heuristics",
                "--jobs",
                jobs,
            ];
            args.extend_from_slice(extra);
            recommend(&s(&args)).unwrap()
        };
        let clean = run("1", &[]);
        assert!(clean.contains("CREATE INDEX"), "{clean}");
        for jobs in ["4", "8", "0"] {
            assert_eq!(
                clean,
                run(jobs, &[]),
                "clean output diverged at --jobs {jobs}"
            );
        }
        let faulty = run(
            "1",
            &["--inject", "optimizer-cost:0.3", "--fault-seed", "11"],
        );
        for jobs in ["4", "8"] {
            assert_eq!(
                faulty,
                run(
                    jobs,
                    &["--inject", "optimizer-cost:0.3", "--fault-seed", "11"]
                ),
                "faulty output diverged at --jobs {jobs}"
            );
        }
        assert!(
            recommend(&s(&[&db, "-w", &wl, "-b", "10m", "--jobs", "x"])).is_err(),
            "bad job count must be a usage error"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_journal_is_byte_identical_across_jobs() {
        // --journal exports the decision journal as JSONL. All events are
        // emitted on the coordinator, so the file must be byte-identical
        // for every --jobs value — clean and under injected faults.
        let dir = tmpdir().join("journal_jobs");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let run = |jobs: &str, tag: &str, extra: &[&str]| -> (String, String) {
            let jpath = dir.join(format!("j_{tag}_{jobs}.jsonl"));
            let jp = jpath.to_string_lossy().to_string();
            let mut args = vec![
                db.as_str(),
                "-w",
                wl.as_str(),
                "-b",
                "10m",
                "-a",
                "heuristics",
                "--jobs",
                jobs,
                "--journal",
                jp.as_str(),
            ];
            args.extend_from_slice(extra);
            let out = recommend(&s(&args)).unwrap();
            (out.text, std::fs::read_to_string(&jpath).unwrap())
        };
        let (out1, j1) = run("1", "clean", &[]);
        assert!(out1.contains("journal:"), "{out1}");
        let events = xia_obs::EventJournal::parse_jsonl(&j1).unwrap();
        assert!(!events.is_empty(), "journal must record the run");
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, xia_obs::Event::KnapsackDecision { .. })),
            "journal must record search decisions"
        );
        for jobs in ["4", "8"] {
            let (_, j) = run(jobs, "clean", &[]);
            assert_eq!(j1, j, "clean journal diverged at --jobs {jobs}");
        }
        let faults = ["--inject", "optimizer-cost:0.3", "--fault-seed", "11"];
        let (_, f1) = run("1", "faulty", &faults);
        for jobs in ["4", "8"] {
            let (_, f) = run(jobs, "faulty", &faults);
            assert_eq!(f1, f, "faulty journal diverged at --jobs {jobs}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_why_replays_the_derivation_chain() {
        let dir = tmpdir().join("explain_why");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        // Pull a recommended pattern out of a normal run first.
        let rec = recommend(&s(&[&db, "-w", &wl, "-b", "10m", "-a", "heuristics"])).unwrap();
        let pattern = rec
            .lines()
            .find_map(|l| {
                let (_, rest) = l.split_once("PATTERN '")?;
                rest.split_once('\'').map(|(p, _)| p.to_string())
            })
            .expect("a recommended index");
        let out = explain(&s(&[
            &db,
            "-w",
            &wl,
            "-b",
            "10m",
            "-a",
            "heuristics",
            "--why",
            &pattern,
        ]))
        .unwrap();
        assert!(out.contains(&format!("--- why {pattern} ---")), "{out}");
        assert!(out.contains("final decision: KEPT"), "{out}");
        assert!(
            out.contains("candidate") || out.contains("generalized from"),
            "{out}"
        );
        // Unknown patterns still print a definitive (empty-chain) answer.
        let out = explain(&s(&[&db, "-w", &wl, "-b", "10m", "--why", "/No/Such"])).unwrap();
        assert!(out.contains("no journal events"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_no_prune_changes_only_call_counts() {
        // --no-prune disables the statement-relevance shortcut: the
        // recommendation (index list, sizes, speedup) must stay
        // byte-identical; only the reported optimizer-call count may
        // change, and pruning must never need *more* calls.
        let dir = tmpdir().join("no_prune");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let run = |extra: &[&str]| {
            let mut args = vec![
                db.as_str(),
                "-w",
                wl.as_str(),
                "-b",
                "10m",
                "-a",
                "heuristics",
            ];
            args.extend_from_slice(extra);
            recommend(&s(&args)).unwrap()
        };
        // Blank out the call count in the summary line so everything else
        // can be compared bytewise.
        let mask = |out: &str| -> String {
            out.lines()
                .map(|l| match (l.strip_suffix(" optimizer calls"), l) {
                    (Some(head), _) => match head.rfind(", ") {
                        Some(p) => format!("{}, <calls> optimizer calls", &head[..p]),
                        None => l.to_string(),
                    },
                    (None, l) => l.to_string(),
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let calls = |out: &str| -> u64 {
            out.lines()
                .find_map(|l| l.strip_suffix(" optimizer calls"))
                .and_then(|head| head.rsplit(", ").next())
                .and_then(|n| n.parse().ok())
                .expect("summary line reports optimizer calls")
        };
        let pruned = run(&[]);
        let unpruned = run(&["--no-prune"]);
        assert_eq!(mask(&pruned), mask(&unpruned), "--no-prune changed output");
        assert!(
            calls(&pruned) <= calls(&unpruned),
            "pruning used more optimizer calls: {} vs {}",
            calls(&pruned),
            calls(&unpruned)
        );
        // The unpruned path is jobs-invariant too.
        assert_eq!(unpruned, run(&["--no-prune", "--jobs", "4"]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_no_fastpath_output_is_byte_identical() {
        // --no-fastpath runs the naive generalization fixpoint and plain
        // containment instead of the semi-naive/memoized fast path. Unlike
        // --no-prune, nothing about the costing changes, so the whole
        // output — index list, sizes, speedup, reported call counts — must
        // be byte-identical, clean and under fault injection.
        let dir = tmpdir().join("no_fastpath");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let run = |extra: &[&str]| {
            let mut args = vec![
                db.as_str(),
                "-w",
                wl.as_str(),
                "-b",
                "10m",
                "-a",
                "heuristics",
            ];
            args.extend_from_slice(extra);
            recommend(&s(&args)).unwrap()
        };
        let fast = run(&[]);
        let naive = run(&["--no-fastpath"]);
        assert_eq!(fast, naive, "--no-fastpath changed the output");
        // Parity holds under fault injection and across worker counts too.
        let faulty = &["--inject", "optimizer-cost:0.3", "--fault-seed", "11"];
        let fast_faulty = run(faulty);
        let mut naive_faulty_args = vec!["--no-fastpath"];
        naive_faulty_args.extend_from_slice(faulty);
        assert_eq!(
            fast_faulty,
            run(&naive_faulty_args),
            "--no-fastpath changed faulty output"
        );
        assert_eq!(naive, run(&["--no-fastpath", "--jobs", "4"]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_under_total_optimizer_faults_degrades_cleanly() {
        let dir = tmpdir().join("inject_opt");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let args = s(&[
            &db,
            "-w",
            &wl,
            "-b",
            "10m",
            "--inject",
            "optimizer-cost:1.0",
            "--fault-seed",
            "7",
        ]);
        let out = recommend(&args).unwrap();
        assert!(
            out.contains("warning: degraded recommendation"),
            "total cost failure must be reported: {out}"
        );
        // Same seed, same flags: the degraded output is reproducible.
        let again = recommend(&args).unwrap();
        assert_eq!(out, again, "seeded fault runs must be deterministic");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_rejects_bad_inject_specs_as_usage() {
        let dir = tmpdir().join("inject_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        for spec in ["bogus-site:0.5", "storage-io:notanumber", "nocolon"] {
            let err = recommend(&s(&[&db, "-w", &wl, "-b", "10m", "--inject", spec])).unwrap_err();
            assert_eq!(err.kind, crate::ErrorKind::Usage, "spec {spec}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_quarantines_unparseable_statements_with_a_warning() {
        let dir = tmpdir().join("quarantine");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        // Append a hopeless statement to the workload file.
        let mut text = std::fs::read_to_string(&wl).unwrap();
        text.push_str("\n\n???not xquery at all(((\n");
        std::fs::write(&wl, &text).unwrap();
        let out = recommend(&s(&[&db, "-w", &wl, "-b", "10m"])).unwrap();
        assert!(
            out.contains("warning: statement quarantined (parse)"),
            "{out}"
        );
        assert!(
            out.contains("CREATE INDEX"),
            "good statements still tune: {out}"
        );
        // Strict mode turns the same quarantine into an internal error.
        let err = recommend(&s(&[&db, "-w", &wl, "-b", "10m", "--strict"])).unwrap_err();
        assert_eq!(err.kind, crate::ErrorKind::Internal, "{err}");
        assert_eq!(err.exit_code(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_deadline_zero_returns_partial_with_exit_6() {
        let dir = tmpdir().join("lifecycle_deadline");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let cp = dir.join("dead.ckpt");
        let out = recommend(&s(&[
            &db,
            "-w",
            &wl,
            "-b",
            "10m",
            "-a",
            "heuristics",
            "--deadline-ms",
            "0",
            "--checkpoint",
            cp.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(out.code, 6, "{}", out.text);
        assert!(out.contains("run stopped early (deadline)"), "{}", out.text);
        assert!(
            cp.exists(),
            "a stopped run must leave a final checkpoint behind"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_resume_matches_uninterrupted_and_exits_7() {
        let dir = tmpdir().join("lifecycle_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let cp_full = dir.join("full.ckpt");
        let cp_kill = dir.join("kill.ckpt");
        let cp_next = dir.join("next.ckpt");
        let base = &[
            db.as_str(),
            "-w",
            wl.as_str(),
            "-b",
            "10m",
            "-a",
            "heuristics",
        ];
        let run = |extra: &[&str]| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend_from_slice(extra);
            recommend(&s(&args)).unwrap()
        };
        // Uninterrupted run with checkpointing on: the reference output.
        let full = run(&["--checkpoint", cp_full.to_str().unwrap()]);
        assert_eq!(full.code, 0, "{}", full.text);
        assert!(full.contains("CREATE INDEX"), "{}", full.text);
        // Kill deterministically mid-run; the partial run leaves a
        // checkpoint (cadence writes plus the final one on stop).
        let killed = run(&[
            "--cancel-after-polls",
            "2",
            "--checkpoint",
            cp_kill.to_str().unwrap(),
        ]);
        assert_eq!(killed.code, 6, "{}", killed.text);
        assert!(
            killed.contains("run stopped early (cancelled)"),
            "{}",
            killed.text
        );
        // Resume from the kill point: exit 7, and apart from the resume
        // banner the output is byte-identical to the uninterrupted run.
        let strip = |t: &str| {
            t.lines()
                .filter(|l| !l.starts_with("resumed from checkpoint"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let resumed = run(&[
            "--resume",
            cp_kill.to_str().unwrap(),
            "--checkpoint",
            cp_next.to_str().unwrap(),
        ]);
        assert_eq!(resumed.code, 7, "{}", resumed.text);
        assert!(
            resumed.contains("resumed from checkpoint"),
            "{}",
            resumed.text
        );
        assert_eq!(
            strip(&resumed),
            strip(&full),
            "resumed output must match the uninterrupted run"
        );
        // The resumed path is jobs-invariant like everything else.
        let resumed4 = run(&[
            "--resume",
            cp_kill.to_str().unwrap(),
            "--checkpoint",
            cp_next.to_str().unwrap(),
            "--jobs",
            "4",
        ]);
        assert_eq!(resumed.text, resumed4.text, "resume diverged at --jobs 4");
        // A garbage checkpoint degrades to a cold start with a warning.
        let garbage = dir.join("garbage.ckpt");
        std::fs::write(&garbage, "not a checkpoint\n").unwrap();
        let cold = run(&["--resume", garbage.to_str().unwrap()]);
        assert_eq!(cold.code, 0, "cold start is a plain success");
        assert!(cold.contains("starting cold"), "{}", cold.text);
        let strip_warn = |t: &str| {
            t.lines()
                .filter(|l| !l.starts_with("warning: cannot resume"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip_warn(&cold),
            strip(&full),
            "cold start must still agree"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_mem_budget_walks_the_ladder_deterministically() {
        let dir = tmpdir().join("lifecycle_governor");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let jp = dir.join("gov.jsonl");
        let run = || {
            recommend(&s(&[
                &db,
                "-w",
                &wl,
                "-b",
                "10m",
                "-a",
                "heuristics",
                "--mem-budget",
                "1",
                "--journal",
                jp.to_str().unwrap(),
            ]))
            .unwrap()
        };
        let a = run();
        assert_eq!(a.code, 0, "{}", a.text);
        let j = std::fs::read_to_string(&jp).unwrap();
        assert!(
            j.contains("governor_demoted"),
            "a 1-byte budget must demote: {j}"
        );
        // The ladder fires at the same batches every run: output and
        // journal are reproducible.
        let b = run();
        assert_eq!(a, b, "governor runs must be deterministic");
        assert_eq!(j, std::fs::read_to_string(&jp).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_rejects_bad_lifecycle_flags_as_usage() {
        let dir = tmpdir().join("lifecycle_usage");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        for bad in [
            &["--deadline-ms", "soon"][..],
            &["--mem-budget", "lots"][..],
            &["--cancel-after-polls", "x"][..],
        ] {
            let mut args = vec![db.as_str(), "-w", wl.as_str(), "-b", "10m"];
            args.extend_from_slice(bad);
            let err = recommend(&s(&args)).unwrap_err();
            assert_eq!(err.kind, crate::ErrorKind::Usage, "{bad:?}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_survives_a_truncated_database_with_warnings() {
        let dir = tmpdir().join("trunc_db");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        // Chop into the END trailer so the file checksum cannot verify.
        let bytes = std::fs::read(&db).unwrap();
        std::fs::write(&db, &bytes[..bytes.len() - 5]).unwrap();
        // Strict single-statement commands refuse the corrupt file...
        let err = stats(Some(&db)).unwrap_err();
        assert_eq!(err.kind, crate::ErrorKind::CorruptDb, "{err}");
        // ...but recommend opens leniently, warns, and tunes what is left.
        let out = recommend(&s(&[&db, "-w", &wl, "-b", "10m"])).unwrap();
        assert!(out.contains("warning:"), "{out}");
        assert!(out.contains("degraded database"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Builds a small db file and returns its path (serve fixtures).
    fn serve_fixture(dir: &std::path::Path) -> String {
        let db = dir.join("serve.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        // Padded documents so scans are expensive enough that a selective
        // index clears the benefit bar.
        let filler = "prospectus filler text ".repeat(50);
        let mut args = vec![db.clone(), "SDOC".to_string()];
        for i in 0..50 {
            let f = dir.join(format!("sdoc{i}.xml"));
            std::fs::write(
                &f,
                format!(
                    "<Security><Symbol>S{i}</Symbol><Yield>{}.25</Yield>\
                     <Pad>{filler}</Pad></Security>",
                    i % 8
                ),
            )
            .unwrap();
            args.push(f.to_string_lossy().to_string());
        }
        load(&args).unwrap();
        db
    }

    #[cfg(unix)]
    #[test]
    fn serve_and_client_round_trip_over_a_unix_socket() {
        let dir = tmpdir().join("serve_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let db = serve_fixture(&dir);
        let sock = dir.join("xia.sock").to_string_lossy().to_string();
        let serve_args = s(&[&db, "--socket", &sock, "--drift-threshold", "0.3"]);
        let server = std::thread::spawn(move || serve(&serve_args));
        // Wait for the listener (the socket file appears once bound).
        let sock_path = std::path::Path::new(&sock);
        for _ in 0..200 {
            if sock_path.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        assert!(sock_path.exists(), "server never bound its socket");

        let out = client(&s(&["--socket", &sock, "ping"])).unwrap();
        assert_eq!(out.trim(), r#"{"ok":true,"pong":true}"#);

        let out = client(&s(&[
            "--socket",
            &sock,
            "observe",
            r#"collection('SDOC')/Security[Symbol = "S3"]"#,
        ]))
        .unwrap();
        assert!(out.contains(r#""observed":1"#), "{out}");

        // Sessions are per-connection, so `recommend -w` observes and
        // recommends over one connection: two replies, one invocation.
        let wl = dir.join("serve.workload").to_string_lossy().to_string();
        std::fs::write(
            &wl,
            "collection('SDOC')/Security[Symbol = \"S3\"]\n\ncollection('SDOC')/Security[Yield > 4.0]\n",
        )
        .unwrap();
        let out = client(&s(&[
            "--socket",
            &sock,
            "recommend",
            "-w",
            &wl,
            "-b",
            "10m",
            "-a",
            "heuristics",
        ]))
        .unwrap();
        assert!(out.contains(r#""observed":2"#), "{out}");
        assert!(out.contains("CREATE INDEX"), "{out}");

        // A second connection is a fresh session: recommending with no
        // observations is an input-class error, mapped to exit code 3.
        let err = client(&s(&["--socket", &sock, "recommend", "-b", "10m"])).unwrap_err();
        assert_eq!(err.kind, crate::ErrorKind::Input, "{err}");

        let out = client(&s(&["--socket", &sock, "shutdown"])).unwrap();
        assert!(out.contains("stopping"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("server stopped"), "{served}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_client_flag_validation() {
        let dir = tmpdir().join("serve_flags");
        std::fs::create_dir_all(&dir).unwrap();
        let db = serve_fixture(&dir);
        // serve: no listener, bad threshold, bad spec, unknown flag.
        for bad in [
            vec![db.as_str()],
            vec![db.as_str(), "--tcp"],
            vec![
                db.as_str(),
                "--tcp",
                "127.0.0.1:0",
                "--drift-threshold",
                "7",
            ],
            vec![db.as_str(), "--tcp", "127.0.0.1:0", "--inject", "bogus"],
            vec![db.as_str(), "--tcp", "127.0.0.1:0", "--frobnicate"],
        ] {
            let err = serve(&s(&bad)).unwrap_err();
            assert_eq!(err.kind, crate::ErrorKind::Usage, "{bad:?}: {err}");
        }
        // client: no endpoint, missing verb, unknown verb, missing budget.
        for bad in [
            vec!["ping"],
            vec!["--tcp", "127.0.0.1:1"],
            vec!["--tcp", "127.0.0.1:1", "frobnicate"],
            vec!["--tcp", "127.0.0.1:1", "recommend"],
            vec!["--tcp", "127.0.0.1:1", "observe"],
        ] {
            let err = client(&s(&bad)).unwrap_err();
            assert_eq!(err.kind, crate::ErrorKind::Usage, "{bad:?}: {err}");
        }
        // An unknown algorithm is an input error, same as local recommend.
        let err = client(&s(&[
            "--tcp",
            "127.0.0.1:1",
            "recommend",
            "-b",
            "10m",
            "-a",
            "quantum",
        ]))
        .unwrap_err();
        assert_eq!(err.kind, crate::ErrorKind::Input, "{err}");
        // client: unreachable server is an input-class connection error.
        let err = client(&s(&["--tcp", "127.0.0.1:1", "ping"])).unwrap_err();
        assert_eq!(err.kind, crate::ErrorKind::Input, "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
