//! Command implementations. Each returns the text to print.

use crate::workload_file::parse_workload;
use crate::CliError;
use std::fmt::Write as _;
use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_optimizer::{execute_query, Optimizer};
use xia_storage::{load_database, save_database, Database};
use xia_xpath::parse_statement;

fn require<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, CliError> {
    args.get(i)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::new(format!("missing {what}\n\n{}", crate::USAGE)))
}

fn open(db_path: Option<&str>) -> Result<(String, Database), CliError> {
    let path = db_path.ok_or_else(|| CliError::new("missing <db> argument"))?;
    let db = load_database(path).map_err(|e| CliError::new(format!("cannot open {path}: {e}")))?;
    Ok((path.to_string(), db))
}

/// `xia init <db>`
pub fn init(db_path: Option<&str>) -> Result<String, CliError> {
    let path = db_path.ok_or_else(|| CliError::new("missing <db> argument"))?;
    if std::path::Path::new(path).exists() {
        return Err(CliError::new(format!("{path} already exists")));
    }
    let db = Database::new();
    save_database(&db, path)?;
    Ok(format!("created empty database {path}\n"))
}

/// `xia load <db> <collection> <file...>`
pub fn load(args: &[String]) -> Result<String, CliError> {
    let (path, mut db) = open(args.first().map(|s| s.as_str()))?;
    let collection = require(args, 1, "<collection>")?.to_string();
    let files = &args[2..];
    if files.is_empty() {
        return Err(CliError::new("no XML files given"));
    }
    let mut loaded = 0usize;
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| CliError::new(format!("cannot read {file}: {e}")))?;
        let coll = db.create_collection(&collection);
        coll.insert_xml(&text)
            .map_err(|e| CliError::new(format!("{file}: {e}")))?;
        loaded += 1;
    }
    db.runstats_all();
    save_database(&db, &path)?;
    Ok(format!(
        "loaded {loaded} document(s) into {collection}; {path} saved\n"
    ))
}

/// `xia stats <db>`
pub fn stats(db_path: Option<&str>) -> Result<String, CliError> {
    let (_, mut db) = open(db_path)?;
    db.runstats_all();
    let mut out = String::new();
    for name in db.collection_names().iter().map(|s| s.to_string()) {
        let coll = db.collection(&name).expect("listed collection");
        let stats = db.stats_cached(&name).expect("stats refreshed");
        let _ = writeln!(
            out,
            "collection {name}: {} docs, {} nodes, {} distinct paths, {:.1} KiB of values",
            stats.doc_count,
            stats.node_count,
            coll.vocab().paths.len(),
            stats.value_bytes as f64 / 1024.0
        );
        // Top paths by node count.
        let mut paths: Vec<_> = coll.vocab().paths.iter().map(|(id, _)| id).collect();
        paths.sort_by_key(|&id| std::cmp::Reverse(stats.path(id).node_count));
        for &id in paths.iter().take(8) {
            let ps = stats.path(id);
            let _ = writeln!(
                out,
                "  {:<50} nodes={:<7} distinct={:<6}",
                coll.vocab().path_string(id),
                ps.node_count,
                ps.distinct_values
            );
        }
    }
    if out.is_empty() {
        out.push_str("database is empty\n");
    }
    Ok(out)
}

/// First line of a statement, for one-line trace rows.
fn first_line(text: &str) -> &str {
    text.lines().next().unwrap_or("").trim()
}

/// Builds the trace report for a finished advisor run: a snapshot of the
/// telemetry sink plus per-statement what-if costs. The snapshot is taken
/// *before* [`xia_advisor::TuningReport::build`] so its extra optimizer
/// calls do not pollute the counters being reported.
fn trace_report(
    db: &mut Database,
    workload: &xia_workloads::Workload,
    set: &xia_advisor::CandidateSet,
    rec: &xia_advisor::Recommendation,
    telemetry: &xia_obs::Telemetry,
) -> xia_obs::TraceReport {
    let mut tr = telemetry.report();
    let full = xia_advisor::TuningReport::build(db, workload, set, rec);
    for s in &full.statements {
        tr.push_statement(first_line(&s.text), s.cost_before, s.cost_after);
    }
    tr
}

/// `xia explain <db> <statement>` (plan mode) or
/// `xia explain <db> -w <workload> -b <budget> [-a <algo>]` (advisor mode).
pub fn explain(args: &[String]) -> Result<String, CliError> {
    if args.len() >= 2 && args[1].starts_with('-') {
        return explain_advisor(args);
    }
    let (_, mut db) = open(args.first().map(|s| s.as_str()))?;
    let text = require(args, 1, "<statement>")?;
    let stmt = parse_statement(text).map_err(CliError::new)?;
    db.runstats_all();
    let coll = stmt.collection().to_string();
    let (collection, catalog, stats) = db
        .parts(&coll)
        .ok_or_else(|| CliError::new(format!("no collection named {coll}")))?;
    let optimizer = Optimizer::new(collection, stats, catalog);
    let plan = optimizer.optimize(&stmt);
    let mut out = String::new();
    let _ = writeln!(out, "{}", xia_optimizer::plan::render_plan(&plan, catalog));
    let candidates = optimizer.enumerate_indexes(&stmt);
    if !candidates.is_empty() {
        let _ = writeln!(out, "indexable patterns:");
        for c in candidates {
            let _ = writeln!(out, "  {} [{}]", c.pattern, c.kind);
        }
    }
    Ok(out)
}

/// Advisor-mode explain: run the full pipeline and print a structured
/// breakdown — phase timings, what-if call accounting, and per-statement
/// cost deltas — instead of a single statement's plan.
fn explain_advisor(args: &[String]) -> Result<String, CliError> {
    let (_, mut db) = open(args.first().map(|s| s.as_str()))?;
    let mut workload_file = None;
    let mut budget: Option<u64> = None;
    let mut algo = SearchAlgorithm::TopDownFull;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-w" | "--workload" => {
                workload_file = Some(require(args, i + 1, "workload file after -w")?.to_string());
                i += 2;
            }
            "-b" | "--budget" => {
                let v = require(args, i + 1, "budget after -b")?;
                budget =
                    Some(parse_size(v).ok_or_else(|| CliError::new(format!("bad budget `{v}`")))?);
                i += 2;
            }
            "-a" | "--algo" => {
                algo = parse_algo(require(args, i + 1, "algorithm after -a")?)?;
                i += 2;
            }
            other => return Err(CliError::new(format!("unknown flag `{other}`"))),
        }
    }
    let workload_file = workload_file.ok_or_else(|| CliError::new("missing -w <workload-file>"))?;
    let budget = budget.ok_or_else(|| CliError::new("missing -b <budget>"))?;
    let text = std::fs::read_to_string(&workload_file)
        .map_err(|e| CliError::new(format!("cannot read {workload_file}: {e}")))?;
    let workload = parse_workload(&text).map_err(CliError::new)?;
    if workload.is_empty() {
        return Err(CliError::new("workload file contains no statements"));
    }

    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut db, &workload, &params);
    let rec = Advisor::recommend_prepared(&mut db, &workload, &set, budget, algo, &params);
    let tr = trace_report(&mut db, &workload, &set, &rec, &params.telemetry);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "advisor run: {} statements, {} candidates ({} basic), algorithm {}",
        workload.len(),
        rec.candidates_total,
        rec.candidates_basic,
        algo.name()
    );
    let _ = writeln!(
        out,
        "recommended {} index(es), {} bytes, estimated speedup {:.2}x, {:.1} ms",
        rec.indexes.len(),
        rec.total_size,
        rec.speedup,
        rec.advisor_time.as_secs_f64() * 1e3
    );
    out.push_str(&tr.to_text());
    Ok(out)
}

/// `xia exec <db> <statement>`
pub fn exec(args: &[String]) -> Result<String, CliError> {
    let (path, mut db) = open(args.first().map(|s| s.as_str()))?;
    let text = require(args, 1, "<statement>")?;
    let stmt = parse_statement(text).map_err(CliError::new)?;
    db.runstats_all();
    let coll = stmt.collection().to_string();
    let mut out = String::new();
    if stmt.is_modification() {
        match &stmt {
            xia_xpath::Statement::Insert { xml, .. } => {
                let xml = xml.clone();
                db.create_collection(&coll);
                let (collection, catalog) = db
                    .collection_and_catalog_mut(&coll)
                    .expect("collection just created");
                xia_optimizer::exec::apply_insert(&xml, collection, catalog)
                    .map_err(CliError::new)?;
                let _ = writeln!(out, "1 document inserted");
            }
            xia_xpath::Statement::Delete { .. } => {
                let (collection, catalog) = db
                    .collection_and_catalog_mut(&coll)
                    .ok_or_else(|| CliError::new(format!("no collection named {coll}")))?;
                let victims = xia_optimizer::exec::apply_delete(&stmt, collection, catalog)
                    .map_err(CliError::new)?;
                let _ = writeln!(out, "{} document(s) deleted", victims.len());
            }
            xia_xpath::Statement::Update { .. } => {
                let (collection, catalog) = db
                    .collection_and_catalog_mut(&coll)
                    .ok_or_else(|| CliError::new(format!("no collection named {coll}")))?;
                let updated = xia_optimizer::exec::apply_update(&stmt, collection, catalog)
                    .map_err(CliError::new)?;
                let _ = writeln!(out, "{updated} node(s) updated");
            }
            xia_xpath::Statement::Query(_) => unreachable!("is_modification checked"),
        }
        db.runstats_all();
        save_database(&db, &path)?;
        return Ok(out);
    }
    let (collection, catalog, stats) = db
        .parts(&coll)
        .ok_or_else(|| CliError::new(format!("no collection named {coll}")))?;
    let optimizer = Optimizer::new(collection, stats, catalog);
    let plan = optimizer.optimize(&stmt);
    let result = execute_query(&stmt, &plan, collection, catalog).map_err(CliError::new)?;
    let _ = writeln!(
        out,
        "{} document(s) matched, {} item(s); plan: {plan}",
        result.docs_matched, result.items
    );
    // Show a result sample.
    let items = xia_optimizer::execute_query_items(&stmt, &plan, collection, catalog)
        .map_err(CliError::new)?;
    const SAMPLE: usize = 5;
    for item in items.iter().take(SAMPLE) {
        let _ = writeln!(out, "  {item}");
    }
    if items.len() > SAMPLE {
        let _ = writeln!(out, "  ... {} more", items.len() - SAMPLE);
    }
    Ok(out)
}

fn parse_algo(s: &str) -> Result<SearchAlgorithm, CliError> {
    SearchAlgorithm::ALL
        .into_iter()
        .find(|a| a.name() == s)
        .ok_or_else(|| {
            CliError::new(format!(
                "unknown algorithm `{s}` (expected one of: greedy, heuristics, topdown-lite, topdown-full, dp)"
            ))
        })
}

/// How `--trace` output should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Text,
    Json,
}

/// `xia recommend <db> -w <file> -b <bytes> [-a <algo>] [--apply]
/// [--report] [--trace[=json|text]]`
pub fn recommend(args: &[String]) -> Result<String, CliError> {
    let (path, mut db) = open(args.first().map(|s| s.as_str()))?;
    let mut workload_file = None;
    let mut budget: Option<u64> = None;
    let mut algo = SearchAlgorithm::TopDownFull;
    let mut apply = false;
    let mut report = false;
    let mut trace: Option<TraceFormat> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-w" | "--workload" => {
                workload_file = Some(require(args, i + 1, "workload file after -w")?.to_string());
                i += 2;
            }
            "-b" | "--budget" => {
                let v = require(args, i + 1, "budget after -b")?;
                budget =
                    Some(parse_size(v).ok_or_else(|| CliError::new(format!("bad budget `{v}`")))?);
                i += 2;
            }
            "-a" | "--algo" => {
                algo = parse_algo(require(args, i + 1, "algorithm after -a")?)?;
                i += 2;
            }
            "--apply" => {
                apply = true;
                i += 1;
            }
            "--report" => {
                report = true;
                i += 1;
            }
            other if other == "--trace" || other.starts_with("--trace=") => {
                trace = Some(match other.strip_prefix("--trace=") {
                    None | Some("text") => TraceFormat::Text,
                    Some("json") => TraceFormat::Json,
                    Some(bad) => {
                        return Err(CliError::new(format!(
                            "bad trace format `{bad}` (expected json or text)"
                        )))
                    }
                });
                i += 1;
            }
            other => return Err(CliError::new(format!("unknown flag `{other}`"))),
        }
    }
    let workload_file = workload_file.ok_or_else(|| CliError::new("missing -w <workload-file>"))?;
    let budget = budget.ok_or_else(|| CliError::new("missing -b <budget>"))?;
    let text = std::fs::read_to_string(&workload_file)
        .map_err(|e| CliError::new(format!("cannot read {workload_file}: {e}")))?;
    let workload = parse_workload(&text).map_err(CliError::new)?;
    if workload.is_empty() {
        return Err(CliError::new("workload file contains no statements"));
    }

    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut db, &workload, &params);
    let rec = Advisor::recommend_prepared(&mut db, &workload, &set, budget, algo, &params);
    // Snapshot the trace before any follow-up optimizer work (the tuning
    // report re-costs the workload) can inflate the counters.
    let traced = trace.map(|fmt| {
        (
            fmt,
            trace_report(&mut db, &workload, &set, &rec, &params.telemetry),
        )
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "workload: {} statements; candidates: {} basic, {} total",
        workload.len(),
        rec.candidates_basic,
        rec.candidates_total
    );
    let _ = writeln!(
        out,
        "algorithm {}: estimated speedup {:.2}x, {} indexes ({} general, {} specific), {} bytes, {} optimizer calls",
        algo.name(),
        rec.speedup,
        rec.indexes.len(),
        rec.general_count,
        rec.specific_count,
        rec.total_size,
        rec.eval_stats.optimizer_calls
    );
    for ix in &rec.indexes {
        let _ = writeln!(
            out,
            "CREATE INDEX ON {} PATTERN '{}' AS {};",
            ix.collection, ix.pattern, ix.kind
        );
    }
    if report {
        let full = xia_advisor::TuningReport::build(&mut db, &workload, &set, &rec);
        let _ = writeln!(
            out,
            "
{}",
            full.render()
        );
    }
    match traced {
        Some((TraceFormat::Json, tr)) => {
            let _ = writeln!(out, "{}", tr.to_json());
        }
        Some((TraceFormat::Text, tr)) => {
            out.push_str("--- trace ---\n");
            out.push_str(&tr.to_text());
        }
        None => {}
    }
    if apply {
        let n = Advisor::materialize(&mut db, &set, &rec.config);
        db.runstats_all();
        save_database(&db, &path)?;
        let _ = writeln!(out, "applied: {n} physical index(es) built; {path} saved");
    }
    Ok(out)
}

/// `xia whatif <db> -w <file> -i <collection>:<pattern>:<string|numerical> ...`
pub fn whatif(args: &[String]) -> Result<String, CliError> {
    let (_, mut db) = open(args.first().map(|s| s.as_str()))?;
    let mut workload_file = None;
    let mut specs: Vec<(String, xia_xpath::LinearPath, xia_xpath::ValueKind)> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-w" | "--workload" => {
                workload_file = Some(require(args, i + 1, "workload file after -w")?.to_string());
                i += 2;
            }
            "-i" | "--index" => {
                let spec = require(args, i + 1, "index spec after -i")?;
                specs.push(parse_index_spec(spec)?);
                i += 2;
            }
            other => return Err(CliError::new(format!("unknown flag `{other}`"))),
        }
    }
    let workload_file = workload_file.ok_or_else(|| CliError::new("missing -w <workload-file>"))?;
    if specs.is_empty() {
        return Err(CliError::new("missing -i <collection>:<pattern>:<kind>"));
    }
    let text = std::fs::read_to_string(&workload_file)
        .map_err(|e| CliError::new(format!("cannot read {workload_file}: {e}")))?;
    let workload = parse_workload(&text).map_err(CliError::new)?;
    let rec = Advisor::what_if(&mut db, &workload, &specs, &AdvisorParams::default());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "what-if configuration: estimated speedup {:.2}x, benefit {:.1}, {} bytes",
        rec.speedup, rec.est_benefit, rec.total_size
    );
    for ix in &rec.indexes {
        let _ = writeln!(
            out,
            "  {} '{}' [{}] {} bytes",
            ix.collection, ix.pattern, ix.kind, ix.size
        );
    }
    Ok(out)
}

/// Parses `collection:pattern:kind`, e.g. `SDOC:/Security/Symbol:string`.
pub fn parse_index_spec(
    spec: &str,
) -> Result<(String, xia_xpath::LinearPath, xia_xpath::ValueKind), CliError> {
    let (coll, rest) = spec.split_once(':').ok_or_else(|| {
        CliError::new(format!("bad index spec `{spec}` (collection:pattern:kind)"))
    })?;
    let (pattern, kind) = rest.rsplit_once(':').ok_or_else(|| {
        CliError::new(format!("bad index spec `{spec}` (collection:pattern:kind)"))
    })?;
    let kind = match kind {
        "string" | "str" => xia_xpath::ValueKind::Str,
        "numerical" | "num" | "double" => xia_xpath::ValueKind::Num,
        other => return Err(CliError::new(format!("bad index kind `{other}`"))),
    };
    let pattern = xia_xpath::parse_linear_path(pattern).map_err(CliError::new)?;
    Ok((coll.to_string(), pattern, kind))
}

/// `xia indexes <db>`
pub fn indexes(db_path: Option<&str>) -> Result<String, CliError> {
    let (_, db) = open(db_path)?;
    let mut out = String::new();
    for name in db.collection_names() {
        let catalog = db.catalog(name).expect("listed collection");
        for def in catalog.iter().filter(|d| !d.is_virtual()) {
            let _ = writeln!(
                out,
                "{name}: {} [{}] entries={} size={}B levels={}",
                def.pattern, def.kind, def.stats.entries, def.stats.size_bytes, def.stats.levels
            );
        }
    }
    if out.is_empty() {
        out.push_str("no physical indexes\n");
    }
    Ok(out)
}

/// Parses sizes like `1048576`, `64k`, `10m`, `2g`.
pub fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim().to_ascii_lowercase();
    let (num, mult) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(prefix) => {
            let mult = match s.as_bytes()[s.len() - 1] {
                b'k' => 1024,
                b'm' => 1024 * 1024,
                b'g' => 1024 * 1024 * 1024,
                _ => unreachable!("strip_suffix matched"),
            };
            (prefix, mult)
        }
        None => (s.as_str(), 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xia_cli_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_size_suffixes() {
        assert_eq!(parse_size("1024"), Some(1024));
        assert_eq!(parse_size("64k"), Some(64 * 1024));
        assert_eq!(parse_size("10M"), Some(10 * 1024 * 1024));
        assert_eq!(parse_size("2g"), Some(2 * 1024 * 1024 * 1024));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn init_load_stats_explain_exec_recommend_round_trip() {
        let dir = tmpdir();
        let db = dir.join("t.xiadb").to_string_lossy().to_string();

        // init
        let out = init(Some(&db)).unwrap();
        assert!(out.contains("created"));
        assert!(init(Some(&db)).is_err(), "init must refuse to overwrite");

        // load documents — enough data, with realistic bulk, that an index
        // pays off.
        let filler = "settlement clearing custodian tranche coupon ".repeat(40);
        let mut file_args = vec![db.clone(), "SDOC".to_string()];
        for i in 0..60 {
            let f = dir.join(format!("doc{i}.xml"));
            std::fs::write(
                &f,
                format!(
                    "<Security><Symbol>{}</Symbol><Yield>{}.5</Yield>\
                     <Prospectus>{filler}</Prospectus></Security>",
                    if i == 0 {
                        "IBM".to_string()
                    } else {
                        format!("S{i}")
                    },
                    i % 9
                ),
            )
            .unwrap();
            file_args.push(f.to_string_lossy().to_string());
        }
        let out = load(&file_args).unwrap();
        assert!(out.contains("loaded 60"));

        // stats
        let out = stats(Some(&db)).unwrap();
        assert!(out.contains("collection SDOC: 60 docs"), "{out}");
        assert!(out.contains("/Security/Symbol"));

        // explain
        let out = explain(&s(&[
            &db,
            r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "IBM" return $s"#,
        ]))
        .unwrap();
        assert!(out.contains("SCAN"), "{out}");
        assert!(out.contains("/Security/Symbol"), "{out}");

        // exec query
        let out = exec(&s(&[
            &db,
            r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "IBM" return $s"#,
        ]))
        .unwrap();
        assert!(out.contains("1 document(s) matched"), "{out}");

        // exec insert persists
        let out = exec(&s(&[
            &db,
            "insert into SDOC <Security><Symbol>GE</Symbol></Security>",
        ]))
        .unwrap();
        assert!(out.contains("inserted"));
        let out = stats(Some(&db)).unwrap();
        assert!(out.contains("61 docs"), "{out}");

        // recommend + apply
        let wl = dir.join("w.xq");
        std::fs::write(
            &wl,
            "for $s in SECURITY('SDOC')/Security\nwhere $s/Symbol = \"IBM\"\nreturn $s\n",
        )
        .unwrap();
        let out = recommend(&s(&[
            &db,
            "-w",
            wl.to_str().unwrap(),
            "-b",
            "10m",
            "-a",
            "heuristics",
            "--report",
            "--apply",
        ]))
        .unwrap();
        assert!(out.contains("CREATE INDEX"), "{out}");
        assert!(out.contains("applied"), "{out}");
        assert!(out.contains("per-statement impact"), "{out}");

        // indexes now lists the materialized index
        let out = indexes(Some(&db)).unwrap();
        assert!(out.contains("/Security/Symbol"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exec_delete_and_update_persist() {
        let dir = tmpdir();
        let db = dir.join("du.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        let mut file_args = vec![db.clone(), "SDOC".to_string()];
        for i in 0..10 {
            let f = dir.join(format!("d{i}.xml"));
            std::fs::write(
                &f,
                format!("<Security><Symbol>S{i}</Symbol><Yield>{i}</Yield></Security>"),
            )
            .unwrap();
            file_args.push(f.to_string_lossy().to_string());
        }
        load(&file_args).unwrap();

        let out = exec(&s(&[
            &db,
            r#"update SDOC set /Security/Yield = 99 where /Security[Symbol = "S3"]"#,
        ]))
        .unwrap();
        assert!(out.contains("1 node(s) updated"), "{out}");
        let out = exec(&s(&[&db, r#"collection('SDOC')/Security[Yield = 99]"#])).unwrap();
        assert!(out.contains("1 document(s) matched"), "{out}");

        let out = exec(&s(&[
            &db,
            r#"delete from SDOC where /Security[Symbol = "S5"]"#,
        ]))
        .unwrap();
        assert!(out.contains("1 document(s) deleted"), "{out}");
        let out = stats(Some(&db)).unwrap();
        assert!(out.contains("9 docs"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_index_spec_variants() {
        let (c, p, k) = parse_index_spec("SDOC:/Security/Symbol:string").unwrap();
        assert_eq!(c, "SDOC");
        assert_eq!(p.to_string(), "/Security/Symbol");
        assert_eq!(k, xia_xpath::ValueKind::Str);
        let (_, p, k) = parse_index_spec("X://Yield:num").unwrap();
        assert_eq!(p.to_string(), "//Yield");
        assert_eq!(k, xia_xpath::ValueKind::Num);
        assert!(parse_index_spec("nocolons").is_err());
        assert!(parse_index_spec("C:/a/b:floating").is_err());
        assert!(parse_index_spec("C:[bad:string").is_err());
    }

    #[test]
    fn whatif_prices_a_config() {
        let dir = tmpdir();
        let db = dir.join("w.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        let filler = "lorem ipsum dolor ".repeat(60);
        let mut file_args = vec![db.clone(), "SDOC".to_string()];
        for i in 0..40 {
            let f = dir.join(format!("w{i}.xml"));
            std::fs::write(
                &f,
                format!("<Security><Symbol>S{i}</Symbol><Pad>{filler}</Pad></Security>"),
            )
            .unwrap();
            file_args.push(f.to_string_lossy().to_string());
        }
        load(&file_args).unwrap();
        let wl = dir.join("w.xq");
        std::fs::write(&wl, "collection('SDOC')/Security[Symbol = \"S3\"]\n").unwrap();
        let out = whatif(&s(&[
            &db,
            "-w",
            wl.to_str().unwrap(),
            "-i",
            "SDOC:/Security/Symbol:string",
        ]))
        .unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("/Security/Symbol"), "{out}");
        // Missing flags error.
        assert!(whatif(&s(&[&db, "-w", wl.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Builds a small database plus workload file for trace/explain tests;
    /// returns (db path, workload path).
    fn trace_fixture(dir: &std::path::Path) -> (String, String) {
        let db = dir.join("t.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        let filler = "prospectus filler text ".repeat(50);
        let mut file_args = vec![db.clone(), "SDOC".to_string()];
        for i in 0..50 {
            let f = dir.join(format!("tr{i}.xml"));
            std::fs::write(
                &f,
                format!(
                    "<Security><Symbol>S{i}</Symbol><Yield>{}.5</Yield>\
                     <Pad>{filler}</Pad></Security>",
                    i % 9
                ),
            )
            .unwrap();
            file_args.push(f.to_string_lossy().to_string());
        }
        load(&file_args).unwrap();
        let wl = dir.join("w.xq");
        std::fs::write(
            &wl,
            "collection('SDOC')/Security[Symbol = \"S3\"]\n\n\
             collection('SDOC')/Security[Yield > 4.5]\n",
        )
        .unwrap();
        (db, wl.to_string_lossy().to_string())
    }

    #[test]
    fn recommend_trace_json_is_parseable_and_complete() {
        let dir = tmpdir().join("trace_json");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let out = recommend(&s(&[&db, "-w", &wl, "-b", "10m", "--trace=json"])).unwrap();
        let json_line = out
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("a JSON trace line");
        let tr = xia_obs::TraceReport::from_json(json_line).unwrap();
        let nonzero = tr.counters.iter().filter(|&&(_, v)| v > 0).count();
        assert!(nonzero >= 8, "only {nonzero} non-zero counters: {tr:?}");
        assert!(tr.counter("optimizer_evaluate_calls").unwrap() > 0);
        assert_eq!(tr.counter("optimizer_enumerate_calls"), Some(2));
        // The phase tree covers the whole pipeline.
        let advise = tr
            .phases
            .iter()
            .find(|p| p.name == "advise")
            .expect("advise root span");
        {
            let phase = "search";
            assert!(
                advise.child(phase).is_some(),
                "missing {phase} under advise"
            );
        }
        for phase in ["enumerate", "generalize", "size"] {
            assert!(
                advise.child(phase).is_some() || tr.phases.iter().any(|p| p.name == phase),
                "missing {phase} phase"
            );
        }
        assert!(advise.child("search").unwrap().child("evaluate").is_some());
        // Per-statement what-if rows for both workload statements.
        assert_eq!(tr.statements.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_trace_text_and_bad_format() {
        let dir = tmpdir().join("trace_text");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let out = recommend(&s(&[&db, "-w", &wl, "-b", "10m", "--trace"])).unwrap();
        assert!(out.contains("--- trace ---"), "{out}");
        assert!(out.contains("phases:"), "{out}");
        assert!(out.contains("optimizer_evaluate_calls"), "{out}");
        let err = recommend(&s(&[&db, "-w", &wl, "-b", "10m", "--trace=xml"])).unwrap_err();
        assert!(err.message.contains("bad trace format"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_advisor_mode_prints_breakdown() {
        let dir = tmpdir().join("explain_adv");
        std::fs::create_dir_all(&dir).unwrap();
        let (db, wl) = trace_fixture(&dir);
        let out = explain(&s(&[&db, "-w", &wl, "-b", "10m", "-a", "heuristics"])).unwrap();
        assert!(out.contains("advisor run: 2 statements"), "{out}");
        assert!(out.contains("phases:"), "{out}");
        assert!(out.contains("counters:"), "{out}");
        assert!(out.contains("statement what-if costs:"), "{out}");
        // Missing budget errors.
        assert!(explain(&s(&[&db, "-w", &wl])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommend_requires_flags() {
        let dir = tmpdir();
        let db = dir.join("r.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        assert!(recommend(&s(&[&db])).is_err());
        assert!(recommend(&s(&[&db, "-b", "1m"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_collection_errors() {
        let dir = tmpdir();
        let db = dir.join("u.xiadb").to_string_lossy().to_string();
        init(Some(&db)).unwrap();
        let err = explain(&s(&[&db, "collection('NOPE')/a[b = 1]"])).unwrap_err();
        assert!(err.message.contains("NOPE"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_dispatches_and_reports_unknown() {
        assert!(crate::run(&s(&["help"])).unwrap().contains("USAGE"));
        assert!(crate::run(&s(&["bogus"])).is_err());
        assert!(crate::run(&[]).is_err());
    }
}
