//! The `xia` binary: thin wrapper over [`xia_cli::run`].
//!
//! Exit codes: 0 success, 2 usage error, 3 bad input, 4 corrupt database,
//! 5 internal failure, 6 deadline/cancel partial result, 7 resumed from
//! checkpoint. Error context chains print one line per cause.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match xia_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            if output.code != 0 {
                std::process::exit(output.code);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
