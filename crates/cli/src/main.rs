//! The `xia` binary: thin wrapper over [`xia_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match xia_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
