//! Workload-file parsing: statements separated by blank lines, with
//! comment lines (`#` or `--`) and optional `@freq <n>` annotations.

use xia_workloads::Workload;
use xia_xpath::ParseError;

/// Parses workload-file text into a [`Workload`].
///
/// ```text
/// # point lookup, runs 50x per minute
/// @freq 50
/// for $s in SECURITY('SDOC')/Security
/// where $s/Symbol = "IBM"
/// return $s
///
/// -- reporting query
/// collection('SDOC')/Security[Yield > 4.5]
/// ```
pub fn parse_workload(text: &str) -> Result<Workload, ParseError> {
    let mut workload = Workload::new();
    for (freq, stmt) in split_statements(text) {
        workload.push_with_freq(&stmt, freq)?;
    }
    Ok(workload)
}

/// Splits workload-file text into `(frequency, statement-text)` pairs.
pub fn split_statements(text: &str) -> Vec<(f64, String)> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut freq = 1.0f64;
    let mut pending_freq = 1.0f64;
    let flush = |out: &mut Vec<(f64, String)>, current: &mut String, freq: f64| {
        let stmt = current.trim().to_string();
        if !stmt.is_empty() {
            out.push((freq, stmt));
        }
        current.clear();
    };
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') || trimmed.starts_with("--") {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("@freq") {
            pending_freq = rest.trim().parse().unwrap_or(1.0);
            continue;
        }
        if trimmed.is_empty() {
            flush(&mut out, &mut current, freq);
            freq = pending_freq;
            pending_freq = 1.0;
            continue;
        }
        if current.is_empty() {
            freq = pending_freq;
            pending_freq = 1.0;
        }
        current.push_str(line);
        current.push('\n');
    }
    flush(&mut out, &mut current, freq);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_blank_lines() {
        let text = "collection('C')/a[b = 1]\n\ncollection('C')/a[c = 2]\n";
        let stmts = split_statements(text);
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].1, "collection('C')/a[b = 1]");
    }

    #[test]
    fn multi_line_statements_stay_together() {
        let text = "for $s in S('C')/a\nwhere $s/b = 1\nreturn $s\n\ncollection('C')/x[y = 2]";
        let stmts = split_statements(text);
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].1.contains("where"));
    }

    #[test]
    fn comments_are_skipped() {
        let text = "# comment\n-- another\ncollection('C')/a[b = 1]";
        let stmts = split_statements(text);
        assert_eq!(stmts.len(), 1);
    }

    #[test]
    fn freq_annotations_apply_to_next_statement() {
        let text = "@freq 50\ncollection('C')/a[b = 1]\n\ncollection('C')/a[c = 2]";
        let stmts = split_statements(text);
        assert_eq!(stmts[0].0, 50.0);
        assert_eq!(stmts[1].0, 1.0);
    }

    #[test]
    fn parses_into_workload() {
        let text = "@freq 3\ncollection('C')/a[b = 1]\n\ndelete from C where /a[b = 2]";
        let w = parse_workload(text).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.entries()[0].freq, 3.0);
        assert!(w.entries()[1].statement.is_modification());
    }

    #[test]
    fn bad_statement_reports_error() {
        assert!(parse_workload("for $x in nonsense").is_err());
    }

    #[test]
    fn empty_input_is_empty_workload() {
        assert!(parse_workload("").unwrap().is_empty());
        assert!(parse_workload("# just comments\n\n").unwrap().is_empty());
    }
}
