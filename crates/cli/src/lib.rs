//! # xia-cli
//!
//! The `xia` command-line tool: an end-user frontend over the XML Index
//! Advisor. All command logic lives in this library (the binary is a thin
//! `main`), so every command is unit-testable without spawning processes.
//!
//! ```text
//! xia init      <db>                          create an empty database file
//! xia load      <db> <collection> <file...>   load XML documents [--jobs <n>] [--no-stream]
//! xia stats     <db>                          collection/path statistics
//! xia explain   <db> <statement>              show the optimizer's plan
//! xia exec      <db> <statement>              execute a query
//! xia recommend <db> -w <workload> -b <bytes> [-a <algo>] [--jobs <n>] [--apply] [--trace]
//! xia whatif    <db> -w <workload> -i <spec>  price a hand-written config
//! xia indexes   <db>                          list physical indexes
//! ```
//!
//! Workload files contain statements separated by blank lines; `#` and
//! `--` lines are comments.

pub mod commands;
pub mod workload_file;

use std::fmt;

/// What went wrong, mapped to a distinct process exit code so scripts can
/// react without parsing stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Bad command line: unknown command/flag, missing argument. Exit 2.
    Usage,
    /// Bad user input: unparseable statement, unknown collection, missing
    /// or unreadable file. Exit 3.
    Input,
    /// The database file is corrupt or truncated. Exit 4.
    CorruptDb,
    /// Internal failure (injected fault, strict-mode degradation, bug).
    /// Exit 5.
    Internal,
}

impl ErrorKind {
    /// The process exit code for this kind of failure.
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorKind::Usage => 2,
            ErrorKind::Input => 3,
            ErrorKind::CorruptDb => 4,
            ErrorKind::Internal => 5,
        }
    }
}

/// CLI error: a message for the user plus a process exit code. The message
/// may span multiple lines — one per link of the underlying error's
/// context chain.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Failure class, determines the exit code.
    pub kind: ErrorKind,
}

impl CliError {
    /// Creates an input error (exit 3) from anything printable.
    pub fn new(message: impl fmt::Display) -> Self {
        Self::with_kind(message, ErrorKind::Input)
    }

    /// Creates a usage error (exit 2).
    pub fn usage(message: impl fmt::Display) -> Self {
        Self::with_kind(message, ErrorKind::Usage)
    }

    /// Creates a corrupt-database error (exit 4).
    pub fn corrupt(message: impl fmt::Display) -> Self {
        Self::with_kind(message, ErrorKind::CorruptDb)
    }

    /// Creates an internal error (exit 5).
    pub fn internal(message: impl fmt::Display) -> Self {
        Self::with_kind(message, ErrorKind::Internal)
    }

    /// Creates an error with an explicit kind.
    pub fn with_kind(message: impl fmt::Display, kind: ErrorKind) -> Self {
        Self {
            message: message.to_string(),
            kind,
        }
    }

    /// The process exit code for this error.
    pub fn exit_code(&self) -> i32 {
        self.kind.exit_code()
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Output of a successful command: the text to print plus the process
/// exit code. Most commands exit 0; `recommend` reserves nonzero success
/// codes for lifecycle outcomes scripts need to distinguish — 6 for a
/// deadline/cancel partial result, 7 for a run resumed from a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text to print on stdout.
    pub text: String,
    /// Process exit code (0 = plain success).
    pub code: i32,
}

impl CmdOutput {
    /// Successful output with an explicit exit code.
    pub fn with_code(text: String, code: i32) -> Self {
        Self { text, code }
    }
}

impl From<String> for CmdOutput {
    fn from(text: String) -> Self {
        Self { text, code: 0 }
    }
}

impl std::ops::Deref for CmdOutput {
    type Target = str;
    fn deref(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for CmdOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<xia_storage::PersistError> for CliError {
    fn from(e: xia_storage::PersistError) -> Self {
        let kind = match &e {
            xia_storage::PersistError::Corrupt { .. } | xia_storage::PersistError::Format(_) => {
                ErrorKind::CorruptDb
            }
            _ => ErrorKind::Input,
        };
        CliError::with_kind(e, kind)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(e)
    }
}

impl From<xia_advisor::XiaError> for CliError {
    fn from(e: xia_advisor::XiaError) -> Self {
        use xia_advisor::XiaError;
        let kind = match e.root() {
            XiaError::Persist(p) => {
                return CliError {
                    message: e.chain().join("\n  caused by: "),
                    kind: match p {
                        xia_storage::PersistError::Corrupt { .. }
                        | xia_storage::PersistError::Format(_) => ErrorKind::CorruptDb,
                        _ => ErrorKind::Input,
                    },
                }
            }
            XiaError::Parse(_)
            | XiaError::Xml(_)
            | XiaError::EmptyWorkload
            | XiaError::AllStatementsQuarantined { .. }
            | XiaError::UnknownCollection(_) => ErrorKind::Input,
            _ => ErrorKind::Internal,
        };
        CliError {
            message: e.chain().join("\n  caused by: "),
            kind,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
xia — XML Index Advisor

USAGE:
  xia init      <db>                           create an empty database file
  xia load      <db> <collection> <file...>    load XML documents into a collection
                [--jobs <n>] [--no-stream]   parallel batch ingest (all-or-nothing);
                                             --no-stream uses the DOM parser instead
                                             of the default streaming path (the
                                             result is byte-identical either way)
  xia stats     <db>                           print collection and path statistics
  xia explain   <db> <statement>               show the best plan and its cost
  xia explain   <db> -w <workload-file> -b <budget-bytes> [-a <algo>]
                [--why <index-pattern>]      advisor breakdown: phase timings,
                                             counters, per-statement what-if costs;
                                             --why replays the decision journal for
                                             one pattern's derivation chain
  xia exec      <db> <statement>               execute a query statement
  xia recommend <db> -w <workload-file> -b <budget-bytes>
                [-a greedy|heuristics|topdown-lite|topdown-full|dp|cophy]
                [--apply] [--report] [--trace[=json|text]] [--strict]
                [--journal <path>] [--what-if-budget <calls>] [--jobs <n>]
                [--no-prune] [--no-fastpath] [--compress] [--no-compress]
                [--inject <site>:<rate>]
                [--fault-seed <n>] [--deadline-ms <n>] [--checkpoint <path>]
                [--resume <path>] [--mem-budget <bytes>]
                [--cancel-after-polls <k>]
  xia whatif    <db> -w <workload-file> -i <coll>:<pattern>:<string|numerical> ...
                                             price a hand-written configuration
  xia indexes   <db>                           list physical indexes
  xia serve     <db> (--tcp <addr> | --socket <path>)
                [--max-conns <n>] [--drift-threshold <0..1>]
                [--what-if-budget <calls>] [--jobs <n>]
                [--inject <site>:<rate>] [--fault-seed <n>] [--no-prewarm]
                                             run the warm advisor service
  xia client    (--tcp <addr> | --socket <path>) <verb> [...]
                                             talk to a running server; verbs:
                                             ping, hello, stats, journal, reset,
                                             shutdown,
                                             observe (-w <file> | <stmt>...),
                                             recommend -b <budget> [-a <algo>]
                                               [-w <file>] (-w observes first,
                                               on the same connection)

`serve` keeps one database resident with statistics, prepared candidates,
and warm what-if cost caches shared across requests; each connection gets
its own tuning session. Sessions re-advise automatically when the
observed workload's template-mass distribution drifts past
--drift-threshold (total-variation distance; default 0.25). A client
error reply exits with the same code the equivalent local command would.

Workload files: statements separated by blank lines; '#'/'--' comment lines.
Statements that fail to parse are quarantined (reported, then skipped) by
`recommend`; other commands reject them.

--journal <path> writes the advisor's decision-provenance journal as
JSONL (one event per line: candidate generation, generalizations, prunes,
what-if evaluations, knapsack decisions). All events are emitted on the
coordinator, so the file is byte-identical for every --jobs value.

--jobs (or -j) sets the what-if worker-thread count for benefit
evaluation (0 = one per core; default 1, or the XIA_JOBS environment
variable). The recommendation is identical for every value.

--no-prune disables statement-relevance pruning (the per-statement cost
cache shortcut) for `recommend` and advisor-mode `explain`; the
recommendation is byte-identical either way, only slower.

--no-fastpath disables the interning fast path (semi-naive generalization
fixpoint, memoized containment) for `recommend` and advisor-mode
`explain`; candidate sets and recommendations are byte-identical either
way, only slower.

-a cophy scales to huge workloads: the workload is first compressed into
weighted cost-identity templates (on by default for cophy; --no-compress
advises over raw statements, bitwise-identically to the uncompressed
run), then a std-only LP/knapsack relaxation picks the configuration and
reports a certified quality bound. Applies to `recommend` and
advisor-mode `explain`.

Fault injection (for robustness testing): --inject storage-io:0.05
injects I/O faults in 5% of storage operations; sites are storage-io,
optimizer-cost, stats-unavailable, checkpoint-io. --fault-seed makes runs
reproducible.

Run lifecycle: --deadline-ms bounds the advisor's wall-clock time; on
expiry the run unwinds cooperatively and prints the best configuration
found so far (a *partial* recommendation, exit 6). --checkpoint <path>
periodically writes a checksummed, atomically-renamed snapshot of the
what-if cost work done so far; --resume <path> warm-starts a new run from
such a snapshot (exit 7) and produces a recommendation byte-identical to
an uninterrupted run at any --jobs. A stale or corrupt checkpoint falls
back to a cold start with a warning. --mem-budget bounds approximate live
cache memory; over budget, the evaluator walks a graceful-degradation
ladder (shrink memo -> drop statement cache -> heuristic-only costing),
journaling every demotion. --cancel-after-polls <k> cancels at the k-th
cooperative poll (a deterministic kill switch for testing).

Exit codes: 0 ok, 2 usage, 3 bad input, 4 corrupt database, 5 internal,
6 deadline/cancel partial result, 7 resumed from checkpoint.
";

/// Dispatches a full argument vector (excluding `argv[0]`). Returns the
/// output to print plus the process exit code.
pub fn run(args: &[String]) -> Result<CmdOutput, CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::usage(USAGE));
    };
    match cmd.as_str() {
        "init" => commands::init(args.get(1).map(|s| s.as_str())).map(Into::into),
        "load" => commands::load(&args[1..]).map(Into::into),
        "stats" => commands::stats(args.get(1).map(|s| s.as_str())).map(Into::into),
        "explain" => commands::explain(&args[1..]).map(Into::into),
        "exec" => commands::exec(&args[1..]).map(Into::into),
        "recommend" => commands::recommend(&args[1..]),
        "whatif" => commands::whatif(&args[1..]).map(Into::into),
        "indexes" => commands::indexes(args.get(1).map(|s| s.as_str())).map(Into::into),
        "serve" => commands::serve(&args[1..]).map(Into::into),
        "client" => commands::client(&args[1..]).map(Into::into),
        "help" | "--help" | "-h" => Ok(USAGE.to_string().into()),
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}
