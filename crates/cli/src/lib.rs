//! # xia-cli
//!
//! The `xia` command-line tool: an end-user frontend over the XML Index
//! Advisor. All command logic lives in this library (the binary is a thin
//! `main`), so every command is unit-testable without spawning processes.
//!
//! ```text
//! xia init      <db>                          create an empty database file
//! xia load      <db> <collection> <file...>   load XML documents
//! xia stats     <db>                          collection/path statistics
//! xia explain   <db> <statement>              show the optimizer's plan
//! xia exec      <db> <statement>              execute a query
//! xia recommend <db> -w <workload> -b <bytes> [-a <algo>] [--apply] [--trace]
//! xia whatif    <db> -w <workload> -i <spec>  price a hand-written config
//! xia indexes   <db>                          list physical indexes
//! ```
//!
//! Workload files contain statements separated by blank lines; `#` and
//! `--` lines are comments.

pub mod commands;
pub mod workload_file;

use std::fmt;

/// CLI error: a message for the user plus a process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl CliError {
    /// Creates an error from anything printable.
    pub fn new(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<xia_storage::PersistError> for CliError {
    fn from(e: xia_storage::PersistError) -> Self {
        CliError::new(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
xia — XML Index Advisor

USAGE:
  xia init      <db>                           create an empty database file
  xia load      <db> <collection> <file...>    load XML documents into a collection
  xia stats     <db>                           print collection and path statistics
  xia explain   <db> <statement>               show the best plan and its cost
  xia explain   <db> -w <workload-file> -b <budget-bytes> [-a <algo>]
                                             advisor breakdown: phase timings,
                                             counters, per-statement what-if costs
  xia exec      <db> <statement>               execute a query statement
  xia recommend <db> -w <workload-file> -b <budget-bytes>
                [-a greedy|heuristics|topdown-lite|topdown-full|dp]
                [--apply] [--report] [--trace[=json|text]]
  xia whatif    <db> -w <workload-file> -i <coll>:<pattern>:<string|numerical> ...
                                             price a hand-written configuration
  xia indexes   <db>                           list physical indexes

Workload files: statements separated by blank lines; '#'/'--' comment lines.
";

/// Dispatches a full argument vector (excluding `argv[0]`). Returns the
/// output to print.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::new(USAGE));
    };
    match cmd.as_str() {
        "init" => commands::init(args.get(1).map(|s| s.as_str())),
        "load" => commands::load(&args[1..]),
        "stats" => commands::stats(args.get(1).map(|s| s.as_str())),
        "explain" => commands::explain(&args[1..]),
        "exec" => commands::exec(&args[1..]),
        "recommend" => commands::recommend(&args[1..]),
        "whatif" => commands::whatif(&args[1..]),
        "indexes" => commands::indexes(args.get(1).map(|s| s.as_str())),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::new(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}
