//! XMark-like auction benchmark.
//!
//! XMark (Schmidt et al.) is the paper's secondary benchmark; its results
//! appear in the paper's tech report. The original benchmark is one large
//! auction-site document; following the paper's DB2 setup (documents in an
//! XML column), we store the site's entities as separate documents in one
//! collection: items, persons, and open auctions.

use crate::prng::Prng;
use xia_storage::Database;

/// Regions used for items.
pub const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Item categories.
pub const CATEGORIES: [&str; 8] = [
    "art",
    "books",
    "coins",
    "computers",
    "garden",
    "music",
    "sports",
    "toys",
];

/// Countries for person addresses.
pub const COUNTRIES: [&str; 8] = [
    "United States",
    "Germany",
    "France",
    "Japan",
    "Canada",
    "Brazil",
    "Kenya",
    "India",
];

/// Education levels in person profiles.
pub const EDUCATION: [&str; 4] = ["High School", "College", "Graduate School", "Other"];

/// Deterministic filler text approximating XMark's Shakespeare-derived
/// description paragraphs (the bulk of real XMark documents).
fn xmark_filler(seed: usize, words: usize) -> String {
    const LEXICON: [&str; 14] = [
        "gold",
        "amulet",
        "vintage",
        "rare",
        "mint",
        "signed",
        "antique",
        "original",
        "limited",
        "edition",
        "collectible",
        "pristine",
        "handcrafted",
        "imported",
    ];
    let mut out = String::with_capacity(words * 9);
    for k in 0..words {
        if k > 0 {
            out.push(' ');
        }
        out.push_str(LEXICON[(seed * 5 + k * 11) % LEXICON.len()]);
    }
    out
}

/// Collection name for XMark documents.
pub const XMARK_COLL: &str = "XMARK";

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Number of item documents.
    pub items: usize,
    /// Number of person documents.
    pub persons: usize,
    /// Number of open-auction documents.
    pub auctions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        Self {
            items: 400,
            persons: 300,
            auctions: 300,
            seed: 1337,
        }
    }
}

impl XmarkConfig {
    /// A smaller configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            items: 50,
            persons: 40,
            auctions: 40,
            seed: 5,
        }
    }
}

/// Generates the XMark-like collection into `db` and refreshes statistics.
pub fn generate(db: &mut Database, cfg: &XmarkConfig) {
    let mut rng = Prng::seed_from_u64(cfg.seed);
    let coll = db.create_collection(XMARK_COLL);

    for i in 0..cfg.items {
        let region = REGIONS[rng.gen_range(0..REGIONS.len())];
        let category = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
        let quantity = rng.gen_range(1..10) as f64;
        coll.build_doc("item", |b| {
            b.attr("id", format!("item{i}").as_str());
            b.leaf("location", COUNTRIES[rng.gen_range(0..COUNTRIES.len())]);
            b.leaf("region", region);
            b.leaf("category", category);
            b.leaf("quantity", quantity);
            b.leaf("name", format!("item name {i}").as_str());
            b.begin("description");
            b.leaf("text", xmark_filler(i, 140).as_str());
            b.leaf("parlist", xmark_filler(i + 3, 140).as_str());
            b.end();
            b.leaf(
                "payment",
                if rng.gen_bool(0.5) {
                    "Creditcard"
                } else {
                    "Cash"
                },
            );
            b.leaf("shipping", "Will ship internationally");
        });
    }

    for i in 0..cfg.persons {
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        let income = (rng.gen_range(9_000.0..120_000.0f64) * 100.0).round() / 100.0;
        let has_profile = rng.gen_bool(0.8);
        coll.build_doc("person", |b| {
            b.attr("id", format!("person{i}").as_str());
            b.leaf("name", format!("Person {i}").as_str());
            b.leaf("emailaddress", format!("mailto:p{i}@example.com").as_str());
            b.begin("address");
            b.leaf("city", format!("City{}", i % 25).as_str());
            b.leaf("country", country);
            b.end();
            b.leaf(
                "creditcard",
                format!(
                    "{:04} {:04} {:04} {:04}",
                    i,
                    i * 3 % 9999,
                    i * 7 % 9999,
                    i * 11 % 9999
                )
                .as_str(),
            );
            b.leaf("watch", xmark_filler(i, 110).as_str());
            if has_profile {
                b.begin("profile");
                b.leaf("income", income);
                b.leaf("education", EDUCATION[rng.gen_range(0..EDUCATION.len())]);
                b.leaf("interest", CATEGORIES[rng.gen_range(0..CATEGORIES.len())]);
                b.end();
            }
        });
    }

    for i in 0..cfg.auctions {
        let initial = (rng.gen_range(1.0..300.0f64) * 100.0).round() / 100.0;
        let bidders = rng.gen_range(0..5);
        let mut current = initial;
        coll.build_doc("open_auction", |b| {
            b.attr("id", format!("auction{i}").as_str());
            b.leaf("initial", initial);
            b.leaf("reserve", initial * 1.5);
            for bi in 0..bidders {
                let increase = (rng.gen_range(1.0..25.0f64) * 100.0).round() / 100.0;
                current += increase;
                b.begin("bidder");
                b.leaf(
                    "date",
                    format!("2007-{:02}-{:02}", 1 + bi, 10 + bi).as_str(),
                );
                b.leaf("increase", increase);
                b.end();
            }
            b.leaf("current", current);
            b.leaf(
                "itemref",
                format!("item{}", rng.gen_range(0..cfg.items.max(1))).as_str(),
            );
            b.leaf(
                "seller",
                format!("person{}", rng.gen_range(0..cfg.persons.max(1))).as_str(),
            );
            b.begin("annotation");
            b.leaf("description", xmark_filler(i, 130).as_str());
            b.leaf("happiness", rng.gen_range(1..11) as f64);
            b.end();
        });
    }

    db.runstats_all();
}

/// The XMark-like query workload (modeled on XMark Q1-style point queries
/// and value joins' local halves).
pub fn queries(cfg: &XmarkConfig) -> Vec<String> {
    let mut rng = Prng::seed_from_u64(cfg.seed ^ 0xa0c7);
    let pid = rng.gen_range(0..cfg.persons.max(1));
    let aid = rng.gen_range(0..cfg.auctions.max(1));
    vec![
        // XMark Q1: the name of the person with a given id.
        format!(r#"for $p in XMARK('XMARK')/person where $p/id = "person{pid}" return $p/name"#),
        // Items located in the United States (Q2-ish regional selection).
        r#"for $i in XMARK('XMARK')/item where $i/location = "United States" return $i/name"#
            .to_string(),
        // Auctions whose current price exceeds a threshold.
        r#"for $a in XMARK('XMARK')/open_auction[current > 200] return $a/itemref"#.to_string(),
        // Persons with high income (profile navigation).
        r#"for $p in XMARK('XMARK')/person[profile/income >= 100000] return $p/name"#.to_string(),
        // Persons interested in a category.
        r#"for $p in XMARK('XMARK')/person
           where $p/profile/interest = "computers"
           return <Out>{$p/name, $p/emailaddress}</Out>"#
            .to_string(),
        // Bid increases above a threshold (repeated element under auction).
        r#"for $a in XMARK('XMARK')/open_auction[bidder/increase > 20] return $a/current"#
            .to_string(),
        // Items of a category with quantity bound.
        r#"for $i in XMARK('XMARK')/item[quantity >= 5]
           where $i/category = "books"
           return $i/name"#
            .to_string(),
        // Point lookup on an auction id (attribute).
        format!(r#"for $a in XMARK('XMARK')/open_auction where $a/id = "auction{aid}" return $a"#),
        // Persons from a country, education filter.
        r#"for $p in XMARK('XMARK')/person
           where $p/address/country = "Germany" and $p/profile/education = "Graduate School"
           return $p/name"#
            .to_string(),
    ]
}

/// Extended XMark-style queries (modeled on the benchmark's Q10–Q14
/// class) exercising disjunctions, existence, and ordering.
pub fn extended_queries(_cfg: &XmarkConfig) -> Vec<String> {
    vec![
        // Items from either of two regions (disjunction).
        r#"for $i in XMARK('XMARK')/item[region = "europe" or region = "asia"]
           return $i/name"#
            .to_string(),
        // Persons with a profile (existence of an optional subtree).
        r#"for $p in XMARK('XMARK')/person
           where $p/profile
           return $p/name"#
            .to_string(),
        // Auctions ordered by current price.
        r#"for $a in XMARK('XMARK')/open_auction[current >= 100]
           order by $a/current descending
           return $a/itemref"#
            .to_string(),
        // SQL/XML surface over items.
        r#"SELECT XMLQUERY('$d/item/name') FROM XMARK
           WHERE XMLEXISTS('$d/item[category = "coins"]')"#
            .to_string(),
        // Let binding over the profile subtree.
        r#"for $p in XMARK('XMARK')/person
           let $prof := $p/profile
           where $prof/education = "College" and $prof/income >= 40000
           return $p/emailaddress"#
            .to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn generates_three_document_shapes() {
        let mut db = Database::new();
        let cfg = XmarkConfig::tiny();
        generate(&mut db, &cfg);
        let c = db.collection(XMARK_COLL).unwrap();
        assert_eq!(c.len(), cfg.items + cfg.persons + cfg.auctions);
        let paths: Vec<String> = c
            .vocab()
            .paths
            .iter()
            .map(|(id, _)| c.vocab().path_string(id))
            .collect();
        assert!(paths.iter().any(|p| p == "/item/category"));
        assert!(paths.iter().any(|p| p == "/person/profile/income"));
        assert!(paths.iter().any(|p| p == "/open_auction/bidder/increase"));
    }

    #[test]
    fn all_queries_parse() {
        let cfg = XmarkConfig::tiny();
        let qs = queries(&cfg);
        assert_eq!(qs.len(), 9);
        let w = Workload::from_texts(qs.iter().map(|s| s.as_str())).unwrap();
        assert_eq!(w.collections(), vec![XMARK_COLL.to_string()]);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = XmarkConfig::tiny();
        let mut a = Database::new();
        generate(&mut a, &cfg);
        let mut b = Database::new();
        generate(&mut b, &cfg);
        assert_eq!(
            a.stats_cached(XMARK_COLL).unwrap().node_count,
            b.stats_cached(XMARK_COLL).unwrap().node_count
        );
    }
}
