//! Workloads: statements with frequencies.

use xia_xpath::{parse_statement, ParseError, Statement};

/// One workload entry: a statement and its frequency of occurrence
/// (`freq_s` in the paper's benefit formula).
#[derive(Debug, Clone)]
pub struct WorkloadEntry {
    /// The statement.
    pub statement: Statement,
    /// Frequency weight.
    pub freq: f64,
    /// The original statement text (for reports).
    pub text: String,
}

/// A query/update workload — the advisor's training input.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    entries: Vec<WorkloadEntry>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and appends a statement with frequency 1.
    pub fn push(&mut self, text: &str) -> Result<(), ParseError> {
        self.push_with_freq(text, 1.0)
    }

    /// Parses and appends a statement with an explicit frequency.
    pub fn push_with_freq(&mut self, text: &str, freq: f64) -> Result<(), ParseError> {
        let statement = parse_statement(text)?;
        self.entries.push(WorkloadEntry {
            statement,
            freq,
            text: text.trim().to_string(),
        });
        Ok(())
    }

    /// Appends an already-parsed statement.
    pub fn push_statement(&mut self, statement: Statement, freq: f64, text: impl Into<String>) {
        self.entries.push(WorkloadEntry {
            statement,
            freq,
            text: text.into(),
        });
    }

    /// Builds a workload from statement texts, all with frequency 1.
    pub fn from_texts<'a>(texts: impl IntoIterator<Item = &'a str>) -> Result<Self, ParseError> {
        let mut w = Self::new();
        for t in texts {
            w.push(t)?;
        }
        Ok(w)
    }

    /// Lenient variant of [`Workload::from_texts`]: statements that fail to
    /// parse are collected instead of aborting the whole workload, so one
    /// malformed statement in a captured trace does not block tuning.
    /// Returns the workload over the parseable statements plus the rejected
    /// `(text, error)` pairs in input order.
    pub fn from_texts_lenient<'a>(
        texts: impl IntoIterator<Item = &'a str>,
    ) -> (Self, Vec<(String, ParseError)>) {
        let mut w = Self::new();
        let mut rejected = Vec::new();
        for t in texts {
            if let Err(e) = w.push(t) {
                rejected.push((t.trim().to_string(), e));
            }
        }
        (w, rejected)
    }

    /// Lenient variant of [`Workload::push_with_freq`]: on a parse failure
    /// the workload is left unchanged and the error is returned by value
    /// (never panics, never aborts a batch).
    pub fn try_push_with_freq(&mut self, text: &str, freq: f64) -> Option<ParseError> {
        self.push_with_freq(text, freq).err()
    }

    /// The entries in order.
    pub fn entries(&self) -> &[WorkloadEntry] {
        &self.entries
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A new workload containing only the first `n` statements (the
    /// training-prefix construction of the paper's Figs. 4–5).
    pub fn prefix(&self, n: usize) -> Workload {
        Workload {
            entries: self.entries.iter().take(n).cloned().collect(),
        }
    }

    /// Concatenates two workloads.
    pub fn concat(&self, other: &Workload) -> Workload {
        let mut entries = self.entries.clone();
        entries.extend(other.entries.iter().cloned());
        Workload { entries }
    }

    /// Workload compression: merges duplicate statements, summing their
    /// frequencies. Relational advisors do this before tuning; it bounds
    /// the number of Evaluate-mode optimizer calls by the number of
    /// *distinct* statements.
    pub fn compress(&self) -> Workload {
        let mut out: Vec<WorkloadEntry> = Vec::new();
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for e in &self.entries {
            // Key on the parsed statement (whitespace-insensitive).
            let key = format!("{:?}", e.statement);
            match index.get(&key) {
                Some(&i) => out[i].freq += e.freq,
                None => {
                    index.insert(key, out.len());
                    out.push(e.clone());
                }
            }
        }
        Workload { entries: out }
    }

    /// Total frequency mass of the workload.
    pub fn total_freq(&self) -> f64 {
        self.entries.iter().map(|e| e.freq).sum()
    }

    /// Names of the collections the workload touches, deduplicated.
    pub fn collections(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for e in &self.entries {
            let c = e.statement.collection().to_string();
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_texts() {
        let w = Workload::from_texts([
            r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "A" return $s"#,
            r#"delete from ODOC where /Order[Id = 1]"#,
        ])
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(
            w.collections(),
            vec!["SDOC".to_string(), "ODOC".to_string()]
        );
    }

    #[test]
    fn prefix_takes_first_n() {
        let w = Workload::from_texts([
            r#"collection('C')/a[b = 1]"#,
            r#"collection('C')/a[c = 2]"#,
            r#"collection('C')/a[d = 3]"#,
        ])
        .unwrap();
        assert_eq!(w.prefix(2).len(), 2);
        assert_eq!(w.prefix(10).len(), 3);
        assert_eq!(w.prefix(0).len(), 0);
    }

    #[test]
    fn frequencies_are_kept() {
        let mut w = Workload::new();
        w.push_with_freq(r#"collection('C')/a[b = 1]"#, 7.5)
            .unwrap();
        assert_eq!(w.entries()[0].freq, 7.5);
    }

    #[test]
    fn concat_appends() {
        let a = Workload::from_texts([r#"collection('C')/a[b = 1]"#]).unwrap();
        let b = Workload::from_texts([r#"collection('C')/a[c = 2]"#]).unwrap();
        assert_eq!(a.concat(&b).len(), 2);
    }

    #[test]
    fn compress_merges_duplicates_preserving_mass() {
        let mut w = Workload::new();
        w.push_with_freq(r#"collection('C')/a[b = 1]"#, 2.0)
            .unwrap();
        w.push_with_freq(r#"collection('C')/a[b   =   1]"#, 3.0)
            .unwrap();
        w.push_with_freq(r#"collection('C')/a[c = 2]"#, 1.0)
            .unwrap();
        let c = w.compress();
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_freq(), w.total_freq());
        assert_eq!(c.entries()[0].freq, 5.0);
    }

    #[test]
    fn compress_of_distinct_workload_is_identity() {
        let w =
            Workload::from_texts([r#"collection('C')/a[b = 1]"#, r#"collection('C')/a[c = 2]"#])
                .unwrap();
        assert_eq!(w.compress().len(), 2);
    }

    #[test]
    fn parse_errors_propagate() {
        let mut w = Workload::new();
        assert!(w.push("for $x in nonsense").is_err());
        assert!(w.is_empty());
    }

    #[test]
    fn lenient_from_texts_keeps_good_statements() {
        let (w, rejected) = Workload::from_texts_lenient([
            r#"collection('C')/a[b = 1]"#,
            "for $x in nonsense",
            r#"collection('C')/a[c = 2]"#,
        ]);
        assert_eq!(w.len(), 2);
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].0, "for $x in nonsense");
    }

    #[test]
    fn lenient_from_texts_of_all_bad_input_is_empty() {
        let (w, rejected) = Workload::from_texts_lenient(["???", "also bad ["]);
        assert!(w.is_empty());
        assert_eq!(rejected.len(), 2);
    }
}
