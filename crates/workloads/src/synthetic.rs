//! Synthetic random-XPath workloads.
//!
//! Paper Section VII-C: "we generated synthetic workloads consisting of
//! random XPath path expressions that occur in the data". Each generated
//! query picks a valued node from a random document, takes its rooted
//! path, optionally blurs one middle step into a wildcard or descendant
//! axis (so that generalization has structure to find), and attaches a
//! predicate drawn from the node's actual value (so queries select real
//! data).

use crate::prng::Prng;
use xia_storage::Collection;
use xia_xml::Value;

/// Configuration for the synthetic workload generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of queries to generate.
    pub queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability of blurring one middle step into `*`.
    pub wildcard_prob: f64,
    /// Probability of turning an equality predicate into a numeric range
    /// (when the sampled value is numeric).
    pub range_prob: f64,
    /// Probability of prepending a shared *anchor* predicate — a fixed
    /// shallow equality that many statements have in common — turning
    /// the query into a two-predicate conjunction. Anchored workloads
    /// have heavily overlapping candidate relevance (the CoPhy "sparse"
    /// setting), which is what statement-relevance pruning exploits.
    /// `0.0` (the default) reproduces the single-predicate generator
    /// byte-for-byte.
    pub anchor_prob: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            queries: 10,
            seed: 99,
            wildcard_prob: 0.3,
            range_prob: 0.4,
            anchor_prob: 0.0,
        }
    }
}

/// Generates random path-query texts over a collection's actual data.
/// Returns fewer than `cfg.queries` only if the collection has no valued
/// nodes.
pub fn generate_queries(collection: &Collection, cfg: &SyntheticConfig) -> Vec<String> {
    let mut rng = Prng::seed_from_u64(cfg.seed);
    let docs: Vec<_> = collection.iter_docs().collect();
    if docs.is_empty() {
        return Vec::new();
    }
    let vocab = collection.vocab();
    let anchor = if cfg.anchor_prob > 0.0 {
        find_anchor(collection)
    } else {
        None
    };
    let mut out = Vec::with_capacity(cfg.queries);
    let mut attempts = 0;
    while out.len() < cfg.queries && attempts < cfg.queries * 20 {
        attempts += 1;
        let (_, doc) = docs[rng.gen_range(0..docs.len())];
        // Sample a valued node.
        // Long text values (description filler) make useless predicates;
        // sample only short, key-like values.
        let valued: Vec<_> = doc
            .nodes()
            .filter(|(_, n)| n.value.as_ref().is_some_and(|v| v.as_str().len() <= 48))
            .collect();
        if valued.is_empty() {
            continue;
        }
        let (_, node) = valued[rng.gen_range(0..valued.len())];
        let labels: Vec<String> = vocab
            .paths
            .labels(node.path)
            .iter()
            .map(|&s| vocab.names.resolve(s).to_string())
            .collect();
        if labels.len() < 2 {
            continue;
        }
        // The last label is the predicate target; the rest is the root
        // path of the query.
        let mut steps: Vec<String> = labels[..labels.len() - 1].to_vec();
        let leaf = labels[labels.len() - 1].clone();
        if steps.len() >= 2 && rng.gen_bool(cfg.wildcard_prob) {
            let mid = rng.gen_range(1..steps.len());
            steps[mid] = "*".to_string();
        }
        let value = node.value.as_ref().expect("sampled from valued nodes");

        // Optionally prepend the shared anchor predicate (never when the
        // sampled predicate *is* the anchor path — a self-conjunction
        // teaches the advisor nothing).
        let anchored = anchor.as_ref().and_then(|(aroot, aleaf)| {
            if steps[0] != *aroot || (steps.len() == 1 && leaf == *aleaf) {
                return None;
            }
            if !rng.gen_bool(cfg.anchor_prob) {
                return None;
            }
            doc.nodes()
                .find_map(|(_, n)| {
                    let ls = vocab.paths.labels(n.path);
                    (ls.len() == 2
                        && vocab.names.resolve(ls[0]) == aroot
                        && vocab.names.resolve(ls[1]) == aleaf)
                        .then(|| n.value.clone())
                        .flatten()
                })
                .map(|v| (aleaf.clone(), v))
        });

        match anchored {
            Some((aleaf, aval)) => {
                let rel = steps[1..]
                    .iter()
                    .map(|s| s.as_str())
                    .chain([leaf.as_str()])
                    .collect::<Vec<_>>()
                    .join("/");
                let apred = render_eq(&aleaf, &aval);
                let pred = render_predicate(&rel, value, &mut rng, cfg.range_prob);
                out.push(format!(
                    "collection('{}')/{}[{apred}][{pred}]",
                    collection.name(),
                    steps[0]
                ));
            }
            None => {
                let pred = render_predicate(&leaf, value, &mut rng, cfg.range_prob);
                let root = steps.join("/");
                out.push(format!(
                    "collection('{}')/{root}[{pred}]",
                    collection.name()
                ));
            }
        }
    }
    out
}

/// Picks the anchor predicate path: the alphabetically first short-valued
/// element directly under the document root. Deterministic in the data,
/// independent of the RNG.
fn find_anchor(collection: &Collection) -> Option<(String, String)> {
    let vocab = collection.vocab();
    let mut best: Option<(String, String)> = None;
    for (_, doc) in collection.iter_docs() {
        for (_, node) in doc.nodes() {
            let Some(v) = node.value.as_ref() else {
                continue;
            };
            if v.as_str().len() > 48 {
                continue;
            }
            let labels = vocab.paths.labels(node.path);
            if labels.len() != 2 {
                continue;
            }
            let root = vocab.names.resolve(labels[0]).to_string();
            let leaf = vocab.names.resolve(labels[1]).to_string();
            if best.as_ref().is_none_or(|(_, b)| leaf < *b) {
                best = Some((root, leaf));
            }
        }
        if best.is_some() {
            break;
        }
    }
    best
}

fn render_eq(leaf: &str, value: &Value) -> String {
    match value.as_num() {
        Some(n) => format!("{leaf} = {}", trim_num(n)),
        None => format!("{leaf} = \"{}\"", value.as_str().replace('"', "")),
    }
}

fn render_predicate(leaf: &str, value: &Value, rng: &mut Prng, range_prob: f64) -> String {
    match value.as_num() {
        Some(n) if rng.gen_bool(range_prob) => {
            if rng.gen_bool(0.5) {
                format!("{leaf} >= {}", trim_num(n))
            } else {
                format!("{leaf} <= {}", trim_num(n))
            }
        }
        Some(n) => format!("{leaf} = {}", trim_num(n)),
        None => format!("{leaf} = \"{}\"", value.as_str().replace('"', "")),
    }
}

fn trim_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpox::{self, TpoxConfig};
    use crate::workload::Workload;
    use xia_storage::Database;
    use xia_xpath::{normalize_statement, Statement};

    fn sdoc() -> Database {
        let mut db = Database::new();
        tpox::generate(&mut db, &TpoxConfig::tiny());
        db
    }

    #[test]
    fn generates_requested_number_of_parseable_queries() {
        let db = sdoc();
        let c = db.collection("SDOC").unwrap();
        let qs = generate_queries(c, &SyntheticConfig::default());
        assert_eq!(qs.len(), 10);
        let w = Workload::from_texts(qs.iter().map(|s| s.as_str())).unwrap();
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn queries_are_deterministic_in_seed() {
        let db = sdoc();
        let c = db.collection("SDOC").unwrap();
        let a = generate_queries(c, &SyntheticConfig::default());
        let b = generate_queries(c, &SyntheticConfig::default());
        assert_eq!(a, b);
        let other = generate_queries(
            c,
            &SyntheticConfig {
                seed: 123,
                ..Default::default()
            },
        );
        assert_ne!(a, other);
    }

    #[test]
    fn queries_expose_indexable_patterns() {
        let db = sdoc();
        let c = db.collection("SDOC").unwrap();
        let qs = generate_queries(c, &SyntheticConfig::default());
        for q in &qs {
            let w = Workload::from_texts([q.as_str()]).unwrap();
            let Statement::Query(_) = &w.entries()[0].statement else {
                panic!("expected query: {q}");
            };
            let n = normalize_statement(&w.entries()[0].statement).unwrap();
            assert_eq!(n.patterns.len(), 1, "{q}");
        }
    }

    #[test]
    fn wildcards_appear_with_high_probability_setting() {
        let db = sdoc();
        let c = db.collection("SDOC").unwrap();
        let qs = generate_queries(
            c,
            &SyntheticConfig {
                queries: 30,
                wildcard_prob: 1.0,
                ..Default::default()
            },
        );
        // Every query with a deep-enough path must contain a wildcard.
        assert!(qs.iter().any(|q| q.contains("/*")), "{qs:?}");
    }

    #[test]
    fn anchored_queries_share_a_conjunctive_pattern() {
        let db = sdoc();
        let c = db.collection("SDOC").unwrap();
        let qs = generate_queries(
            c,
            &SyntheticConfig {
                queries: 20,
                anchor_prob: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(qs.len(), 20);
        let w = Workload::from_texts(qs.iter().map(|s| s.as_str())).unwrap();
        // Count statements carrying the shared anchor pattern: two
        // conjunctive patterns, one of them on the common anchor path.
        let mut anchored = 0;
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for e in w.entries() {
            let n = normalize_statement(&e.statement).unwrap();
            if n.patterns.len() == 2 {
                anchored += 1;
                for p in &n.patterns {
                    *counts.entry(format!("{}", p.linear)).or_default() += 1;
                }
            }
        }
        // Nearly every query is anchored (the sampled predicate sometimes
        // *is* the anchor, which suppresses the conjunction), and one
        // shared path — the anchor — shows up in every conjunction.
        assert!(anchored >= 15, "only {anchored}/20 anchored: {qs:?}");
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(max >= anchored, "no shared anchor path: {counts:?}");
    }

    #[test]
    fn zero_anchor_prob_reproduces_the_single_predicate_stream() {
        let db = sdoc();
        let c = db.collection("SDOC").unwrap();
        let base = generate_queries(c, &SyntheticConfig::default());
        let explicit = generate_queries(
            c,
            &SyntheticConfig {
                anchor_prob: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(base, explicit);
        for q in &base {
            assert!(!q.contains("]["), "unexpected conjunction: {q}");
        }
    }

    #[test]
    fn empty_collection_yields_no_queries() {
        let c = Collection::new("E");
        assert!(generate_queries(&c, &SyntheticConfig::default()).is_empty());
    }
}
