//! TPoX-like benchmark: data generator, the 11-query workload, and an
//! update mix.
//!
//! TPoX (Transaction Processing over XML, Nicola et al., SIGMOD 2007) is
//! the paper's primary benchmark. The real benchmark ships FIXML document
//! templates; this generator reproduces its *shape*: three collections —
//! securities (`SDOC`), orders (`ODOC`), customer accounts (`CDOC`) — with
//! the element vocabulary the paper's running example uses
//! (`/Security/Symbol`, `/Security/Yield`, `/Security/SecInfo/*/Sector`)
//! and a query set modeled on the 11 TPoX XQueries.

use crate::prng::Prng;
use xia_storage::Database;
use xia_xml::{write_document, DocBuilder, Vocabulary};

/// Sector names with their industries (three per sector).
pub const SECTORS: [(&str, [&str; 3]); 8] = [
    ("Energy", ["OilGas", "Coal", "Renewables"]),
    ("Technology", ["Software", "Semiconductors", "Hardware"]),
    ("Finance", ["Banking", "Insurance", "AssetManagement"]),
    ("Healthcare", ["Pharma", "Biotech", "Devices"]),
    ("Consumer", ["Retail", "Food", "Apparel"]),
    ("Industrial", ["Machinery", "Aerospace", "Construction"]),
    ("Utilities", ["Electric", "Water", "Gas"]),
    ("Materials", ["Chemicals", "Mining", "Paper"]),
];

/// Nationalities used in customer documents.
pub const NATIONS: [&str; 10] = [
    "USA", "Canada", "Germany", "France", "Japan", "Brazil", "India", "Greece", "Egypt", "Kenya",
];

/// Currencies used in accounts.
pub const CURRENCIES: [&str; 5] = ["USD", "EUR", "JPY", "GBP", "CAD"];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpoxConfig {
    /// Number of security documents (`SDOC`).
    pub securities: usize,
    /// Number of order documents (`ODOC`).
    pub orders: usize,
    /// Number of customer-account documents (`CDOC`).
    pub customers: usize,
    /// RNG seed (data and query literals are deterministic given the seed).
    pub seed: u64,
}

impl Default for TpoxConfig {
    fn default() -> Self {
        Self {
            securities: 400,
            orders: 1200,
            customers: 400,
            seed: 42,
        }
    }
}

impl TpoxConfig {
    /// A smaller configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            securities: 60,
            orders: 150,
            customers: 60,
            seed: 7,
        }
    }

    /// A larger configuration for benchmarks.
    pub fn scaled(factor: usize) -> Self {
        Self {
            securities: 400 * factor,
            orders: 1200 * factor,
            customers: 400 * factor,
            seed: 42,
        }
    }
}

/// Names of the three TPoX collections.
pub const SECURITY_COLL: &str = "SDOC";
/// Order collection name.
pub const ORDER_COLL: &str = "ODOC";
/// Customer-account collection name.
pub const CUSTACC_COLL: &str = "CDOC";

fn symbol(i: usize) -> String {
    format!("SYM{i:05}")
}

/// Deterministic filler text, approximating the bulk of real TPoX FIXML
/// documents (3–10 KB each). Document size matters: it sets the scan-vs-
/// index-fetch trade-off the optimizer (and the paper's experiments)
/// navigate.
fn filler(seed: usize, words: usize) -> String {
    const LEXICON: [&str; 16] = [
        "settlement",
        "clearing",
        "custodian",
        "tranche",
        "coupon",
        "maturity",
        "counterparty",
        "collateral",
        "prospectus",
        "liquidity",
        "derivative",
        "notional",
        "amortized",
        "benchmark",
        "redemption",
        "covenant",
    ];
    let mut out = String::with_capacity(words * 11);
    for k in 0..words {
        if k > 0 {
            out.push(' ');
        }
        out.push_str(LEXICON[(seed * 7 + k * 13) % LEXICON.len()]);
    }
    out
}

/// Builds security document `i`. Draws from `rng` in a fixed order, so
/// every caller threading the same sequential RNG gets identical
/// documents.
fn security_doc(b: &mut DocBuilder<'_>, i: usize, rng: &mut Prng) {
    let (sector, industries) = SECTORS[rng.gen_range(0..SECTORS.len())];
    let industry = industries[rng.gen_range(0..3)];
    let is_stock = rng.gen_bool(0.7);
    let yield_v = (rng.gen_range(0.0..10.0f64) * 10.0).round() / 10.0;
    let pe = (rng.gen_range(4.0..60.0f64) * 10.0).round() / 10.0;
    let last = (rng.gen_range(1.0..500.0f64) * 100.0).round() / 100.0;
    b.leaf("Symbol", symbol(i).as_str());
    b.leaf("Name", format!("{industry} Corp {i}").as_str());
    b.leaf("SecurityType", if is_stock { "Stock" } else { "Fund" });
    b.begin("SecInfo");
    b.begin(if is_stock { "StockInfo" } else { "FundInfo" });
    b.leaf("Sector", sector);
    b.leaf("Industry", industry);
    b.end();
    b.end();
    b.begin("Price");
    b.leaf("LastTrade", last);
    b.leaf("High52", last * 1.3);
    b.leaf("Low52", last * 0.6);
    b.end();
    b.leaf("Yield", yield_v);
    b.leaf("PE", pe);
    // Optional elements: only some securities pay dividends — gives
    // existence predicates discriminating power.
    if rng.gen_bool(0.3) {
        b.begin("Dividend");
        b.leaf("Amount", (yield_v * last / 100.0 * 100.0).round() / 100.0);
        b.leaf("ExDate", "2007-06-15");
        b.end();
    }
    b.begin("Prospectus");
    b.leaf("Summary", filler(i, 120).as_str());
    b.leaf("RiskFactors", filler(i + 1, 120).as_str());
    b.leaf("Management", filler(i + 2, 80).as_str());
    b.end();
    b.begin("History");
    for e in 0..3 {
        b.begin("Event");
        b.leaf("Date", format!("200{}-0{}-1{}", 5 + e, 1 + e, e).as_str());
        b.leaf("Text", filler(i * 3 + e, 60).as_str());
        b.end();
    }
    b.end();
}

/// Builds order document `i` (see [`security_doc`] on RNG discipline).
fn order_doc(b: &mut DocBuilder<'_>, i: usize, rng: &mut Prng, cfg: &TpoxConfig) {
    let sym = symbol(rng.gen_range(0..cfg.securities.max(1)));
    let acct = rng.gen_range(0..cfg.customers.max(1) * 2);
    let qty = rng.gen_range(1..200) * 50;
    let price = (rng.gen_range(1.0..500.0f64) * 100.0).round() / 100.0;
    let buy = rng.gen_bool(0.5);
    b.attr("id", i as f64);
    b.leaf("AccountId", format!("A{acct:05}").as_str());
    b.leaf("Symbol", sym.as_str());
    b.leaf("OrderType", if buy { "buy" } else { "sell" });
    b.leaf("Quantity", qty as f64);
    b.leaf("LimitPrice", price);
    b.leaf(
        "Date",
        format!(
            "2007-{:02}-{:02}",
            rng.gen_range(1..13),
            rng.gen_range(1..29)
        )
        .as_str(),
    );
    b.begin("Fixml");
    b.leaf("Instrument", filler(i, 90).as_str());
    b.leaf("Parties", filler(i + 5, 90).as_str());
    b.leaf("Stipulations", filler(i + 9, 60).as_str());
    b.end();
}

/// Builds customer document `i` (see [`security_doc`] on RNG discipline).
fn customer_doc(b: &mut DocBuilder<'_>, i: usize, rng: &mut Prng) {
    let nation = NATIONS[rng.gen_range(0..NATIONS.len())];
    let premium = rng.gen_bool(0.2);
    let accounts = rng.gen_range(1..4);
    let balances: Vec<f64> = (0..accounts)
        .map(|_| (rng.gen_range(100.0..200_000.0f64) * 100.0).round() / 100.0)
        .collect();
    let currencies: Vec<&str> = (0..accounts)
        .map(|_| CURRENCIES[rng.gen_range(0..CURRENCIES.len())])
        .collect();
    b.leaf("Id", 1000.0 + i as f64);
    b.leaf("Name", format!("Customer {i}").as_str());
    b.leaf("Nationality", nation);
    b.leaf("Premium", if premium { "Y" } else { "N" });
    b.begin("Accounts");
    for (a, &bal) in balances.iter().enumerate() {
        b.begin("Account");
        b.leaf("AccountId", format!("A{:05}", i * 2 + a).as_str());
        b.leaf("Balance", bal);
        b.leaf("Currency", currencies[a]);
        b.end();
    }
    b.end();
    b.begin("Profile");
    b.leaf("Notes", filler(i, 110).as_str());
    b.leaf("Preferences", filler(i + 3, 110).as_str());
    b.leaf("Compliance", filler(i + 6, 70).as_str());
    b.end();
}

/// Generates the three TPoX collections into `db` and refreshes statistics.
pub fn generate(db: &mut Database, cfg: &TpoxConfig) {
    let mut rng = Prng::seed_from_u64(cfg.seed);

    let sdoc = db.create_collection(SECURITY_COLL);
    for i in 0..cfg.securities {
        sdoc.build_doc("Security", |b| security_doc(b, i, &mut rng));
    }

    let odoc = db.create_collection(ORDER_COLL);
    for i in 0..cfg.orders {
        odoc.build_doc("Order", |b| order_doc(b, i, &mut rng, cfg));
    }

    let cdoc = db.create_collection(CUSTACC_COLL);
    for i in 0..cfg.customers {
        cdoc.build_doc("Customer", |b| customer_doc(b, i, &mut rng));
    }

    db.runstats_all();
}

/// Serializes the three TPoX collections as per-document XML texts
/// (`(securities, orders, customers)`), drawing from the same RNG stream
/// as [`generate`]: ingesting these texts reproduces `generate`'s
/// database exactly. This is the input feed for the ingestion
/// scalability sweep and the `load` CLI path.
pub fn docs_xml(cfg: &TpoxConfig) -> (Vec<String>, Vec<String>, Vec<String>) {
    let mut rng = Prng::seed_from_u64(cfg.seed);
    let mut scratch = Vocabulary::new();
    let mut render = |root: &str, f: &mut dyn FnMut(&mut DocBuilder<'_>)| {
        let mut b = DocBuilder::new(&mut scratch, root);
        f(&mut b);
        let doc = b.finish();
        write_document(&doc, &scratch)
    };
    let securities = (0..cfg.securities)
        .map(|i| render("Security", &mut |b| security_doc(b, i, &mut rng)))
        .collect();
    let orders = (0..cfg.orders)
        .map(|i| render("Order", &mut |b| order_doc(b, i, &mut rng, cfg)))
        .collect();
    let customers = (0..cfg.customers)
        .map(|i| render("Customer", &mut |b| customer_doc(b, i, &mut rng)))
        .collect();
    (securities, orders, customers)
}

/// The 11-query TPoX-like workload. Literals are deterministic in the seed
/// and chosen to hit existing data.
pub fn queries(cfg: &TpoxConfig) -> Vec<String> {
    let mut rng = Prng::seed_from_u64(cfg.seed ^ 0x51ec);
    let sym = symbol(rng.gen_range(0..cfg.securities.max(1)));
    let sym2 = symbol(rng.gen_range(0..cfg.securities.max(1)));
    let acct = format!("A{:05}", rng.gen_range(0..cfg.customers.max(1) * 2));
    let cust_id = 1000 + rng.gen_range(0..cfg.customers.max(1));
    let order_id = rng.gen_range(0..cfg.orders.max(1));
    vec![
        // Q1 get_security: full security document by symbol.
        format!(r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "{sym}" return $s"#),
        // Q2 get_security_price.
        format!(
            r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "{sym2}" return $s/Price/LastTrade"#
        ),
        // Q3 search_securities: the paper's Q2 shape (yield range + sector).
        r#"for $s in SECURITY('SDOC')/Security[Yield > 4.5]
           where $s/SecInfo/*/Sector = "Energy"
           return <Security>{$s/Name}</Security>"#
            .to_string(),
        // Q4 securities with high PE in a sector.
        r#"for $s in SECURITY('SDOC')/Security[PE >= 40]
           where $s/SecInfo/*/Sector = "Technology"
           return $s/Symbol"#
            .to_string(),
        // Q5 securities by industry.
        r#"for $s in SECURITY('SDOC')/Security
           where $s/SecInfo/*/Industry = "Banking"
           return <Out>{$s/Symbol, $s/Name}</Out>"#
            .to_string(),
        // Q6 get_order by id (attribute predicate).
        format!(r#"for $o in ORDER('ODOC')/Order where $o/id = {order_id} return $o"#),
        // Q7 orders of an account.
        format!(r#"for $o in ORDER('ODOC')/Order where $o/AccountId = "{acct}" return $o/Symbol"#),
        // Q8 large buy orders.
        r#"for $o in ORDER('ODOC')/Order[Quantity >= 9000]
           where $o/OrderType = "buy"
           return <Big>{$o/Symbol, $o/Quantity}</Big>"#
            .to_string(),
        // Q9 customer profile by id.
        format!(
            r#"for $c in CUSTACC('CDOC')/Customer where $c/Id = {cust_id} return <Profile>{{$c/Name, $c/Nationality}}</Profile>"#
        ),
        // Q10 high balances (nested path under Accounts/Account).
        r#"for $c in CUSTACC('CDOC')/Customer[Accounts/Account/Balance > 150000]
           return $c/Name"#
            .to_string(),
        // Q11 premium customers of a nationality.
        r#"for $c in CUSTACC('CDOC')/Customer
           where $c/Nationality = "Greece" and $c/Premium = "Y"
           return $c/Id"#
            .to_string(),
    ]
}

/// Extended TPoX-style queries exercising the full language surface:
/// existence predicates, disjunctions (index-ORing), `let` bindings,
/// `order by`, and the SQL/XML surface syntax. Used by the language-surface
/// tests and available for richer workloads.
pub fn extended_queries(cfg: &TpoxConfig) -> Vec<String> {
    let mut rng = Prng::seed_from_u64(cfg.seed ^ 0xe47e);
    let sym = symbol(rng.gen_range(0..cfg.securities.max(1)));
    vec![
        // Existence: dividend-paying securities (optional element).
        r#"for $s in SECURITY('SDOC')/Security
           where $s/Dividend
           return $s/Symbol"#
            .to_string(),
        // Disjunction over sectors (index-ORing candidate).
        r#"for $s in SECURITY('SDOC')/Security[SecInfo/*/Sector = "Energy" or SecInfo/*/Sector = "Utilities"]
           return $s/Name"#
            .to_string(),
        // `let` binding with a nested navigation.
        r#"for $s in SECURITY('SDOC')/Security
           let $p := $s/Price
           where $p/LastTrade >= 400
           return $p/High52"#
            .to_string(),
        // `order by` over a retrieved key.
        r#"for $o in ORDER('ODOC')/Order[Quantity >= 8000]
           order by $o/LimitPrice descending
           return $o/Symbol"#
            .to_string(),
        // SQL/XML surface: the same shape as Q1, different language.
        format!(
            r#"SELECT XMLQUERY('$d/Security/Name') FROM SDOC
               WHERE XMLEXISTS('$d/Security[Symbol = "{sym}"]')"#
        ),
        // Existence of a dividend combined with a value predicate.
        r#"for $s in SECURITY('SDOC')/Security[Yield > 6]
           where $s/Dividend/Amount >= 1
           return <Out>{$s/Symbol, $s/Yield}</Out>"#
            .to_string(),
    ]
}

/// An update mix: inserts, a delete, and an update, for maintenance-cost
/// experiments.
pub fn update_mix(cfg: &TpoxConfig) -> Vec<String> {
    let mut rng = Prng::seed_from_u64(cfg.seed ^ 0x0bad);
    let i = cfg.securities + 1;
    let (sector, industries) = SECTORS[rng.gen_range(0..SECTORS.len())];
    vec![
        format!(
            "insert into SDOC <Security><Symbol>{}</Symbol><Name>New Corp</Name>\
             <SecInfo><StockInfo><Sector>{sector}</Sector><Industry>{}</Industry></StockInfo></SecInfo>\
             <Yield>5.1</Yield><PE>22</PE></Security>",
            symbol(i),
            industries[0]
        ),
        format!(
            "insert into ODOC <Order id=\"{}\"><AccountId>A00001</AccountId><Symbol>{}</Symbol>\
             <OrderType>buy</OrderType><Quantity>500</Quantity><LimitPrice>99.5</LimitPrice></Order>",
            cfg.orders + 1,
            symbol(0)
        ),
        format!(r#"delete from ODOC where /Order[id = {}]"#, rng.gen_range(0..cfg.orders.max(1))),
        format!(
            r#"update SDOC set /Security/Yield = 6.5 where /Security[Symbol = "{}"]"#,
            symbol(rng.gen_range(0..cfg.securities.max(1)))
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn generator_populates_three_collections() {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        generate(&mut db, &cfg);
        assert_eq!(db.collection(SECURITY_COLL).unwrap().len(), cfg.securities);
        assert_eq!(db.collection(ORDER_COLL).unwrap().len(), cfg.orders);
        assert_eq!(db.collection(CUSTACC_COLL).unwrap().len(), cfg.customers);
        // Stats were refreshed.
        assert!(db.stats_cached(SECURITY_COLL).is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TpoxConfig::tiny();
        let mut db1 = Database::new();
        generate(&mut db1, &cfg);
        let mut db2 = Database::new();
        generate(&mut db2, &cfg);
        let n1 = db1.stats_cached(SECURITY_COLL).unwrap().node_count;
        let n2 = db2.stats_cached(SECURITY_COLL).unwrap().node_count;
        assert_eq!(n1, n2);
    }

    #[test]
    fn both_secinfo_variants_appear() {
        let mut db = Database::new();
        generate(&mut db, &TpoxConfig::tiny());
        let c = db.collection(SECURITY_COLL).unwrap();
        let paths: Vec<String> = c
            .vocab()
            .paths
            .iter()
            .map(|(id, _)| c.vocab().path_string(id))
            .collect();
        assert!(paths
            .iter()
            .any(|p| p == "/Security/SecInfo/StockInfo/Sector"));
        assert!(paths
            .iter()
            .any(|p| p == "/Security/SecInfo/FundInfo/Sector"));
    }

    #[test]
    fn docs_xml_reproduces_generate() {
        // The serialized per-document feed must rebuild the exact same
        // database as the in-place generator: same vocabularies, same
        // arenas, same statistics — the scalability sweep depends on it.
        let cfg = TpoxConfig::tiny();
        let mut built = Database::new();
        generate(&mut built, &cfg);
        let (sec, ord, cust) = docs_xml(&cfg);
        assert_eq!(sec.len(), cfg.securities);
        assert_eq!(ord.len(), cfg.orders);
        assert_eq!(cust.len(), cfg.customers);
        let mut ingested = Database::new();
        for (name, texts) in [
            (SECURITY_COLL, &sec),
            (ORDER_COLL, &ord),
            (CUSTACC_COLL, &cust),
        ] {
            let c = ingested.create_collection(name);
            xia_storage::ingest_batch(c, texts, xia_storage::IngestOptions::default()).unwrap();
        }
        ingested.runstats_all();
        for name in [SECURITY_COLL, ORDER_COLL, CUSTACC_COLL] {
            let a = built.collection(name).unwrap();
            let b = ingested.collection(name).unwrap();
            assert_eq!(a.vocab(), b.vocab(), "{name}");
            assert!(a.iter_docs().eq(b.iter_docs()), "{name}: documents differ");
            assert_eq!(
                built.stats_cached(name).unwrap(),
                ingested.stats_cached(name).unwrap(),
                "{name}"
            );
        }
    }

    #[test]
    fn all_eleven_queries_parse() {
        let cfg = TpoxConfig::tiny();
        let qs = queries(&cfg);
        assert_eq!(qs.len(), 11);
        let w = Workload::from_texts(qs.iter().map(|s| s.as_str())).unwrap();
        assert_eq!(w.len(), 11);
        assert_eq!(w.collections().len(), 3);
    }

    #[test]
    fn update_mix_parses() {
        let cfg = TpoxConfig::tiny();
        let w = Workload::from_texts(update_mix(&cfg).iter().map(|s| s.as_str())).unwrap();
        assert_eq!(w.len(), 4);
        assert!(w.entries().iter().all(|e| e.statement.is_modification()));
    }

    #[test]
    fn point_queries_hit_existing_data() {
        // Q1's symbol literal must exist in the generated data.
        let cfg = TpoxConfig::tiny();
        let mut db = Database::new();
        generate(&mut db, &cfg);
        let q1 = &queries(&cfg)[0];
        let sym = q1.split('"').nth(1).unwrap();
        let c = db.collection(SECURITY_COLL).unwrap();
        let found = c.iter_docs().any(|(_, d)| {
            d.nodes()
                .any(|(_, n)| n.value.as_ref().is_some_and(|v| v.as_str() == sym))
        });
        assert!(found, "symbol {sym} not found in generated data");
    }
}
