//! Small deterministic PRNG (SplitMix64) for the data generators.
//!
//! The build environment has no crates.io access, so the generators use
//! this internal generator instead of the `rand` crate. SplitMix64 passes
//! BigCrush for the 64-bit output stream and is more than adequate for
//! synthesizing benchmark data; the API mirrors the subset of `rand` the
//! generators use (`seed_from_u64`, `gen_range`, `gen_bool`) so call sites
//! read the same.

use std::ops::Range;

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Seeds the generator. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range. Panics on an empty range,
    /// matching `rand::Rng::gen_range`.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Types [`Prng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Draws one uniform sample from `range`.
    fn sample(rng: &mut Prng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut Prng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant for data
                // generation with spans far below 2^32.
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u32, u64, i32, i64);

impl SampleUniform for f64 {
    fn sample(rng: &mut Prng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_range_is_constant() {
        let mut rng = Prng::seed_from_u64(9);
        for _ in 0..20 {
            assert_eq!(rng.gen_range(4usize..5), 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_cover_the_range() {
        let mut rng = Prng::seed_from_u64(13);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0f64..10.0)).collect();
        assert!(samples.iter().any(|&v| v < 1.0));
        assert!(samples.iter().any(|&v| v > 9.0));
    }
}
