//! # xia-workloads
//!
//! Benchmark data generators and query workloads for the XML Index Advisor
//! experiments.
//!
//! * [`tpox`] — a TPoX-like financial benchmark: `security`, `order`, and
//!   `custacc` documents (the element vocabulary of the paper's running
//!   example: `Symbol`, `Yield`, `SecInfo/*/Sector`, …) and the 11-query
//!   workload the paper evaluates on, plus an update mix.
//! * [`xmark`] — an XMark-like auction benchmark (the paper's secondary
//!   benchmark, reported in its tech report).
//! * [`synthetic`] — random XPath workloads drawn from paths that occur in
//!   the data (paper Section VII-C, Table III and Figs. 4–5).
//! * [`Workload`] — statements with frequencies, the advisor's input.

pub mod prng;
pub mod synthetic;
pub mod tpox;
pub mod workload;
pub mod xmark;

pub use workload::{Workload, WorkloadEntry};
