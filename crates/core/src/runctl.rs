//! Run-lifecycle control: deadlines, cooperative cancellation, crash-safe
//! checkpoints, and the resource-governor budget.
//!
//! [`RunController`] follows the crate's cheap-handle pattern
//! ([`xia_obs::Telemetry`], [`xia_fault::FaultInjector`]): a cloneable
//! `Option<Arc<...>>` whose disabled form ([`RunController::off`], the
//! default) turns every poll into a branch on `None`, so a run without
//! lifecycle features pays nothing.
//!
//! ## Cooperative stop
//!
//! The benefit evaluator's coordinator and all search algorithms call
//! [`RunController::poll`] at evaluation-group and loop boundaries. The
//! first expired condition (wall-clock deadline, external cancel, or the
//! deterministic `cancel_after_polls` test hook) *latches* a
//! [`StopReason`]; the searches then unwind with their best configuration
//! so far, and the advisor surfaces the result as a partial
//! recommendation rather than an error.
//!
//! ## Checkpoint/resume — the warm-store replay model
//!
//! Because the whole pipeline is deterministic (coordinator-planned,
//! jobs-invariant), a resumed run does not restore mid-search state: it
//! **re-runs the pipeline from scratch** and consults a read-only *warm
//! store* of previously executed optimizer costings at task-execution
//! time. Each warm entry carries the exact cost (f64 bits) and the
//! per-task telemetry counter deltas captured when the task originally
//! ran, so a warm-served task leaves the same footprint — costs, caches,
//! counters, journal events — as re-executing it. The replayed run is
//! therefore byte-identical to an uninterrupted one at any `--jobs`
//! value. Checkpoint lifecycle itself is deliberately *not* journaled
//! (it would break that identity); resumption surfaces only through the
//! CLI warning text and exit code.
//!
//! Checkpoint files use the storage layer's FNV-1a framing (a v2-style
//! line format with an `END <count> <checksum>` trailer), are bound to
//! the candidate set by digest, and are written to a temp file renamed
//! into place. Any read failure — truncation, bit flips, digest
//! mismatch, injected `checkpoint-io` fault — degrades to a cold start
//! with a warning, never a panic or a wrong answer. A failed write
//! abandons that checkpoint and keeps the previous one.

use crate::candidate::{CandId, CandidateSet};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xia_fault::{FaultInjector, FaultSite};
use xia_obs::{Counter, Telemetry};
use xia_storage::fnv1a64;

/// Fault-stream salt for checkpoint writes (`checkpoint-io` rolls derive
/// per-write streams so schedules are replay-invariant).
const SALT_CKPT_WRITE: u64 = 0xC4_917E;
/// Fault-stream salt for checkpoint reads.
const SALT_CKPT_READ: u64 = 0xC4_9EAD;

/// Why a controller stopped a run early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline expired.
    Deadline,
    /// The run was cancelled (externally, or by the deterministic
    /// poll-count hook).
    Cancelled,
}

impl StopReason {
    /// Stable snake_case name (used in the `run_stopped` journal event).
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Deadline => "deadline",
            StopReason::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Rungs of the resource governor's graceful-degradation ladder, in
/// demotion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GovernorRung {
    /// All caches live (the starting rung).
    Full,
    /// The sharded benefit memo was cleared. It may regrow; renewed
    /// pressure demotes further down the ladder.
    ShrinkMemo,
    /// Both caches were cleared and statement-cache inserts stop; the
    /// memo may still regrow.
    NoStmtCache,
    /// All cache inserts stop and uncached costings degrade to the
    /// heuristic fallback; no optimizer fan-out for uncached work.
    HeuristicOnly,
}

impl GovernorRung {
    /// Stable snake_case name (used in the `governor_demoted` event).
    pub fn name(self) -> &'static str {
        match self {
            GovernorRung::Full => "full",
            GovernorRung::ShrinkMemo => "shrink_memo",
            GovernorRung::NoStmtCache => "no_stmt_cache",
            GovernorRung::HeuristicOnly => "heuristic_only",
        }
    }

    /// The next rung down the ladder, if any.
    pub fn next(self) -> Option<GovernorRung> {
        match self {
            GovernorRung::Full => Some(GovernorRung::ShrinkMemo),
            GovernorRung::ShrinkMemo => Some(GovernorRung::NoStmtCache),
            GovernorRung::NoStmtCache => Some(GovernorRung::HeuristicOnly),
            GovernorRung::HeuristicOnly => None,
        }
    }
}

/// Identity of one executed optimizer costing: the per-task fault salt,
/// the statement index, and the canonical candidate projection it costed.
/// The salt alone is already a function of `(projection, statement)`, but
/// the full tuple keeps warm-store lookups collision-proof.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WarmKey {
    /// Per-task fault-stream salt the costing ran under.
    pub salt: u64,
    /// Workload statement index.
    pub si: usize,
    /// Canonical (sorted) candidate projection that was costed.
    pub proj: Vec<CandId>,
}

/// A warm-store entry: the exact cost plus the telemetry counter deltas
/// the original execution produced, so serving the entry replays the
/// task's full observable footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmEntry {
    /// `f64::to_bits` of the optimizer's total cost (bit-exact).
    pub cost_bits: u64,
    /// `(Counter::ALL index, delta)` pairs the task added to its worker's
    /// scratch telemetry.
    pub deltas: Vec<(usize, u64)>,
}

#[derive(Debug)]
struct CheckpointCfg {
    path: PathBuf,
    /// Write after every N evaluation-group batches.
    every: u64,
}

#[derive(Debug)]
struct CtlInner {
    /// Wall-clock deadline, anchored when the controller was built.
    deadline: Option<Instant>,
    /// External cancellation flag.
    cancel: AtomicBool,
    /// Deterministic test/ops hook: latch `Cancelled` once this many
    /// polls have happened. Polls are coordinator-side only, so the
    /// trigger point is jobs-invariant.
    cancel_after_polls: Option<u64>,
    polls: AtomicU64,
    /// The first stop condition to fire, latched for the rest of the run.
    stopped: Mutex<Option<StopReason>>,
    checkpoint: Option<CheckpointCfg>,
    /// In-memory warm capture (the serving path): record the costing log
    /// without any checkpoint file, so a caller can export it after the
    /// run and install it into the next run's controller.
    capture: bool,
    mem_budget: Option<u64>,
    resumed: AtomicBool,
    /// Read-only warm store installed by `--resume`.
    warm: Mutex<HashMap<WarmKey, WarmEntry>>,
    /// Ordered log of every costing executed (or warm-served) this run;
    /// the payload of the next checkpoint.
    log: Mutex<Vec<(WarmKey, WarmEntry)>>,
    /// Evaluation-group batches seen since the run started.
    batches: AtomicU64,
    /// Checkpoints written so far (salts the per-write fault stream).
    writes: AtomicU64,
}

/// Cheap handle to shared run-lifecycle state. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct RunController {
    inner: Option<Arc<CtlInner>>,
}

impl RunController {
    /// A disabled handle: polls cost one branch, nothing ever stops.
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// An enabled controller with no deadline, no checkpointing, and no
    /// memory budget; arm features builder-style before sharing clones.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(CtlInner {
                deadline: None,
                cancel: AtomicBool::new(false),
                cancel_after_polls: None,
                polls: AtomicU64::new(0),
                stopped: Mutex::new(None),
                checkpoint: None,
                capture: false,
                mem_budget: None,
                resumed: AtomicBool::new(false),
                warm: Mutex::new(HashMap::new()),
                log: Mutex::new(Vec::new()),
                batches: AtomicU64::new(0),
                writes: AtomicU64::new(0),
            })),
        }
    }

    fn configure(mut self, f: impl FnOnce(&mut CtlInner)) -> Self {
        if let Some(inner) = self.inner.as_mut().and_then(Arc::get_mut) {
            f(inner);
        }
        self
    }

    /// Arms a wall-clock deadline, anchored now. Builder-style; must be
    /// called before the handle is cloned.
    pub fn with_deadline(self, timeout: Duration) -> Self {
        let deadline = Instant::now().checked_add(timeout);
        self.configure(|i| i.deadline = deadline)
    }

    /// [`RunController::with_deadline`] in milliseconds (the CLI flag).
    pub fn with_deadline_ms(self, ms: u64) -> Self {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Arms the deterministic preemption hook: the controller latches
    /// `Cancelled` on the `n`-th poll. Used by the resume-determinism
    /// suite and `--cancel-after-polls` to kill a run at an exactly
    /// reproducible boundary.
    pub fn with_cancel_after_polls(self, n: u64) -> Self {
        self.configure(|i| i.cancel_after_polls = Some(n))
    }

    /// Arms periodic checkpointing: after every `every` evaluation-group
    /// batches (and once more when the run stops), the warm log is
    /// written to `path` atomically.
    pub fn with_checkpoint(self, path: impl Into<PathBuf>, every: u64) -> Self {
        let cfg = CheckpointCfg {
            path: path.into(),
            every: every.max(1),
        };
        self.configure(|i| i.checkpoint = Some(cfg))
    }

    /// Arms in-memory warm capture: every executed (or warm-served)
    /// costing is recorded in the warm log exactly as under
    /// [`RunController::with_checkpoint`], but nothing is written to
    /// disk — the caller drains the log with
    /// [`RunController::export_warm_log`] after the run. This is the
    /// share half of the warm benefit-cache share/reset API used by the
    /// serving layer.
    pub fn with_warm_capture(self) -> Self {
        self.configure(|i| i.capture = true)
    }

    /// Arms the resource governor with an approximate cache-byte budget.
    pub fn with_mem_budget(self, bytes: u64) -> Self {
        self.configure(|i| i.mem_budget = Some(bytes))
    }

    /// Whether this handle does anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Requests cancellation; the next poll latches it.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancel.store(true, Ordering::Relaxed);
        }
    }

    /// Coordinator-side stop check: counts the poll, latches the first
    /// stop condition to fire, and returns the latched reason (if any).
    /// On a disabled handle this is a single branch.
    #[inline]
    pub fn poll(&self) -> Option<StopReason> {
        let inner = self.inner.as_ref()?;
        self.poll_armed(inner)
    }

    /// Cold path of [`RunController::poll`], separated so the disabled
    /// handle inlines to a branch.
    fn poll_armed(&self, inner: &CtlInner) -> Option<StopReason> {
        let mut stopped = inner.stopped.lock().expect("controller poisoned");
        if stopped.is_some() {
            return *stopped;
        }
        let polls = inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
        let cancelled = inner.cancel.load(Ordering::Relaxed)
            || inner.cancel_after_polls.is_some_and(|n| polls >= n);
        let reason = if cancelled {
            Some(StopReason::Cancelled)
        } else if inner.deadline.is_some_and(|d| Instant::now() >= d) {
            Some(StopReason::Deadline)
        } else {
            None
        };
        *stopped = reason;
        reason
    }

    /// The latched stop reason, without counting a poll.
    pub fn stopped(&self) -> Option<StopReason> {
        let inner = self.inner.as_ref()?;
        *inner.stopped.lock().expect("controller poisoned")
    }

    /// Whether a warm store was installed from a checkpoint.
    pub fn resumed(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.resumed.load(Ordering::Relaxed))
    }

    /// The governor's cache-byte budget, if armed.
    pub fn mem_budget(&self) -> Option<u64> {
        self.inner.as_ref().and_then(|i| i.mem_budget)
    }

    /// Whether the warm log is being recorded — by file checkpointing or
    /// in-memory capture (drives per-task delta capture).
    pub fn checkpointing(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.checkpoint.is_some() || i.capture)
    }

    /// Drains a snapshot of this run's warm log — every costing executed
    /// or warm-served so far, in coordinator order. Pair with
    /// [`RunController::with_warm_capture`]; install the entries into a
    /// later controller via [`RunController::install_warm`].
    pub fn export_warm_log(&self) -> Vec<(WarmKey, WarmEntry)> {
        match &self.inner {
            Some(inner) => inner.log.lock().expect("controller poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Installs warm-store entries loaded from a checkpoint and marks the
    /// run as resumed.
    pub fn install_warm(&self, entries: Vec<(WarmKey, WarmEntry)>) {
        if let Some(inner) = &self.inner {
            let mut warm = inner.warm.lock().expect("controller poisoned");
            for (k, v) in entries {
                warm.insert(k, v);
            }
            inner.resumed.store(true, Ordering::Relaxed);
        }
    }

    /// Looks up a previously executed costing in the warm store.
    pub fn warm_lookup(&self, key: &WarmKey) -> Option<WarmEntry> {
        let inner = self.inner.as_ref()?;
        if !inner.resumed.load(Ordering::Relaxed) {
            return None;
        }
        inner
            .warm
            .lock()
            .expect("controller poisoned")
            .get(key)
            .cloned()
    }

    /// Appends one executed (or warm-served) costing to the warm log —
    /// the payload of the next checkpoint or warm export. No-op unless
    /// checkpointing or capturing.
    pub fn record_costing(&self, key: WarmKey, entry: WarmEntry) {
        if let Some(inner) = &self.inner {
            if inner.checkpoint.is_some() || inner.capture {
                inner
                    .log
                    .lock()
                    .expect("controller poisoned")
                    .push((key, entry));
            }
        }
    }

    /// Called by the evaluator after each evaluation-group batch: writes
    /// a checkpoint when the cadence says so. Returns a warning to
    /// surface when a write was abandoned.
    pub fn after_batch(
        &self,
        digest: u64,
        faults: &FaultInjector,
        telemetry: &Telemetry,
    ) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let cfg = inner.checkpoint.as_ref()?;
        let batches = inner.batches.fetch_add(1, Ordering::Relaxed) + 1;
        if batches % cfg.every != 0 {
            return None;
        }
        self.write_checkpoint(inner, cfg, digest, faults, telemetry)
    }

    /// Writes a final checkpoint unconditionally (called when a run is
    /// stopped early, so `--resume` sees all completed work). Returns a
    /// warning when the write was abandoned.
    pub fn final_checkpoint(
        &self,
        digest: u64,
        faults: &FaultInjector,
        telemetry: &Telemetry,
    ) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let cfg = inner.checkpoint.as_ref()?;
        self.write_checkpoint(inner, cfg, digest, faults, telemetry)
    }

    fn write_checkpoint(
        &self,
        inner: &CtlInner,
        cfg: &CheckpointCfg,
        digest: u64,
        faults: &FaultInjector,
        telemetry: &Telemetry,
    ) -> Option<String> {
        // Per-write derived stream: whether write #n fails is a pure
        // function of (seed, n), invariant under resume/replay.
        let write_no = inner.writes.fetch_add(1, Ordering::Relaxed) + 1;
        let stream = faults.derive_stream(SALT_CKPT_WRITE ^ write_no);
        if let Err(e) = stream.roll(FaultSite::CheckpointIo) {
            return Some(format!(
                "checkpoint write abandoned ({e}); previous checkpoint kept"
            ));
        }
        let body = {
            let log = inner.log.lock().expect("controller poisoned");
            render_checkpoint(digest, &log)
        };
        match write_atomically(&cfg.path, &body) {
            Ok(()) => {
                telemetry.incr(Counter::CheckpointsWritten);
                None
            }
            Err(e) => Some(format!(
                "checkpoint write to {} failed ({e}); previous checkpoint kept",
                cfg.path.display()
            )),
        }
    }
}

/// Digest binding a checkpoint to the candidate set it was computed
/// over: FNV-1a of every candidate's rendered identity, in id order.
pub fn candidate_digest(set: &CandidateSet) -> u64 {
    let mut buf = String::new();
    for c in set.iter() {
        let _ = writeln!(buf, "{c}");
    }
    fnv1a64(buf.as_bytes())
}

/// Renders the checkpoint body: a v2-style checksummed line format.
fn render_checkpoint(digest: u64, log: &[(WarmKey, WarmEntry)]) -> String {
    let mut body = String::new();
    let _ = writeln!(body, "XIACKPT v1");
    let _ = writeln!(body, "META {digest:016x} {}", log.len());
    for (key, entry) in log {
        let proj = if key.proj.is_empty() {
            "-".to_string()
        } else {
            key.proj
                .iter()
                .map(|id| id.0.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let deltas = if entry.deltas.is_empty() {
            "-".to_string()
        } else {
            entry
                .deltas
                .iter()
                .map(|(i, v)| format!("{i}:{v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(
            body,
            "W {:016x} {} {:016x} {proj} {deltas}",
            key.salt, key.si, entry.cost_bits
        );
    }
    let checksum = fnv1a64(body.as_bytes());
    let _ = writeln!(body, "END {} {checksum:016x}", log.len());
    body
}

/// Writes `body` to `path` via a temp file + atomic rename, so a crash
/// mid-write can never leave a torn checkpoint in place.
fn write_atomically(path: &Path, body: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Loads a checkpoint for `--resume`: verifies the framing checksum and
/// the candidate-set digest, and returns the warm entries. Every failure
/// mode — missing file, truncation, bit flips, digest mismatch, injected
/// `checkpoint-io` fault — is a `Err(reason)` the caller turns into a
/// cold-start warning.
pub fn load_checkpoint(
    path: impl AsRef<Path>,
    expected_digest: u64,
    faults: &FaultInjector,
) -> Result<Vec<(WarmKey, WarmEntry)>, String> {
    let path = path.as_ref();
    faults
        .derive_stream(SALT_CKPT_READ)
        .roll(FaultSite::CheckpointIo)
        .map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_checkpoint(&text, expected_digest)
}

/// Parses and verifies a checkpoint body (separated from I/O for the
/// corruption sweeps).
pub fn parse_checkpoint(
    text: &str,
    expected_digest: u64,
) -> Result<Vec<(WarmKey, WarmEntry)>, String> {
    // Strict framing: every line, including the END trailer, must be
    // newline-terminated, so no proper prefix of a checkpoint parses.
    if !text.ends_with('\n') {
        return Err("truncated checkpoint (unterminated trailer)".to_string());
    }
    let mut lines = text.lines();
    if lines.next() != Some("XIACKPT v1") {
        return Err("not a checkpoint file (missing XIACKPT v1 header)".to_string());
    }
    let meta = lines.next().ok_or("truncated checkpoint (no META line)")?;
    let mut meta_parts = meta.split(' ');
    if meta_parts.next() != Some("META") {
        return Err("malformed checkpoint (expected META line)".to_string());
    }
    let digest = meta_parts
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("malformed META digest")?;
    let declared: usize = meta_parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("malformed META entry count")?;
    if digest != expected_digest {
        return Err(format!(
            "checkpoint was taken over a different candidate set \
             (digest {digest:016x}, expected {expected_digest:016x})"
        ));
    }
    let mut entries = Vec::with_capacity(declared);
    let mut end: Option<&str> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("END ") {
            end = Some(rest);
            break;
        }
        let rest = line
            .strip_prefix("W ")
            .ok_or_else(|| format!("malformed checkpoint record `{line}`"))?;
        let mut parts = rest.split(' ');
        let salt = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("malformed record salt")?;
        let si: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("malformed record statement index")?;
        let cost_bits = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("malformed record cost")?;
        let proj_s = parts.next().ok_or("malformed record projection")?;
        let deltas_s = parts.next().ok_or("malformed record deltas")?;
        if parts.next().is_some() {
            return Err(format!("malformed checkpoint record `{line}`"));
        }
        let proj = if proj_s == "-" {
            Vec::new()
        } else {
            proj_s
                .split(',')
                .map(|p| p.parse().map(CandId))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|_| "malformed record projection".to_string())?
        };
        let deltas = if deltas_s == "-" {
            Vec::new()
        } else {
            deltas_s
                .split(',')
                .map(|p| {
                    let (i, v) = p.split_once(':')?;
                    Some((i.parse().ok()?, v.parse().ok()?))
                })
                .collect::<Option<Vec<(usize, u64)>>>()
                .ok_or("malformed record deltas")?
        };
        entries.push((WarmKey { salt, si, proj }, WarmEntry { cost_bits, deltas }));
    }
    let end = end.ok_or("truncated checkpoint (no END trailer)")?;
    let mut end_parts = end.split(' ');
    let count: usize = end_parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("malformed END count")?;
    let checksum = end_parts
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("malformed END checksum")?;
    if count != entries.len() || count != declared {
        return Err(format!(
            "checkpoint entry count mismatch (META {declared}, END {count}, parsed {})",
            entries.len()
        ));
    }
    // The checksum covers every byte before the END line.
    let body_len = text
        .find("\nEND ")
        .map(|i| i + 1)
        .ok_or("truncated checkpoint (no END trailer)")?;
    if fnv1a64(&text.as_bytes()[..body_len]) != checksum {
        return Err("checkpoint checksum mismatch (corrupt file)".to_string());
    }
    Ok(entries)
}

/// Cumulative warm benefit-cache state shared across advisor runs — the
/// share/reset API the serving layer builds on.
///
/// Each recommend run executes under a [`RunController`] armed with
/// [`RunController::with_warm_capture`]; afterwards the run's warm log is
/// [absorbed](WarmCostStore::absorb) here (last write wins per key; keys
/// are content-derived, so a re-executed costing overwrites itself with an
/// identical entry). The next run [installs](WarmCostStore::install) the
/// accumulated entries and replays every previously executed costing
/// byte-identically. [`WarmCostStore::reset`] drops everything — called
/// whenever the underlying database changes (e.g. a recommendation was
/// materialized), because warm costs are only valid against the catalog
/// and statistics they were captured under.
#[derive(Debug, Default)]
pub struct WarmCostStore {
    entries: HashMap<WarmKey, WarmEntry>,
    order: Vec<WarmKey>,
}

impl WarmCostStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges one run's exported warm log (insertion-ordered; last write
    /// per key wins).
    pub fn absorb(&mut self, log: Vec<(WarmKey, WarmEntry)>) {
        for (k, v) in log {
            if self.entries.insert(k.clone(), v).is_none() {
                self.order.push(k);
            }
        }
    }

    /// The accumulated entries in first-absorption order, ready for
    /// [`RunController::install_warm`].
    pub fn install(&self) -> Vec<(WarmKey, WarmEntry)> {
        self.order
            .iter()
            .filter_map(|k| self.entries.get(k).map(|v| (k.clone(), v.clone())))
            .collect()
    }

    /// Distinct costings held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds nothing (a cold first run).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all warm state (the database changed underneath us).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> Vec<(WarmKey, WarmEntry)> {
        vec![
            (
                WarmKey {
                    salt: 0xBA5E,
                    si: 0,
                    proj: Vec::new(),
                },
                WarmEntry {
                    cost_bits: 1234.5f64.to_bits(),
                    deltas: vec![(0, 1), (3, 42)],
                },
            ),
            (
                WarmKey {
                    salt: 0xE7A1,
                    si: 2,
                    proj: vec![CandId(1), CandId(4)],
                },
                WarmEntry {
                    cost_bits: 99.25f64.to_bits(),
                    deltas: Vec::new(),
                },
            ),
        ]
    }

    #[test]
    fn checkpoint_round_trips() {
        let log = sample_log();
        let body = render_checkpoint(0xD1657, &log);
        let back = parse_checkpoint(&body, 0xD1657).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn digest_mismatch_is_rejected() {
        let body = render_checkpoint(1, &sample_log());
        let err = parse_checkpoint(&body, 2).unwrap_err();
        assert!(err.contains("different candidate set"), "{err}");
    }

    #[test]
    fn truncation_and_bit_flips_are_rejected() {
        let body = render_checkpoint(7, &sample_log());
        for cut in 0..body.len() {
            assert!(
                parse_checkpoint(&body[..cut], 7).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut bytes = body.clone().into_bytes();
        for i in (0..bytes.len()).step_by(3) {
            bytes[i] ^= 0x08;
            if let Ok(flipped) = std::str::from_utf8(&bytes) {
                if let Ok(entries) = parse_checkpoint(flipped, 7) {
                    // The only acceptable parse of a flipped file is one
                    // that is byte-identical in the checksummed region —
                    // impossible here since we flipped a bit.
                    panic!("bit flip at {i} accepted ({} entries)", entries.len());
                }
            }
            bytes[i] ^= 0x08;
        }
    }

    #[test]
    fn poll_latches_cancellation_deterministically() {
        let ctl = RunController::new().with_cancel_after_polls(3);
        assert_eq!(ctl.poll(), None);
        assert_eq!(ctl.poll(), None);
        assert_eq!(ctl.poll(), Some(StopReason::Cancelled));
        // Latched: further polls keep reporting the first reason.
        assert_eq!(ctl.poll(), Some(StopReason::Cancelled));
        assert_eq!(ctl.stopped(), Some(StopReason::Cancelled));
    }

    #[test]
    fn zero_deadline_expires_on_first_poll() {
        let ctl = RunController::new().with_deadline_ms(0);
        assert_eq!(ctl.poll(), Some(StopReason::Deadline));
    }

    #[test]
    fn off_handle_never_stops() {
        let ctl = RunController::off();
        assert!(!ctl.is_enabled());
        ctl.cancel();
        assert_eq!(ctl.poll(), None);
        assert_eq!(ctl.stopped(), None);
        assert!(!ctl.resumed());
    }

    #[test]
    fn explicit_cancel_latches() {
        let ctl = RunController::new();
        assert_eq!(ctl.poll(), None);
        ctl.cancel();
        assert_eq!(ctl.poll(), Some(StopReason::Cancelled));
    }

    #[test]
    fn warm_store_serves_installed_entries() {
        let ctl = RunController::new();
        let (key, entry) = sample_log().remove(0);
        // Before install: nothing, and not resumed.
        assert_eq!(ctl.warm_lookup(&key), None);
        ctl.install_warm(vec![(key.clone(), entry.clone())]);
        assert!(ctl.resumed());
        assert_eq!(ctl.warm_lookup(&key), Some(entry));
    }

    #[test]
    fn checkpoint_write_and_load_via_file() {
        let dir = std::env::temp_dir().join(format!("xia_runctl_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ctl = RunController::new().with_checkpoint(&path, 1);
        for (k, v) in sample_log() {
            ctl.record_costing(k, v);
        }
        let tel = Telemetry::new();
        assert_eq!(ctl.after_batch(0xD16, &FaultInjector::off(), &tel), None);
        assert_eq!(tel.get(Counter::CheckpointsWritten), 1);
        let back = load_checkpoint(&path, 0xD16, &FaultInjector::off()).unwrap();
        assert_eq!(back, sample_log());
        // Wrong digest → cold-start error.
        assert!(load_checkpoint(&path, 0xBAD, &FaultInjector::off()).is_err());
        // Injected checkpoint-io fault on read → cold-start error.
        let faults = FaultInjector::seeded(1).with_always(FaultSite::CheckpointIo);
        assert!(load_checkpoint(&path, 0xD16, &faults).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_fault_abandons_the_checkpoint() {
        let dir = std::env::temp_dir().join(format!("xia_runctl_w_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ctl = RunController::new().with_checkpoint(&path, 1);
        let faults = FaultInjector::seeded(1).with_always(FaultSite::CheckpointIo);
        let tel = Telemetry::new();
        let warn = ctl.after_batch(1, &faults, &tel).unwrap();
        assert!(warn.contains("abandoned"), "{warn}");
        assert!(!path.exists());
        assert_eq!(tel.get(Counter::CheckpointsWritten), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_cadence_respects_every() {
        let dir = std::env::temp_dir().join(format!("xia_runctl_c_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ctl = RunController::new().with_checkpoint(&path, 3);
        let tel = Telemetry::new();
        let off = FaultInjector::off();
        assert_eq!(ctl.after_batch(1, &off, &tel), None);
        assert_eq!(ctl.after_batch(1, &off, &tel), None);
        assert!(!path.exists());
        assert_eq!(ctl.after_batch(1, &off, &tel), None);
        assert!(path.exists());
        assert_eq!(tel.get(Counter::CheckpointsWritten), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_capture_records_without_a_checkpoint_file() {
        let ctl = RunController::new().with_warm_capture();
        assert!(ctl.checkpointing(), "capture must drive delta capture");
        for (k, v) in sample_log() {
            ctl.record_costing(k, v);
        }
        assert_eq!(ctl.export_warm_log(), sample_log());
        // No checkpoint file is involved: after_batch is a no-op.
        let tel = Telemetry::new();
        assert_eq!(ctl.after_batch(1, &FaultInjector::off(), &tel), None);
        assert_eq!(tel.get(Counter::CheckpointsWritten), 0);
        // Plain controllers record nothing.
        let plain = RunController::new();
        assert!(!plain.checkpointing());
        for (k, v) in sample_log() {
            plain.record_costing(k, v);
        }
        assert!(plain.export_warm_log().is_empty());
        assert!(RunController::off().export_warm_log().is_empty());
    }

    #[test]
    fn warm_cost_store_absorbs_dedups_and_resets() {
        let mut store = WarmCostStore::new();
        assert!(store.is_empty());
        store.absorb(sample_log());
        assert_eq!(store.len(), 2);
        // Re-absorbing the same log (the replay model re-logs warm-served
        // entries) leaves the store unchanged.
        store.absorb(sample_log());
        assert_eq!(store.len(), 2);
        assert_eq!(store.install(), sample_log());
        // Installed entries replay through a fresh controller.
        let ctl = RunController::new().with_warm_capture();
        ctl.install_warm(store.install());
        assert!(ctl.resumed());
        let (key, entry) = sample_log().remove(0);
        assert_eq!(ctl.warm_lookup(&key), Some(entry));
        store.reset();
        assert!(store.is_empty());
        assert!(store.install().is_empty());
    }

    #[test]
    fn governor_rungs_walk_in_order() {
        let mut rung = GovernorRung::Full;
        let mut names = Vec::new();
        while let Some(next) = rung.next() {
            rung = next;
            names.push(rung.name());
        }
        assert_eq!(
            names,
            vec!["shrink_memo", "no_stmt_cache", "heuristic_only"]
        );
    }
}
