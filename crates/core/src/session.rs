//! Incremental tuning sessions.
//!
//! A [`TuningSession`] accumulates workload statements over time (the
//! paper's motivating DBA workflow: "the DBA has assembled a representative
//! training workload, but the actual workload may be a variation") and
//! re-advises on demand, reusing enumeration and generalization work when
//! nothing changed.

use crate::advisor::{Advisor, AdvisorParams, Recommendation, SearchAlgorithm};
use crate::candidate::CandidateSet;
use crate::error::XiaError;
use xia_storage::Database;
use xia_workloads::Workload;
use xia_xpath::ParseError;

/// An incremental advisor session over one database.
pub struct TuningSession<'db> {
    db: &'db mut Database,
    workload: Workload,
    params: AdvisorParams,
    /// Prepared candidates, invalidated when the workload changes.
    prepared: Option<CandidateSet>,
}

impl<'db> TuningSession<'db> {
    /// Opens a session on a database.
    pub fn new(db: &'db mut Database) -> Self {
        Self {
            db,
            workload: Workload::new(),
            params: AdvisorParams::default(),
            prepared: None,
        }
    }

    /// Replaces the advisor parameters (invalidates prepared state if the
    /// generalization switch changed).
    pub fn set_params(&mut self, params: AdvisorParams) {
        if params.generalize != self.params.generalize {
            self.prepared = None;
        }
        self.params = params;
    }

    /// Adds one statement with frequency 1.
    pub fn observe(&mut self, statement_text: &str) -> Result<(), ParseError> {
        self.observe_with_freq(statement_text, 1.0)
    }

    /// Adds one statement with an explicit frequency.
    pub fn observe_with_freq(&mut self, statement_text: &str, freq: f64) -> Result<(), ParseError> {
        self.workload.push_with_freq(statement_text, freq)?;
        self.prepared = None;
        Ok(())
    }

    /// Number of observed statements.
    pub fn observed(&self) -> usize {
        self.workload.len()
    }

    /// The session's telemetry sink (from its [`AdvisorParams`]); phase
    /// timers and counters accumulate here across `recommend` calls.
    pub fn telemetry(&self) -> &xia_obs::Telemetry {
        &self.params.telemetry
    }

    /// The accumulated workload (compressed: duplicates merged).
    pub fn workload(&self) -> Workload {
        self.workload.compress()
    }

    fn ensure_prepared(&mut self) -> &CandidateSet {
        if self.prepared.is_none() {
            let compressed = self.workload.compress();
            self.prepared = Some(Advisor::prepare(self.db, &compressed, &self.params));
        }
        self.prepared.as_ref().expect("just prepared")
    }

    /// Candidate count after enumeration + generalization (for monitoring).
    pub fn candidate_count(&mut self) -> usize {
        self.ensure_prepared();
        self.prepared.as_ref().expect("prepared").len()
    }

    /// Produces a recommendation for the accumulated workload. Errors when
    /// nothing useful can be recommended (empty workload, everything
    /// quarantined, strict-mode degradation); see [`Advisor::recommend`].
    pub fn recommend(
        &mut self,
        budget: u64,
        algorithm: SearchAlgorithm,
    ) -> Result<Recommendation, XiaError> {
        self.ensure_prepared();
        let compressed = self.workload.compress();
        let set = self.prepared.as_ref().expect("prepared");
        Advisor::recommend_prepared(self.db, &compressed, set, budget, algorithm, &self.params)
    }

    /// Materializes a recommendation produced by this session.
    pub fn apply(&mut self, rec: &Recommendation) -> usize {
        let set = self.ensure_prepared();
        // `prepared` is still valid — materializing does not change the
        // workload — but borrowck needs the set cloned out of self.
        let config = rec.config.clone();
        let _ = set;
        let set = self.prepared.take().expect("prepared above");
        let n = Advisor::materialize(self.db, &set, &config);
        self.prepared = Some(set);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_workloads::tpox::{self, TpoxConfig};

    fn db() -> Database {
        let mut db = Database::new();
        tpox::generate(&mut db, &TpoxConfig::tiny());
        db
    }

    #[test]
    fn session_accumulates_and_recommends() {
        let mut db = db();
        let mut session = TuningSession::new(&mut db);
        session
            .observe(
                r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "SYM00001" return $s"#,
            )
            .unwrap();
        assert_eq!(session.observed(), 1);
        let rec1 = session
            .recommend(u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        assert_eq!(rec1.indexes.len(), 1);

        session
            .observe(r#"for $o in ORDER('ODOC')/Order where $o/AccountId = "A00001" return $o"#)
            .unwrap();
        let rec2 = session
            .recommend(u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        assert!(rec2.indexes.len() >= 2, "{:?}", rec2.indexes);
    }

    #[test]
    fn duplicate_observations_compress() {
        let mut db = db();
        let mut session = TuningSession::new(&mut db);
        for _ in 0..5 {
            session
                .observe(r#"collection('SDOC')/Security[Symbol = "SYM00002"]"#)
                .unwrap();
        }
        assert_eq!(session.observed(), 5);
        assert_eq!(session.workload().len(), 1);
        assert_eq!(session.workload().entries()[0].freq, 5.0);
    }

    #[test]
    fn prepared_state_reused_until_workload_changes() {
        let mut db = db();
        let mut session = TuningSession::new(&mut db);
        session
            .observe(r#"collection('SDOC')/Security[Symbol = "SYM00003"]"#)
            .unwrap();
        let c1 = session.candidate_count();
        let c2 = session.candidate_count();
        assert_eq!(c1, c2);
        session
            .observe(r#"collection('SDOC')/Security[Yield > 4]"#)
            .unwrap();
        let c3 = session.candidate_count();
        assert!(c3 >= c1);
    }

    #[test]
    fn apply_materializes_indexes() {
        let mut db = db();
        let mut session = TuningSession::new(&mut db);
        session
            .observe(r#"collection('SDOC')/Security[Symbol = "SYM00004"]"#)
            .unwrap();
        let rec = session
            .recommend(u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        let n = session.apply(&rec);
        assert_eq!(n, rec.indexes.len());
        assert!(n >= 1);
        let physical = db
            .catalog("SDOC")
            .unwrap()
            .iter()
            .filter(|d| !d.is_virtual())
            .count();
        assert_eq!(physical, n);
    }

    #[test]
    fn ddl_renders_create_index_statements() {
        let mut db = db();
        let mut session = TuningSession::new(&mut db);
        session
            .observe(r#"collection('SDOC')/Security[Symbol = "SYM00005"]"#)
            .unwrap();
        session
            .observe(r#"collection('SDOC')/Security[Yield > 4.5]"#)
            .unwrap();
        let rec = session
            .recommend(u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        let ddl = rec.ddl();
        assert!(ddl.contains("CREATE INDEX idx_sdoc_1"), "{ddl}");
        assert!(ddl.contains("GENERATE KEY USING XMLPATTERN"), "{ddl}");
        if rec
            .indexes
            .iter()
            .any(|i| i.kind == xia_xpath::ValueKind::Num)
        {
            assert!(ddl.contains("SQL DOUBLE"));
        }
    }
}
