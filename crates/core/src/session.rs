//! Incremental tuning sessions.
//!
//! A [`TuningSession`] accumulates workload statements over time (the
//! paper's motivating DBA workflow: "the DBA has assembled a representative
//! training workload, but the actual workload may be a variation") and
//! re-advises on demand, reusing enumeration and generalization work when
//! nothing changed.
//!
//! Two kinds of state stay warm across calls:
//!
//! * **Prepared candidates** — `observe` no longer throws the prepared
//!   [`CandidateSet`] away. The compressed workload is append-only under
//!   new observations (duplicates merge into existing entries without
//!   moving them), so new statements enumerate their basic candidates
//!   into the existing set and the semi-naive generalization fixpoint
//!   extends the closure from just the new frontier
//!   ([`generalize_set_extend`]). Candidate ids are append-only too,
//!   which keeps previously captured warm cost entries valid.
//! * **Warm benefit costs** — every `recommend` runs under a
//!   [`RunController`] armed with in-memory warm capture; the run's
//!   costing log accumulates in a [`WarmCostStore`] and is installed into
//!   the next run, which replays previously executed optimizer costings
//!   byte-identically (costs, counters, journal events) instead of
//!   re-fanning out. The store resets whenever the database changes
//!   underneath the session (`apply`) or the advisor parameters change.
//!
//! The session does not hold the database borrow; every call that needs
//! the database takes `&mut Database`, so a serving layer can share one
//! database across many sessions behind its own synchronization.

use crate::advisor::{Advisor, AdvisorParams, Recommendation, SearchAlgorithm};
use crate::candidate::CandidateSet;
use crate::enumerate::{enumerate_candidates_into, size_candidates_ids};
use crate::error::XiaError;
use crate::generalize::generalize_set_extend;
use crate::runctl::{RunController, WarmCostStore};
use xia_obs::{Counter, Event};
use xia_storage::Database;
use xia_workloads::Workload;
use xia_xpath::ParseError;

/// Prepared candidate state plus how much of the compressed workload it
/// covers.
struct Prepared {
    set: CandidateSet,
    /// Compressed-workload entries already enumerated into `set`.
    covered: usize,
}

/// An incremental advisor session.
#[derive(Default)]
pub struct TuningSession {
    workload: Workload,
    params: AdvisorParams,
    prepared: Option<Prepared>,
    warm: WarmCostStore,
}

impl TuningSession {
    /// Opens a session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the advisor parameters. Invalidates prepared state if the
    /// generalization switch changed, and always resets the warm cost
    /// store — captured costs are only valid under the costing context
    /// (faults, budgets, toggles) they were captured in.
    pub fn set_params(&mut self, params: AdvisorParams) {
        if params.generalize != self.params.generalize {
            self.prepared = None;
        }
        self.warm.reset();
        self.params = params;
    }

    /// Adds one statement with frequency 1.
    pub fn observe(&mut self, statement_text: &str) -> Result<(), ParseError> {
        self.observe_with_freq(statement_text, 1.0)
    }

    /// Adds one statement with an explicit frequency. Prepared candidates
    /// are kept; the next `recommend` extends them incrementally.
    pub fn observe_with_freq(&mut self, statement_text: &str, freq: f64) -> Result<(), ParseError> {
        self.workload.push_with_freq(statement_text, freq)?;
        Ok(())
    }

    /// Number of observed statements.
    pub fn observed(&self) -> usize {
        self.workload.len()
    }

    /// The session's telemetry sink (from its [`AdvisorParams`]); phase
    /// timers and counters accumulate here across `recommend` calls.
    pub fn telemetry(&self) -> &xia_obs::Telemetry {
        &self.params.telemetry
    }

    /// The accumulated workload (compressed: duplicates merged).
    pub fn workload(&self) -> Workload {
        self.workload.compress()
    }

    /// Distinct warm costings carried to the next `recommend`.
    pub fn warm_costings(&self) -> usize {
        self.warm.len()
    }

    /// Brings the prepared candidate set up to date with the compressed
    /// workload: a full [`Advisor::prepare`] on first use, an incremental
    /// extension afterwards.
    fn ensure_prepared(&mut self, db: &mut Database) {
        let compressed = self.workload.compress();
        match &mut self.prepared {
            None => {
                let set = Advisor::prepare(db, &compressed, &self.params);
                self.prepared = Some(Prepared {
                    set,
                    covered: compressed.len(),
                });
            }
            Some(p) if p.covered < compressed.len() => {
                let t = &self.params.telemetry;
                db.set_faults(&self.params.faults);
                db.set_telemetry(t);
                let fresh = {
                    let _enumerate = t.span("enumerate");
                    enumerate_candidates_into(db, &compressed, p.covered, &mut p.set, t)
                };
                t.add(Counter::CandidatesEnumerated, fresh.len() as u64);
                if self.params.journal.is_enabled() {
                    for &id in &fresh {
                        let c = p.set.get(id);
                        self.params.journal.emit(|| Event::CandidateGenerated {
                            collection: c.collection.clone(),
                            pattern: c.pattern.to_string(),
                            kind: c.kind.to_string(),
                            origin: "basic".to_string(),
                        });
                    }
                }
                let mut to_size = fresh.clone();
                if self.params.generalize {
                    let created = {
                        let _generalize = t.span("generalize");
                        generalize_set_extend(&mut p.set, &fresh, t, &self.params.journal)
                    };
                    t.add(Counter::CandidatesGeneralized, created.len() as u64);
                    to_size.extend(created);
                }
                {
                    let _size = t.span("size");
                    size_candidates_ids(db, &mut p.set, &to_size, t);
                }
                p.covered = compressed.len();
            }
            Some(_) => {}
        }
    }

    /// Candidate count after enumeration + generalization (for monitoring).
    pub fn candidate_count(&mut self, db: &mut Database) -> usize {
        self.ensure_prepared(db);
        self.prepared.as_ref().map_or(0, |p| p.set.len())
    }

    /// The prepared candidate set, brought up to date first — for
    /// serving-path introspection and the incremental-vs-full parity
    /// tests.
    pub fn candidates(&mut self, db: &mut Database) -> &CandidateSet {
        self.ensure_prepared(db);
        &self.prepared.as_ref().expect("prepared above").set
    }

    /// Produces a recommendation for the accumulated workload, reusing
    /// prepared candidates and warm benefit costs from earlier calls.
    /// Errors when nothing useful can be recommended (empty workload,
    /// everything quarantined, strict-mode degradation); see
    /// [`Advisor::recommend`].
    pub fn recommend(
        &mut self,
        db: &mut Database,
        budget: u64,
        algorithm: SearchAlgorithm,
    ) -> Result<Recommendation, XiaError> {
        self.ensure_prepared(db);
        let compressed = self.workload.compress();
        let set = &self.prepared.as_ref().expect("prepared above").set;
        // Warm cost reuse rides on the run controller. When the caller
        // armed their own controller (deadline, checkpointing) it is used
        // untouched and the session's warm store stays out of the run;
        // otherwise the run captures its costing log for the next call.
        if self.params.ctl.is_enabled() {
            return Advisor::recommend_prepared(
                db,
                &compressed,
                set,
                budget,
                algorithm,
                &self.params,
            );
        }
        let ctl = RunController::new().with_warm_capture();
        if !self.warm.is_empty() {
            ctl.install_warm(self.warm.install());
        }
        let mut params = self.params.clone();
        params.ctl = ctl.clone();
        let out = Advisor::recommend_prepared(db, &compressed, set, budget, algorithm, &params);
        self.warm.absorb(ctl.export_warm_log());
        out
    }

    /// Materializes a recommendation produced by this session. The
    /// prepared candidates stay valid (the workload did not change), but
    /// the warm cost store resets: physical indexes change what the
    /// optimizer would cost.
    pub fn apply(&mut self, db: &mut Database, rec: &Recommendation) -> usize {
        self.ensure_prepared(db);
        let p = self.prepared.as_ref().expect("prepared above");
        let n = Advisor::materialize(db, &p.set, &rec.config);
        self.warm.reset();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_workloads::tpox::{self, TpoxConfig};

    fn db() -> Database {
        let mut db = Database::new();
        tpox::generate(&mut db, &TpoxConfig::tiny());
        db
    }

    #[test]
    fn session_accumulates_and_recommends() {
        let mut db = db();
        let mut session = TuningSession::new();
        session
            .observe(
                r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "SYM00001" return $s"#,
            )
            .unwrap();
        assert_eq!(session.observed(), 1);
        let rec1 = session
            .recommend(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        assert_eq!(rec1.indexes.len(), 1);

        session
            .observe(r#"for $o in ORDER('ODOC')/Order where $o/AccountId = "A00001" return $o"#)
            .unwrap();
        let rec2 = session
            .recommend(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        assert!(rec2.indexes.len() >= 2, "{:?}", rec2.indexes);
    }

    #[test]
    fn duplicate_observations_compress() {
        let mut session = TuningSession::new();
        for _ in 0..5 {
            session
                .observe(r#"collection('SDOC')/Security[Symbol = "SYM00002"]"#)
                .unwrap();
        }
        assert_eq!(session.observed(), 5);
        assert_eq!(session.workload().len(), 1);
        assert_eq!(session.workload().entries()[0].freq, 5.0);
    }

    #[test]
    fn prepared_state_extends_incrementally_across_observes() {
        let mut db = db();
        let mut session = TuningSession::new();
        session
            .observe(r#"collection('SDOC')/Security[Symbol = "SYM00003"]"#)
            .unwrap();
        let c1 = session.candidate_count(&mut db);
        let c2 = session.candidate_count(&mut db);
        assert_eq!(c1, c2);
        session
            .observe(r#"collection('SDOC')/Security[Yield > 4]"#)
            .unwrap();
        let c3 = session.candidate_count(&mut db);
        assert!(c3 >= c1);
        // A duplicate observation merges into the compressed workload
        // without growing the candidate set.
        session
            .observe(r#"collection('SDOC')/Security[Symbol = "SYM00003"]"#)
            .unwrap();
        assert_eq!(session.candidate_count(&mut db), c3);
    }

    #[test]
    fn warm_costs_accumulate_and_reset_on_apply() {
        let mut db = db();
        let mut session = TuningSession::new();
        session
            .observe(r#"collection('SDOC')/Security[Symbol = "SYM00009"]"#)
            .unwrap();
        assert_eq!(session.warm_costings(), 0);
        let rec = session
            .recommend(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        let after_first = session.warm_costings();
        assert!(after_first > 0, "recommend must capture warm costings");
        // A repeat recommend replays warm entries and returns an
        // identical recommendation.
        let rec2 = session
            .recommend(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        assert_eq!(rec.ddl(), rec2.ddl());
        assert_eq!(
            rec.est_benefit.to_bits(),
            rec2.est_benefit.to_bits(),
            "warm replay must be bit-exact"
        );
        assert_eq!(session.warm_costings(), after_first);
        session.apply(&mut db, &rec);
        assert_eq!(
            session.warm_costings(),
            0,
            "materializing changes the database; warm costs must reset"
        );
    }

    #[test]
    fn apply_materializes_indexes() {
        let mut db = db();
        let mut session = TuningSession::new();
        session
            .observe(r#"collection('SDOC')/Security[Symbol = "SYM00004"]"#)
            .unwrap();
        let rec = session
            .recommend(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        let n = session.apply(&mut db, &rec);
        assert_eq!(n, rec.indexes.len());
        assert!(n >= 1);
        let physical = db
            .catalog("SDOC")
            .unwrap()
            .iter()
            .filter(|d| !d.is_virtual())
            .count();
        assert_eq!(physical, n);
    }

    #[test]
    fn ddl_renders_create_index_statements() {
        let mut db = db();
        let mut session = TuningSession::new();
        session
            .observe(r#"collection('SDOC')/Security[Symbol = "SYM00005"]"#)
            .unwrap();
        session
            .observe(r#"collection('SDOC')/Security[Yield > 4.5]"#)
            .unwrap();
        let rec = session
            .recommend(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
            .unwrap();
        let ddl = rec.ddl();
        assert!(ddl.contains("CREATE INDEX idx_sdoc_1"), "{ddl}");
        assert!(ddl.contains("GENERATE KEY USING XMLPATTERN"), "{ddl}");
        if rec
            .indexes
            .iter()
            .any(|i| i.kind == xia_xpath::ValueKind::Num)
        {
            assert!(ddl.contains("SQL DOUBLE"));
        }
    }
}
